"""Pipelined remote querying with :class:`repro.client.AsyncRemoteClient`.

The sync :class:`~repro.client.RemoteClient` waits for each reply before
sending the next request; the async client keeps many requests in flight
on one connection (responses are matched by echoed id, so the server may
answer out of order) and pools connections when asked. This example:

1. serves a synthetic database over a loopback asyncio socket server
   with a 4-thread worker pool (what ``repro serve --listen --workers 4``
   runs),
2. fires a burst of queries strictly one-at-a-time, then the same burst
   pipelined, and prints the wall-clock ratio,
3. streams an ingest batch in mid-flight (ingest serializes behind the
   service's epoch write-lock; queries keep flowing around it),
4. cross-checks every pipelined answer against a
   :class:`~repro.client.LocalClient` over the same data — concurrency
   changes latency, never answers.

Run with::

    python examples/async_client.py
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro import LocalClient, QueryService, synthetic_database
from repro.client import AsyncRemoteClient
from repro.data.trajectory import Trajectory
from repro.service.server import serve_in_thread
from repro.workloads import RangeQueryWorkload

BURST = 24


async def main(host: str, port: int, db) -> None:
    workload = RangeQueryWorkload.from_data_distribution(db, 4, seed=11)
    grids = [16 + 8 * (i % 5) for i in range(BURST)]

    async with await AsyncRemoteClient.open(
        host, port, max_inflight=16
    ) as client:
        print(f"connected: {client.server_info['workers']} server workers")

        # -- strict request/reply: each await completes before the next send
        t0 = time.perf_counter()
        for grid in grids:
            await client.histogram(grid)
        serial_s = time.perf_counter() - t0

        # -- pipelined: the same burst, all in flight at once
        t0 = time.perf_counter()
        responses = await asyncio.gather(
            *(client.histogram(grid) for grid in grids)
        )
        pipelined_s = time.perf_counter() - t0
        print(
            f"burst of {BURST} histograms: serial {serial_s * 1000:.0f}ms, "
            f"pipelined {pipelined_s * 1000:.0f}ms "
            f"({serial_s / pipelined_s:.1f}x)"
        )

        # -- ingest mid-flight: queries pipeline around the epoch bump
        rng = np.random.default_rng(3)
        batch = [
            Trajectory(db[int(rng.integers(len(db)))].points + 25.0)
            for _ in range(3)
        ]
        queries = asyncio.gather(*(client.range(workload) for _ in range(6)))
        result = await client.ingest(batch)
        await queries
        print(f"ingested {result.added} mid-burst -> epoch {result.epoch}")

        # -- bit-identity against local references: the pipelined burst
        # ran pre-ingest, the final range post-ingest.
        with LocalClient(db) as local:
            for grid, response in zip(grids, responses):
                np.testing.assert_array_equal(
                    response.histogram, local.histogram(grid).histogram
                )
        with LocalClient(db.extended(batch)) as local:
            want = local.range(workload).result_sets
            got = (await client.range(workload)).result_sets
            assert got == want
        print("pipelined answers bit-identical to LocalClient")


if __name__ == "__main__":
    database = synthetic_database(
        "geolife", n_trajectories=60, points_scale=0.05, seed=7
    )
    handle = serve_in_thread(
        QueryService(database, n_shards=4), close_service=True, workers=4
    )
    try:
        asyncio.run(main(handle.host, handle.port, database))
    finally:
        handle.stop()
