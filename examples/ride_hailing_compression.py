"""Scenario: compressing a ride-hailing fleet's trajectory archive.

A ride-hailing operator (the paper's Chengdu/DiDi setting) archives every
ride's GPS trace. Analyst traffic concentrates on the downtown district —
"which rides crossed this block in this window?" — so the query workload is
spatially skewed (modeled here as the paper's Gaussian query distribution
over the city centre).

Under an aggressive storage target (keep 4% of points, a 25x reduction),
query-accuracy-driven compression pays off: RL4QDTS, trained on the
*distribution* of analyst queries, preserves downtown range queries better
than error-driven simplifiers that optimize geometry uniformly — the paper's
headline result in the scarce-budget regime.

Run with::

    python examples/ride_hailing_compression.py
"""

from __future__ import annotations

import numpy as np

from repro import RL4QDTS, RangeQueryWorkload, synthetic_database
from repro.baselines import get_baseline, simplify_database
from repro.core import RL4QDTSConfig
from repro.data.stats import spatial_scale
from repro.queries.metrics import f1_score


def downtown_workload(db, n_queries, seed):
    """Range queries concentrated on the city centre (Gaussian, sigma=0.2)."""
    scale = spatial_scale(db)
    return RangeQueryWorkload.from_gaussian(
        db,
        n_queries,
        mu=0.5,
        sigma=0.2,
        spatial_extent=0.15 * scale,
        temporal_extent=db.bounding_box.spans[2] / 2,
        seed=seed,
    )


def mean_f1(workload, original, simplified) -> float:
    truth = workload.evaluate(original)
    result = workload.evaluate(simplified)
    return float(np.mean([f1_score(t, r) for t, r in zip(truth, result)]))


def main() -> None:
    # One week of rides from a 300-vehicle fleet (Chengdu profile at full
    # per-ride length: ~178 points each).
    db = synthetic_database("chengdu", n_trajectories=300, points_scale=1.0, seed=3)
    print(f"fleet archive: {len(db)} rides, {db.total_points} GPS points")

    # Train RL4QDTS on the analysts' query *distribution* (future queries
    # themselves are unknown at compression time).
    config = RL4QDTSConfig(
        start_level=6,
        end_level=9,
        delta=10,
        n_training_queries=200,
        n_inference_queries=1000,
        episodes=4,
        n_train_databases=2,
        train_db_size=80,
        train_budget_ratio=0.05,
        seed=0,
    )
    print("training on the downtown query distribution...")
    model = RL4QDTS.train(
        db,
        config=config,
        workload_factory=lambda d, seed: downtown_workload(d, 200, seed),
    )

    target_ratio = 0.04  # keep 4% of points: a 25x storage reduction
    rl_compressed = model.simplify(
        db,
        budget_ratio=target_ratio,
        seed=1,
        workload=downtown_workload(db, 1000, seed=4242),
    )
    topdown = simplify_database(db, target_ratio, get_baseline("Top-Down(E,PED)"))
    bottomup = simplify_database(db, target_ratio, get_baseline("Bottom-Up(E,SED)"))

    print(f"\ncompression target: keep {target_ratio:.0%} of points")
    print(f"RL4QDTS archive:   {rl_compressed.total_points} points")
    print(f"baseline archives: {topdown.total_points} / {bottomup.total_points} points")

    # The actual analyst queries arrive later — a fresh sample from the same
    # distribution.
    analyst_queries = downtown_workload(db, 100, seed=999)
    print("\ndowntown range-query accuracy on the compressed archives:")
    print(f"  RL4QDTS (query-aware):          F1 = "
          f"{mean_f1(analyst_queries, db, rl_compressed):.3f}")
    print(f"  Top-Down(E,PED) (error-driven): F1 = "
          f"{mean_f1(analyst_queries, db, topdown):.3f}")
    print(f"  Bottom-Up(E,SED) (error-driven): F1 = "
          f"{mean_f1(analyst_queries, db, bottomup):.3f}")

    # Storage accounting: 3 float64 per point.
    full_mb = db.total_points * 24 / 1e6
    small_mb = rl_compressed.total_points * 24 / 1e6
    print(f"\nstorage: {full_mb:.2f} MB -> {small_mb:.2f} MB")


if __name__ == "__main__":
    main()
