"""Scenario: movement analytics on a simplified database.

The paper's motivation for supporting *multiple* query operators from one
simplified database: an urban-mobility team stores a single compressed copy
of its GPS archive and runs similarity search, kNN retrieval, and TRACLUS
corridor clustering against it.

This example simplifies a database once with RL4QDTS (trained on range
queries only — the paper's transfer claim) and then exercises all the other
operators on the result, comparing each answer with the answer on the
original data.

Run with::

    python examples/movement_analytics.py
"""

from __future__ import annotations

from repro import RL4QDTS, synthetic_database
from repro.core import RL4QDTSConfig
from repro.data.stats import spatial_scale
from repro.queries import (
    T2VecEmbedder,
    knn_query,
    similarity_query,
    traclus_cluster,
)
from repro.queries.clustering import TraclusConfig
from repro.queries.metrics import clustering_f1, f1_score


def main() -> None:
    db = synthetic_database("geolife", n_trajectories=80, points_scale=0.1, seed=11)
    scale = spatial_scale(db)
    print(f"database: {len(db)} trajectories, {db.total_points} points")

    # Simplify ONCE (trained on range queries only), keep 8% of points.
    config = RL4QDTSConfig(
        start_level=6, end_level=9, delta=10,
        n_training_queries=100, n_inference_queries=500,
        episodes=3, n_train_databases=2, train_db_size=50,
        train_budget_ratio=0.08, seed=0,
    )
    model = RL4QDTS.train(db, config=config)
    simplified = model.simplify(db, budget_ratio=0.08, seed=1)
    print(f"simplified to {simplified.total_points} points "
          f"({simplified.total_points / db.total_points:.1%})\n")

    # --- kNN retrieval: "find rides similar to this one" -------------------
    query_traj = db[5]
    k = 5
    knn_orig = knn_query(db, query_traj, k, measure="edr", eps=0.1 * scale)
    knn_simp = knn_query(simplified, query_traj, k, measure="edr", eps=0.1 * scale)
    print(f"kNN (EDR, k={k}) on original:   {knn_orig}")
    print(f"kNN (EDR, k={k}) on simplified: {knn_simp}")
    print(f"agreement: {f1_score(set(knn_orig), set(knn_simp)):.2f}\n")

    # Learned-similarity retrieval via the t2vec-style embedding, trained on
    # the original archive and applied to both databases.
    embedder = T2VecEmbedder(resolution=20, dim=16, epochs=2, seed=0).fit(db)
    t2v_orig = knn_query(db, query_traj, k, measure="t2vec", embedder=embedder)
    t2v_simp = knn_query(simplified, query_traj, k, measure="t2vec", embedder=embedder)
    print(f"kNN (t2vec) agreement: {f1_score(set(t2v_orig), set(t2v_simp)):.2f}\n")

    # --- Companion detection: who moved together with trajectory 5? --------
    # The threshold must exceed the simplification deformation, or even the
    # query trajectory's own simplified version stops matching.
    delta = 0.3 * scale
    sim_orig = similarity_query(db, query_traj, delta)
    sim_simp = similarity_query(simplified, query_traj, delta)
    print(f"similarity query (delta={delta:.0f}m):")
    print(f"  original matches:   {sorted(sim_orig)}")
    print(f"  simplified matches: {sorted(sim_simp)}")
    print(f"  agreement: {f1_score(sim_orig, sim_simp):.2f}\n")

    # --- Corridor clustering (TRACLUS) on a subset --------------------------
    subset_ids = list(range(30))
    traclus_config = TraclusConfig(eps=0.08 * scale, min_lns=3)
    clusters_orig = traclus_cluster(db.subset(subset_ids), traclus_config).clusters
    clusters_simp = traclus_cluster(
        simplified.subset(subset_ids), traclus_config
    ).clusters
    print(f"TRACLUS corridors on original:   {len(clusters_orig)} clusters")
    print(f"TRACLUS corridors on simplified: {len(clusters_simp)} clusters")
    print(
        "pair-level agreement: "
        f"{clustering_f1(clusters_orig, clusters_simp):.2f}"
    )


if __name__ == "__main__":
    main()
