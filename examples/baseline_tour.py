"""Tour of the error-driven simplification baselines.

Shows the classical EDTS algorithms this package implements alongside
RL4QDTS — Top-Down, Bottom-Up, Span-Search, RLTS+ — each under its error
measures and both database adaptations, on one trajectory and on a whole
database.

Run with::

    python examples/baseline_tour.py
"""

from __future__ import annotations

import numpy as np

from repro import synthetic_database
from repro.baselines import (
    RLTSPolicy,
    all_baselines,
    bottom_up,
    simplify_database,
    span_search,
    top_down,
)
from repro.errors import trajectory_error


def main() -> None:
    db = synthetic_database("tdrive", n_trajectories=40, points_scale=0.08, seed=5)
    traj = db[0]
    budget = max(6, len(traj) // 10)
    print(f"one trajectory: {len(traj)} points, budget {budget}\n")

    # --- single-trajectory algorithms ---------------------------------------
    print(f"{'algorithm':<22}{'kept':>6}{'SED err (m)':>14}{'DAD err (rad)':>16}")
    for name, kept in [
        ("Top-Down (SED)", top_down(traj, budget, "sed")),
        ("Top-Down (PED)", top_down(traj, budget, "ped")),
        ("Bottom-Up (SED)", bottom_up(traj, budget, "sed")),
        ("Bottom-Up (SAD)", bottom_up(traj, budget, "sad")),
        ("Span-Search (DAD)", span_search(traj, budget, "dad")),
    ]:
        sed = trajectory_error(traj, kept, "sed")
        dad = trajectory_error(traj, kept, "dad")
        print(f"{name:<22}{len(kept):>6}{sed:>14.1f}{dad:>16.3f}")

    # --- RLTS+: the learned bottom-up policy --------------------------------
    print("\ntraining RLTS+ (learned drop policy)...")
    policy = RLTSPolicy("sed", seed=0).train(db, n_trajectories=8, episodes=2)
    from repro.baselines import rlts_simplify

    kept = rlts_simplify(traj, budget, "sed", policy)
    print(f"RLTS+ (SED): kept {len(kept)}, "
          f"SED err {trajectory_error(traj, kept, 'sed'):.1f} m")

    # --- the 25-baseline registry and the E vs W adaptations ----------------
    print(f"\nregistry holds {len(all_baselines())} baselines; "
          "comparing E (per-trajectory) vs W (whole-database) budgets:")
    from repro.baselines import get_baseline

    ratio = 0.1
    for name in ("Bottom-Up(E,SED)", "Bottom-Up(W,SED)"):
        simplified = simplify_database(db, ratio, get_baseline(name))
        per_traj = [len(s) / len(o) for s, o in zip(simplified, db)]
        print(
            f"  {name:<18} total={simplified.total_points:>6} pts  "
            f"per-trajectory keep ratio: "
            f"min {min(per_traj):.2f} / median {np.median(per_traj):.2f} / "
            f"max {max(per_traj):.2f}"
        )
    print(
        "\nnote the W adaptation's spread: oversampled trajectories shed more"
        " points, the paper's Issue-1 argument for collective simplification."
    )


if __name__ == "__main__":
    main()
