"""Storage accounting: from point budgets to actual bytes on disk.

The QDTS storage budget counts points; production systems count bytes.
This example runs the full pipeline a storage engineer would:

1. generate a T-Drive-like taxi database,
2. simplify it with a query-aware budget,
3. encode both databases with the delta-varint codec,
4. report raw vs encoded vs simplified-and-encoded bytes, and
5. verify the decoded database still answers queries like the encoded one.

Run with::

    python examples/storage_accounting.py
"""

from __future__ import annotations

from repro.baselines import get_baseline, simplify_database
from repro.data import (
    CodecConfig,
    decode_database,
    encode_database,
    storage_report,
    synthetic_database,
)
from repro.eval import ExperimentTable, QueryAccuracyEvaluator, QuerySuiteConfig


def main() -> None:
    db = synthetic_database("tdrive", n_trajectories=80, points_scale=0.15, seed=11)
    print(f"database: {len(db)} trajectories, {db.total_points} points")

    # 10cm spatial and 0.1s temporal resolution — far below GPS accuracy, so
    # quantization is lossless for all practical purposes.
    codec = CodecConfig(quantum_xy=0.1, quantum_t=0.1)

    ratio = 0.1
    simplified = simplify_database(db, ratio, get_baseline("Top-Down(E,SED)"))

    table = ExperimentTable(
        "Storage accounting (raw float64 = 24 bytes/point)",
        ["database", "points", "raw KiB", "encoded KiB", "bytes/point"],
    )
    for name, d in (("original", db), (f"simplified r={ratio:.0%}", simplified)):
        report = storage_report(d, codec)
        table.add_row(
            name,
            report.n_points,
            report.raw_bytes / 1024,
            report.encoded_bytes / 1024,
            report.bytes_per_point,
        )
    table.print()

    original_raw = storage_report(db, codec).raw_bytes
    final = storage_report(simplified, codec).encoded_bytes
    print(f"\nend-to-end reduction: {original_raw / final:.0f}x "
          "(simplification x delta-varint codec)")

    # Round-trip check: decode and confirm query behaviour is unchanged.
    blob = encode_database(simplified, codec)
    decoded = decode_database(blob)
    evaluator = QueryAccuracyEvaluator(
        db, QuerySuiteConfig(n_range_queries=60, clustering_subset=10, seed=0)
    )
    f1_encoded = evaluator.evaluate(simplified, ("range",))["range"]
    f1_decoded = evaluator.evaluate(decoded, ("range",))["range"]
    print(f"range-query F1: before encoding {f1_encoded:.3f}, "
          f"after decode {f1_decoded:.3f}")
    assert abs(f1_encoded - f1_decoded) < 0.02, "codec distorted query results"


if __name__ == "__main__":
    main()
