"""Streaming compression: online simplifiers vs the batch pipeline.

RL4QDTS (like all the paper's baselines) runs in *batch* mode: the whole
database is available when simplification starts. Fleet telemetry often
cannot wait — points arrive one at a time and memory is bounded. This
example exercises the online family from the paper's related work:

* **SQUISH** — keeps a fixed-size priority buffer per trajectory and evicts
  the point whose removal hurts SED the least;
* **dead reckoning** — drops any point predictable (within a tolerance)
  by linear extrapolation of the last kept point's velocity.

It then quantifies what the online constraint costs against the batch
Bottom-Up heuristic and the exact DP optimum, at the same budget.

Run with::

    python examples/streaming_compression.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import bottom_up, dead_reckoning, optimal_min_error, squish
from repro.data import synthetic_database
from repro.errors import trajectory_error
from repro.eval import ExperimentTable, summarize


def main() -> None:
    db = synthetic_database("geolife", n_trajectories=40, points_scale=0.05, seed=5)
    print(f"streaming {len(db)} trajectories point by point...")

    ratio = 0.15
    errors: dict[str, list[float]] = {
        "SQUISH (online)": [],
        "dead reckoning (online)": [],
        "Bottom-Up (batch)": [],
        "optimal DP (batch)": [],
    }
    sizes: dict[str, list[int]] = {name: [] for name in errors}

    for traj in db:
        budget = max(3, int(round(ratio * len(traj))))

        kept = squish(traj, budget)
        errors["SQUISH (online)"].append(trajectory_error(traj, kept))
        sizes["SQUISH (online)"].append(len(kept))

        # Dead reckoning is error-bounded, not size-bounded: pick a
        # tolerance, then report whatever size it produced.
        kept = dead_reckoning(traj, threshold=25.0)
        errors["dead reckoning (online)"].append(trajectory_error(traj, kept))
        sizes["dead reckoning (online)"].append(len(kept))

        kept = bottom_up(traj, budget)
        errors["Bottom-Up (batch)"].append(trajectory_error(traj, kept))
        sizes["Bottom-Up (batch)"].append(len(kept))

        result = optimal_min_error(traj, budget)
        errors["optimal DP (batch)"].append(result.error)
        sizes["optimal DP (batch)"].append(len(result.indices))

    table = ExperimentTable(
        f"Online vs batch simplification (SED error, budget r={ratio:.0%})",
        ["method", "mean SED", "worst SED", "mean kept points"],
    )
    for name in errors:
        summary = summarize(errors[name])
        table.add_row(
            name, summary.mean, max(errors[name]), float(np.mean(sizes[name]))
        )
    table.print()

    online = float(np.mean(errors["SQUISH (online)"]))
    batch = float(np.mean(errors["Bottom-Up (batch)"]))
    optimal = float(np.mean(errors["optimal DP (batch)"]))
    print(f"\nthe online constraint costs {online / max(batch, 1e-9):.2f}x the "
          f"batch heuristic's error; the heuristic sits at "
          f"{batch / max(optimal, 1e-9):.2f}x the true optimum")


if __name__ == "__main__":
    main()
