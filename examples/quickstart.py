"""Quickstart: simplify a trajectory database while preserving query accuracy.

This walks through the full RL4QDTS pipeline on a small synthetic database:

1. generate a Geolife-like trajectory database,
2. train the two cooperative agents on range-query workloads,
3. simplify the database to 5% of its points,
4. compare query accuracy against an error-driven baseline.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import LocalClient, RL4QDTS, synthetic_database
from repro.baselines import get_baseline, simplify_database
from repro.core import RL4QDTSConfig
from repro.data import dataset_statistics
from repro.eval import QueryAccuracyEvaluator, QuerySuiteConfig
from repro.workloads import RangeQueryWorkload


def main() -> None:
    # 1. A scaled-down Geolife-profile database: ~100 trajectories of
    #    pedestrian/vehicle movement with 1-5s sampling.
    db = synthetic_database("geolife", n_trajectories=100, points_scale=0.1, seed=7)
    stats = dataset_statistics(db)
    print(f"database: {len(db)} trajectories, {db.total_points} points")
    print(f"mean sampling interval: {stats.mean_sampling_interval:.1f}s, "
          f"mean segment: {stats.mean_segment_length:.1f}m")

    # 2. Train RL4QDTS. The config below is sized for a quick demo; see
    #    benchmarks/conftest.py for the benchmark-scale settings.
    config = RL4QDTSConfig(
        start_level=6,
        end_level=9,
        delta=10,
        n_training_queries=100,
        n_inference_queries=500,
        episodes=3,
        n_train_databases=2,
        train_db_size=60,
        train_budget_ratio=0.05,
        seed=0,
    )
    print("\ntraining RL4QDTS (two cooperative DQN agents)...")
    model = RL4QDTS.train(db, config=config)
    print(f"trained: best diff over training = {model.history.best_diff:.3f}")

    # 3. Simplify to 5% of the original points — one collective budget for
    #    the whole database, not a per-trajectory ratio.
    ratio = 0.05
    simplified = model.simplify(db, budget_ratio=ratio, seed=1)
    print(f"\nsimplified: {db.total_points} -> {simplified.total_points} points "
          f"({simplified.total_points / db.total_points:.1%})")

    # 4. How well do queries still work? Compare against Bottom-Up(E,SED),
    #    a classic error-driven baseline given the same budget.
    evaluator = QueryAccuracyEvaluator(
        db, QuerySuiteConfig(n_range_queries=100, clustering_subset=12, seed=0)
    )
    baseline = simplify_database(db, ratio, get_baseline("Bottom-Up(E,SED)"))

    print("\nquery accuracy (F1 against results on the original database):")
    print(f"{'task':<14}{'RL4QDTS':>10}{'Bottom-Up(E,SED)':>20}")
    rl_scores = evaluator.evaluate(simplified)
    bu_scores = evaluator.evaluate(baseline)
    for task in rl_scores:
        print(f"{task:<14}{rl_scores[task]:>10.3f}{bu_scores[task]:>20.3f}")

    # 5. Ad-hoc workload analytics run through the unified client API: a
    #    LocalClient rides each database's shared batch QueryEngine
    #    (vectorized passes + memoization — the same path the trainer and
    #    evaluator use internally), and the identical code serves sharded
    #    (ServiceClient) or over a socket (RemoteClient) unchanged.
    workload = RangeQueryWorkload.from_data_distribution(db, 200, seed=3)
    with LocalClient(db) as original, LocalClient(simplified) as approx_client:
        truth = original.range(workload).result_sets
        approx = approx_client.range(workload).result_sets
    kept = sum(len(t & a) for t, a in zip(truth, approx))
    total = sum(len(t) for t in truth)
    print(f"\nclient API: 200 ad-hoc queries, "
          f"{kept}/{total} original result entries preserved")

    # 6. Models persist to a single .npz file.
    model.save("/tmp/rl4qdts_quickstart.npz")
    print("\nmodel saved to /tmp/rl4qdts_quickstart.npz "
          "(reload with RL4QDTS.load)")


if __name__ == "__main__":
    main()
