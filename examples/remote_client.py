"""Remote querying: the unified client API over the asyncio socket server.

The same typed query surface (:class:`repro.client.Client`) runs over
three transports — an in-process engine, a sharded service, and a TCP
socket — and the three are bit-identical by construction. This example
proves it end to end:

1. build a synthetic database and serve it over a loopback asyncio
   socket server (what ``repro serve --listen HOST:PORT`` runs),
2. connect a :class:`~repro.client.RemoteClient` and run all five query
   kinds,
3. stream extra trajectories in over the wire and watch the epoch move,
4. cross-check every answer against a :class:`~repro.client.LocalClient`
   over the same data.

Run with::

    python examples/remote_client.py
"""

from __future__ import annotations

import numpy as np

from repro import LocalClient, QueryService, RemoteClient, synthetic_database
from repro.data.stats import spatial_scale
from repro.data.trajectory import Trajectory
from repro.service.server import serve_in_thread
from repro.workloads import RangeQueryWorkload


def main() -> None:
    # 1. A small database behind a loopback socket server. port=0 lets the
    #    OS pick a free port; serve_in_thread returns once it listens.
    db = synthetic_database("geolife", n_trajectories=60, points_scale=0.08, seed=7)
    handle = serve_in_thread(
        QueryService(db, n_shards=4, partitioner="spatial"), close_service=True
    )
    print(f"server listening on {handle.host}:{handle.port}")

    workload = RangeQueryWorkload.from_data_distribution(db, 25, seed=3)
    queries = [db[i] for i in (2, 11, 29)]
    eps = 0.10 * spatial_scale(db)
    delta = 0.15 * spatial_scale(db)

    # 2. Every query kind over the wire. RemoteClient is a sync facade:
    #    each call is one length-prefixed JSON frame round-trip.
    remote = RemoteClient(handle.host, handle.port)
    local = LocalClient(db)
    print(f"handshake: {remote.server_info['trajectories']} trajectories, "
          f"{remote.server_info['n_shards']} shards, "
          f"epoch {remote.server_info['epoch']}")

    for name, call in [
        ("range", lambda c: c.range(workload).result_sets),
        ("count", lambda c: c.count(workload.boxes).counts),
        ("histogram", lambda c: c.histogram(grid=24).histogram),
        ("knn", lambda c: c.knn(queries, k=3, eps=eps).neighbors),
        ("similarity", lambda c: c.similarity(queries, delta).result_sets),
    ]:
        remote_answer, local_answer = call(remote), call(local)
        same = (
            np.array_equal(remote_answer, local_answer)
            if isinstance(remote_answer, np.ndarray)
            else remote_answer == local_answer
        )
        print(f"{name:<12} remote == local: {same}")

    # 3. Streamed ingest over the wire: trajectories serialize into the
    #    request frame, land in the shards' pending tiers, and bump the
    #    serving epoch (which invalidates result caches by construction).
    rng = np.random.default_rng(0)
    batch = []
    for _ in range(5):
        base = db[int(rng.integers(len(db)))].points
        batch.append(Trajectory(base + np.array([50.0, -25.0, 0.0])))
    result = remote.ingest(batch)
    local.ingest(batch)
    print(f"\ningested {result.added} trajectories -> epoch {result.epoch}")

    # 4. Still bit-identical after ingest.
    r_sets = remote.range(workload).result_sets
    l_sets = local.range(workload).result_sets
    print(f"post-ingest range parity: {r_sets == l_sets}")
    print(f"post-ingest kNN parity:   "
          f"{remote.knn(queries, 3, eps=eps).pairs == local.knn(queries, 3, eps=eps).pairs}")

    remote.close()
    local.close()
    handle.stop()
    print("server stopped cleanly")


if __name__ == "__main__":
    main()
