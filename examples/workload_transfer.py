"""Workload transfer: what happens when the query distribution shifts?

The paper's transferability test (Fig. 9) trains RL4QDTS under one query
distribution and evaluates it under others. This example reproduces that
scenario end to end with the workload toolbox:

1. train under a Gaussian workload centred mid-region,
2. persist the training workload to JSON (as a production system would),
3. evaluate the simplified database under shifted Gaussians, a Zipf
   hotspot workload, and a mixture — without retraining.

Run with::

    python examples/workload_transfer.py
"""

from __future__ import annotations

from repro.baselines import get_baseline, simplify_database
from repro.core import RL4QDTS, RL4QDTSConfig
from repro.eval import ExperimentTable
from repro.queries import f1_score
from repro.workloads import RangeQueryWorkload


def workload_f1(db, simplified, workload) -> float:
    """Mean F1 of a workload's results on the simplified database."""
    truths = workload.evaluate(db)
    results = workload.evaluate(simplified)
    return sum(f1_score(t, r) for t, r in zip(truths, results)) / len(workload)


def main() -> None:
    from repro.data import synthetic_database

    db = synthetic_database("geolife", n_trajectories=80, points_scale=0.08, seed=3)
    ratio = 0.08

    # 1. Train under Gaussian(0.5, 0.2) queries — the paper's setup.
    train_factory = lambda d, seed: RangeQueryWorkload.from_gaussian(  # noqa: E731
        d, 150, mu=0.5, sigma=0.2, seed=seed
    )
    config = RL4QDTSConfig(
        start_level=6, end_level=9, delta=10,
        n_training_queries=150, n_inference_queries=600,
        episodes=3, n_train_databases=2, train_db_size=50,
        train_budget_ratio=ratio, seed=0,
    )
    print("training under Gaussian(mu=0.5, sigma=0.2) queries...")
    model = RL4QDTS.train(db, config=config, workload_factory=train_factory)

    # 2. Persist the annotation workload; a deployment would reload it when
    #    simplifying new data snapshots.
    annotation = train_factory(db, 999)
    annotation.save("/tmp/training_workload.json")
    annotation = RangeQueryWorkload.load("/tmp/training_workload.json")
    simplified = model.simplify(db, budget_ratio=ratio, workload=annotation, seed=1)
    baseline = simplify_database(db, ratio, get_baseline("Bottom-Up(E,SED)"))

    # 3. Evaluate under distributions the model never saw.
    test_workloads = {
        "Gaussian mu=0.5 (training)": RangeQueryWorkload.from_gaussian(
            db, 100, mu=0.5, sigma=0.2, seed=42
        ),
        "Gaussian mu=0.8 (shifted)": RangeQueryWorkload.from_gaussian(
            db, 100, mu=0.8, sigma=0.2, seed=42
        ),
        "Gaussian sigma=0.6 (spread)": RangeQueryWorkload.from_gaussian(
            db, 100, mu=0.5, sigma=0.6, seed=42
        ),
        "Zipf a=4 (hotspots)": RangeQueryWorkload.from_zipf(
            db, 100, a=4.0, seed=42
        ),
        "mixture data+uniform": RangeQueryWorkload.from_mixture(
            db, 100, {"data": 0.6, "uniform": 0.4}, seed=42
        ),
    }

    table = ExperimentTable(
        f"Transfer under query-distribution shift (range F1, r={ratio:.0%})",
        ["test workload", "RL4QDTS", "Bottom-Up(E,SED)"],
    )
    for name, workload in test_workloads.items():
        table.add_row(
            name,
            workload_f1(db, simplified, workload),
            workload_f1(db, baseline, workload),
        )
    table.print()
    print("\nmoderate Gaussian shifts transfer because the policy encodes the "
          "data's spatio-temporal structure, not the training queries (paper, "
          "Section V-B(12)); drastic shifts (Zipf, mixtures) favour the "
          "error-driven baseline at this demo scale — see EXPERIMENTS.md.")


if __name__ == "__main__":
    main()
