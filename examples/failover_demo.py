"""Replication, failover, and live rebalancing, end to end.

With ``replicas=2`` every shard runs two worker processes attached to the
same shared base segments, so killing any single worker loses nothing:
queries fail over to the sibling replica mid-request, the watchdog
restarts the dead worker from the current snapshot plus the replayed
ingest log, and answers stay bit-identical throughout. This example:

1. serves a synthetic database with 2 shards x 2 replicas, a spatial
   partitioner, and a fast watchdog,
2. records reference answers, then SIGKILLs one worker mid-workload and
   shows the same answers coming back with zero failed queries,
3. waits for the watchdog to put the replica back and prints the
   replication counters it exported along the way,
4. splits the hottest shard online, ingests a batch, merges it back —
   answers identical at every step.

Run with::

    python examples/failover_demo.py
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np

from repro import QueryService, synthetic_database
from repro.client import ServiceClient
from repro.workloads import RangeQueryWorkload


def wait_for(predicate, timeout_s: float = 15.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise TimeoutError("condition not met in time")


def main() -> None:
    db = synthetic_database("geolife", n_trajectories=24, seed=7)
    workload = RangeQueryWorkload.from_data_distribution(db, 6, seed=3)

    service = QueryService(
        db,
        n_shards=2,
        executor="process",
        partitioner="spatial",
        replicas=2,
        watchdog_interval=0.25,
        watchdog_deadline=5.0,
    )
    with ServiceClient(service, own_service=True) as client:
        executor = service._executor
        probe = executor.liveness()
        print(
            f"serving {len(db)} trajectories on {service.manager.n_shards} "
            f"shards x 2 replicas ({probe['replicas_live']} workers live)"
        )
        reference = client.count(workload.boxes).counts

        # ---- SIGKILL one worker mid-workload: nothing is lost -------------
        victim = executor.worker_pids()[0]
        print(f"\nSIGKILL worker {victim} and keep querying ...")
        for i in range(20):
            if i == 5:
                os.kill(victim, signal.SIGKILL)
            counts = client.count(workload.boxes).counts
            assert np.array_equal(counts, reference)
        print("20/20 queries answered, every answer identical")

        # ---- the watchdog puts the replica back ---------------------------
        wait_for(lambda: executor.liveness()["replicas_live"] == 4)
        stats = executor.replication_stats()
        counters = stats["counters"]["counters"]
        print(
            f"watchdog healed the set: {stats['replicas_live']}/"
            f"{stats['replicas_total']} live, "
            f"failovers={counters.get('replication.failovers', 0)}, "
            f"restarts={counters.get('replication.restarts', 0)}"
        )

        # ---- online split / merge, bit-identical --------------------------
        n = service.split_shard(0)
        print(f"\nsplit shard 0 online -> {n} shards")
        assert np.array_equal(client.count(workload.boxes).counts, reference)

        extra = synthetic_database("geolife", n_trajectories=4, seed=99)
        client.ingest(list(extra.trajectories))
        after_ingest = client.count(workload.boxes).counts

        n = service.merge_shards(0)
        print(f"merge shards 0+1 online -> {n} shards")
        assert np.array_equal(
            client.count(workload.boxes).counts, after_ingest
        )

        summary = service.stats.summary()
        print(
            f"splits={summary['shard_splits']}, "
            f"merges={summary['shard_merges']}, "
            f"rebalance max pause = "
            f"{summary['rebalance_max_latency_ms']:.1f} ms"
        )
        print(
            "\nanswers were bit-identical through kill, restart, "
            "split, and merge."
        )


if __name__ == "__main__":
    main()
