"""Tour of the supporting toolbox: viz, error-bounded mode, joins.

Beyond the paper's core pipeline the library ships a few practitioner
conveniences:

* ASCII rendering of datasets and simplifications (no plotting stack),
* error-bounded simplification (fix a quality target instead of a size),
* trajectory distance joins ("which pairs ever came close?").

Run with::

    python examples/toolbox_tour.py
"""

from __future__ import annotations

from repro import synthetic_database
from repro.baselines import error_bounded_simplify, top_down
from repro.data.stats import spatial_scale
from repro.errors import trajectory_error
from repro.queries import distance_join
from repro.viz import render_comparison, render_density


def main() -> None:
    db = synthetic_database("chengdu", n_trajectories=60, points_scale=0.6, seed=9)
    scale = spatial_scale(db)

    # --- where is the data? --------------------------------------------------
    print("spatial density of the database (hotspot structure visible):\n")
    print(render_density(db, width=60, height=16))

    # --- error-bounded simplification ---------------------------------------
    traj = db[0]
    tolerance = 0.05 * scale
    kept = error_bounded_simplify(traj, tolerance, "sed")
    print(
        f"\nerror-bounded mode: {len(traj)} -> {len(kept)} points with "
        f"SED <= {tolerance:.0f} m "
        f"(achieved {trajectory_error(traj, kept, 'sed'):.0f} m)"
    )

    # --- budgeted simplification, visual check ------------------------------
    budget = max(6, len(traj) // 8)
    simplified = traj.subsample(top_down(traj, budget, "sed"))
    print(f"\nbudgeted Top-Down to {budget} points "
          "('.' original, '#' kept):\n")
    print(render_comparison(traj, simplified, width=60, height=14))

    # --- who travelled together? --------------------------------------------
    # Joins need temporal overlap, so use the T-Drive profile: multi-hour
    # taxi shifts overlap heavily in time.
    taxis = synthetic_database("tdrive", n_trajectories=40, points_scale=0.08,
                               seed=2)
    delta = 0.15 * spatial_scale(taxis)
    pairs = distance_join(taxis, delta, mode="ever")
    print(f"\ndistance join on {len(taxis)} taxi shifts "
          f"(ever within {delta:.0f} m): {len(pairs)} pairs")
    closest = sorted(tuple(sorted(p)) for p in pairs)[:5]
    print(f"first pairs: {closest}")


if __name__ == "__main__":
    main()
