"""Progressive refinement: upgrade a storage budget without starting over.

A fleet archive is first simplified aggressively (cheap cold storage); later
the operator buys more capacity and wants a better archive. Re-simplifying
from scratch discards the work — and worse, produces a *different* database,
invalidating caches built on the old one. ``RL4QDTS.refine`` instead keeps
every existing point and only spends the *additional* budget, so each tier
is a superset of the previous one (a telescoping archive).

Run with::

    python examples/progressive_refinement.py
"""

from __future__ import annotations

from repro.core import RL4QDTS, RL4QDTSConfig
from repro.data import synthetic_database
from repro.eval import ExperimentTable
from repro.queries import f1_score
from repro.workloads import RangeQueryWorkload


def range_f1(db, simplified, workload) -> float:
    truths = workload.evaluate(db)
    results = workload.evaluate(simplified)
    return sum(f1_score(t, r) for t, r in zip(truths, results)) / len(workload)


def main() -> None:
    db = synthetic_database("geolife", n_trajectories=80, points_scale=0.08, seed=3)
    config = RL4QDTSConfig(
        start_level=6, end_level=9, delta=10,
        n_training_queries=150, n_inference_queries=600,
        episodes=3, n_train_databases=2, train_db_size=50,
        train_budget_ratio=0.05, seed=0,
    )
    print("training RL4QDTS...")
    model = RL4QDTS.train(db, config=config)
    test = RangeQueryWorkload.from_data_distribution(db, 100, seed=77)

    # Tier 0: aggressive 4% archive. Tiers 1-2: refined supersets.
    tiers = [0.04, 0.08, 0.16]
    table = ExperimentTable(
        "Telescoping archive: each tier refines the previous one",
        ["tier", "points", "kept fraction", "range F1"],
    )
    current = model.simplify(db, budget_ratio=tiers[0], seed=1)
    table.add_row("simplify r=4%", current.total_points,
                  current.total_points / db.total_points,
                  range_f1(db, current, test))
    previous_points = {
        t.traj_id: {tuple(r) for r in t.points} for t in current
    }
    for ratio in tiers[1:]:
        current = model.refine(db, current, budget_ratio=ratio, seed=2)
        # Superset check: refinement never drops a point.
        for traj in current:
            assert previous_points[traj.traj_id] <= {
                tuple(r) for r in traj.points
            }
        previous_points = {
            t.traj_id: {tuple(r) for r in t.points} for t in current
        }
        table.add_row(f"refine to r={ratio:.0%}", current.total_points,
                      current.total_points / db.total_points,
                      range_f1(db, current, test))
    table.print()
    print("\nevery tier contains the previous tier's points — caches and "
          "downstream artifacts built on a tier stay valid after upgrades.")


if __name__ == "__main__":
    main()
