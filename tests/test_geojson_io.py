"""Tests for GeoJSON trajectory persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import load_database, save_database


class TestGeoJSONRoundtrip:
    def test_roundtrip(self, small_db, tmp_path):
        path = tmp_path / "db.geojson"
        save_database(small_db, path)
        restored = load_database(path)
        assert len(restored) == len(small_db)
        for orig, back in zip(small_db, restored):
            assert np.allclose(orig.points, back.points)

    def test_valid_geojson_structure(self, small_db, tmp_path):
        path = tmp_path / "db.geojson"
        save_database(small_db, path)
        payload = json.loads(path.read_text())
        assert payload["type"] == "FeatureCollection"
        assert len(payload["features"]) == len(small_db)
        feature = payload["features"][0]
        assert feature["geometry"]["type"] == "LineString"
        assert len(feature["geometry"]["coordinates"]) == len(small_db[0])
        assert len(feature["properties"]["times"]) == len(small_db[0])

    def test_rejects_non_collection(self, tmp_path):
        path = tmp_path / "bad.geojson"
        path.write_text(json.dumps({"type": "Feature"}))
        with pytest.raises(ValueError):
            load_database(path)

    def test_rejects_non_linestring(self, tmp_path):
        path = tmp_path / "bad.geojson"
        path.write_text(
            json.dumps(
                {
                    "type": "FeatureCollection",
                    "features": [
                        {
                            "type": "Feature",
                            "geometry": {"type": "Point", "coordinates": [0, 0]},
                            "properties": {"times": [0.0]},
                        }
                    ],
                }
            )
        )
        with pytest.raises(ValueError):
            load_database(path)

    def test_rejects_missing_times(self, tmp_path):
        path = tmp_path / "bad.geojson"
        path.write_text(
            json.dumps(
                {
                    "type": "FeatureCollection",
                    "features": [
                        {
                            "type": "Feature",
                            "geometry": {
                                "type": "LineString",
                                "coordinates": [[0, 0], [1, 1]],
                            },
                            "properties": {},
                        }
                    ],
                }
            )
        )
        with pytest.raises(ValueError):
            load_database(path)

    def test_unknown_suffix_still_rejected(self, small_db, tmp_path):
        with pytest.raises(ValueError):
            save_database(small_db, tmp_path / "db.parquet")
