"""Unit + property tests for the SED/PED/DAD/SAD error measures."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    MEASURES,
    dad_error,
    ped_error,
    sad_error,
    sed_error,
    segment_error,
    trajectory_error,
    database_errors,
    synchronized_positions,
)
from repro.data.database import TrajectoryDatabase
from tests.conftest import make_trajectory


def line(n=5, speed=1.0, dt=1.0):
    """Points moving along +x at constant speed with regular sampling."""
    ts = np.arange(n) * dt
    return np.column_stack([ts * speed, np.zeros(n), ts])


class TestSED:
    def test_zero_on_constant_velocity(self):
        assert sed_error(line(6), 0, 5) == pytest.approx(0.0)

    def test_detour_measured_synchronously(self):
        # p1 is displaced 3 up at t=1; the synchronized point is (1, 0).
        pts = np.array([[0, 0, 0], [1, 3, 1], [2, 0, 2]], dtype=float)
        assert sed_error(pts, 0, 2) == pytest.approx(3.0)

    def test_irregular_sampling_synchronization(self):
        # Anchor spans t in [0, 10]; point at t=1 syncs to x=1, not x=5.
        pts = np.array([[0, 0, 0], [5, 0, 1], [10, 0, 10]], dtype=float)
        assert sed_error(pts, 0, 2) == pytest.approx(4.0)

    def test_zero_duration_anchor_syncs_to_start(self):
        pts = np.array([[0, 0, 0], [4, 0, 0.5], [0, 3, 1]], dtype=float)
        pts[:, 2] = [0, 0.5, 1]  # normal case first
        assert sed_error(pts, 0, 2) > 0

    def test_adjacent_segment_zero(self):
        assert sed_error(line(3), 0, 1) == 0.0

    def test_synchronized_positions_shape(self):
        sync = synchronized_positions(line(10), 2, 8)
        assert sync.shape == (5, 2)


class TestPED:
    def test_zero_on_collinear(self):
        pts = line(5)
        pts[2, 0] = 1.7  # still on the x-axis line
        assert ped_error(pts, 0, 4) == pytest.approx(0.0)

    def test_perpendicular_offset(self):
        pts = np.array([[0, 0, 0], [1, 2, 1], [2, 0, 2]], dtype=float)
        assert ped_error(pts, 0, 2) == pytest.approx(2.0)

    def test_ped_ignores_time(self):
        a = np.array([[0, 0, 0], [1, 2, 1], [2, 0, 2]], dtype=float)
        b = np.array([[0, 0, 0], [1, 2, 1.9], [2, 0, 2]], dtype=float)
        assert ped_error(a, 0, 2) == pytest.approx(ped_error(b, 0, 2))

    def test_degenerate_anchor_distance_to_point(self):
        pts = np.array([[0, 0, 0], [3, 4, 1], [0, 0, 2]], dtype=float)
        assert ped_error(pts, 0, 2) == pytest.approx(5.0)

    def test_ped_leq_sed_on_shared_geometry(self):
        """PED projects onto the line, so it cannot exceed the synchronized
        distance for the same anchor when motion is uniform."""
        rng = np.random.default_rng(0)
        for _ in range(20):
            pts = rng.uniform(0, 10, size=(6, 2))
            ts = np.arange(6.0)
            traj = np.column_stack([pts, ts])
            assert ped_error(traj, 0, 5) <= sed_error(traj, 0, 5) + 1e-9


class TestDAD:
    def test_zero_on_straight_movement(self):
        assert dad_error(line(5), 0, 4) == pytest.approx(0.0)

    def test_right_angle_detour(self):
        # Anchor 0->2 heads +y (pi/2). Segment 0->1 heads +x (diff pi/2);
        # segment 1->2 heads up-left at 3pi/4 (diff pi/4). Max is pi/2.
        pts = np.array([[0, 0, 0], [1, 0, 1], [0, 1, 2]], dtype=float)
        assert dad_error(pts, 0, 2) == pytest.approx(np.pi / 2, abs=1e-6)

    def test_bounded_by_pi(self, zigzag_trajectory):
        err = dad_error(zigzag_trajectory.points, 0, len(zigzag_trajectory) - 1)
        assert 0.0 <= err <= np.pi

    def test_stationary_segments_ignored(self):
        pts = np.array([[0, 0, 0], [0, 0, 1], [1, 0, 2]], dtype=float)
        assert dad_error(pts, 0, 2) == pytest.approx(0.0)

    def test_zero_length_anchor_maximally_wrong(self):
        pts = np.array([[0, 0, 0], [5, 0, 1], [0, 0, 2]], dtype=float)
        assert dad_error(pts, 0, 2) == pytest.approx(np.pi)


class TestSAD:
    def test_zero_on_constant_speed(self):
        assert sad_error(line(6, speed=3.0), 0, 5) == pytest.approx(0.0)

    def test_speed_change_detected(self):
        # First segment speed 1, second speed 3; anchor speed 2.
        pts = np.array([[0, 0, 0], [1, 0, 1], [4, 0, 2]], dtype=float)
        assert sad_error(pts, 0, 2) == pytest.approx(1.0)

    def test_stop_detected(self):
        pts = np.array([[0, 0, 0], [0, 0, 1], [4, 0, 2]], dtype=float)
        # Segment speeds 0 and 4; anchor speed 2 -> max deviation 2.
        assert sad_error(pts, 0, 2) == pytest.approx(2.0)


class TestAggregation:
    def test_segment_error_validates(self, random_trajectory):
        pts = random_trajectory.points
        with pytest.raises(ValueError):
            segment_error(pts, 5, 5)
        with pytest.raises(ValueError):
            segment_error(pts, -1, 5)
        with pytest.raises(ValueError, match="unknown measure"):
            segment_error(pts, 0, 5, "l2")

    def test_trajectory_error_requires_endpoints(self, random_trajectory):
        with pytest.raises(ValueError):
            trajectory_error(random_trajectory, [0, 5])

    def test_trajectory_error_full_keep_is_zero(self, random_trajectory):
        kept = list(range(len(random_trajectory)))
        for m in MEASURES:
            assert trajectory_error(random_trajectory, kept, m) == 0.0

    def test_trajectory_error_is_max_over_segments(self, random_trajectory):
        pts = random_trajectory.points
        kept = [0, 10, 29]
        expected = max(segment_error(pts, 0, 10), segment_error(pts, 10, 29))
        assert trajectory_error(random_trajectory, kept) == pytest.approx(expected)

    def test_database_errors(self, small_db):
        simplified = small_db.map_simplify(lambda t: [0, len(t) - 1])
        errors = database_errors(small_db, simplified, "sed")
        assert len(errors) == len(small_db)
        assert (errors >= 0).all()

    def test_database_errors_zero_for_identity(self, small_db):
        errors = database_errors(small_db, small_db, "sed")
        assert np.allclose(errors, 0.0)

    def test_database_errors_rejects_non_subsequence(self, small_db):
        other = TrajectoryDatabase(
            [make_trajectory(n=len(t), seed=99 + t.traj_id) for t in small_db]
        )
        with pytest.raises(ValueError):
            database_errors(small_db, other)


@settings(max_examples=40)
@given(seed=st.integers(0, 500), n=st.integers(4, 20))
def test_translation_invariance(seed, n):
    """Shifting all coordinates (and times) leaves every measure unchanged."""
    traj = make_trajectory(n=n, seed=seed)
    shifted = traj.points.copy()
    shifted[:, 0] += 123.0
    shifted[:, 1] -= 45.0
    for measure, fn in MEASURES.items():
        assert fn(shifted, 0, n - 1) == pytest.approx(
            fn(traj.points, 0, n - 1), abs=1e-8
        )


@settings(max_examples=40)
@given(seed=st.integers(0, 500), angle=st.floats(0.0, 2 * np.pi))
def test_rotation_invariance(seed, angle):
    """Rotating the plane leaves every measure unchanged."""
    traj = make_trajectory(n=10, seed=seed)
    c, s = np.cos(angle), np.sin(angle)
    rotated = traj.points.copy()
    rotated[:, 0] = c * traj.points[:, 0] - s * traj.points[:, 1]
    rotated[:, 1] = s * traj.points[:, 0] + c * traj.points[:, 1]
    for measure, fn in MEASURES.items():
        assert fn(rotated, 0, 9) == pytest.approx(fn(traj.points, 0, 9), abs=1e-8)


@settings(max_examples=40)
@given(seed=st.integers(0, 500), factor=st.floats(0.1, 10.0))
def test_spatial_scaling_behaviour(seed, factor):
    """Scaling space scales SED/PED/SAD linearly and leaves DAD unchanged."""
    traj = make_trajectory(n=10, seed=seed)
    scaled = traj.points.copy()
    scaled[:, :2] *= factor
    for measure in ("sed", "ped", "sad"):
        assert MEASURES[measure](scaled, 0, 9) == pytest.approx(
            factor * MEASURES[measure](traj.points, 0, 9), rel=1e-6
        )
    assert MEASURES["dad"](scaled, 0, 9) == pytest.approx(
        MEASURES["dad"](traj.points, 0, 9), abs=1e-8
    )


@given(seed=st.integers(0, 300))
def test_errors_nonnegative_and_finite(seed):
    traj = make_trajectory(n=12, seed=seed)
    for measure, fn in MEASURES.items():
        err = fn(traj.points, 0, 11)
        assert np.isfinite(err)
        assert err >= 0.0
