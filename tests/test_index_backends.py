"""Property tests of the pluggable IndexBackend protocol.

Three layers of guarantees:

* protocol conformance — every backend builds from a database, yields
  sorted unique candidate-id arrays that are supersets of the exact
  answer, and bounds distances admissibly;
* engine parity — the full batched query suite (range, state evaluation,
  count, histogram, kNN candidates, similarity, point memberships) is
  bit-identical through every backend;
* the distance lower bound's geometry (Chebyshev gap, temporal
  disjointness) matches a brute-force computation over the actual points.
"""

import numpy as np
import pytest

from repro.data import BoundingBox, Trajectory, TrajectoryDatabase
from repro.index import (
    BACKENDS,
    GridBackend,
    GridIndex,
    IndexBackend,
    chebyshev_gap,
    make_backend,
)
from repro.queries import QueryEngine
from repro.workloads import RangeQueryWorkload


def random_db(seed: int, n_traj: int = 8) -> TrajectoryDatabase:
    rng = np.random.default_rng(seed)
    trajs = []
    for i in range(n_traj):
        n = int(rng.integers(2, 15))
        xy = rng.uniform(0.0, 100.0, size=(n, 2))
        t = np.sort(rng.uniform(0.0, 40.0, size=n)) + np.arange(n) * 1e-3
        trajs.append(Trajectory(np.column_stack([xy, t]), traj_id=i))
    return TrajectoryDatabase(trajs)


def bounds_of(boxes):
    lo = np.array([[b.xmin, b.ymin, b.tmin] for b in boxes])
    hi = np.array([[b.xmax, b.ymax, b.tmax] for b in boxes])
    return lo, hi


@pytest.fixture(scope="module")
def db() -> TrajectoryDatabase:
    return random_db(7)


@pytest.fixture(scope="module")
def workload(db) -> RangeQueryWorkload:
    return RangeQueryWorkload.generate("data", db, 15, seed=3)


class TestProtocolConformance:
    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_registry_round_trip(self, db, name):
        backend = make_backend(name, db)
        assert isinstance(backend, IndexBackend)
        assert backend.name == name
        assert backend.database is db
        assert backend.extent == db.bounding_box

    def test_make_backend_rejects_unknown_names(self, db):
        with pytest.raises(ValueError, match="unknown index backend"):
            make_backend("btree", db)

    def test_empty_database_rejected(self):
        # TrajectoryDatabase itself refuses to be empty; the backend guard
        # is the defensive backstop for database-like subclasses.
        with pytest.raises(ValueError, match="at least one trajectory"):
            GridBackend(TrajectoryDatabase([]))

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_candidate_trajectories_single_box(self, db, name):
        backend = make_backend(name, db)
        box = db[0].bounding_box
        cand = backend.candidate_trajectories(box)
        assert 0 in cand  # a trajectory is a candidate of its own bbox

    def test_grid_backend_adopts_existing_index_geometry(self, db):
        grid = GridIndex(db, resolution=(8, 8, 4))
        backend = GridBackend(db, grid=grid)
        assert backend.resolution == (8, 8, 4)
        assert np.array_equal(backend.origin, grid._origin)
        engine = QueryEngine(db, backend=backend)
        assert engine.resolution == (8, 8, 4)

    def test_engine_rejects_backend_of_other_database(self, db):
        other = random_db(8)
        with pytest.raises(ValueError, match="different database"):
            QueryEngine(db, backend=GridBackend(other))

    def test_engine_rejects_grid_and_backend_together(self, db):
        with pytest.raises(ValueError, match="not both"):
            QueryEngine(db, grid=GridIndex(db), backend=GridBackend(db))


class TestEngineParityAcrossBackends:
    """The whole batched suite is bit-identical through every backend."""

    def test_range_and_state_evaluation(self, db, workload):
        from repro.data.simplification import SimplificationState

        reference = QueryEngine(db)
        expected = reference.evaluate(workload)
        state = SimplificationState(db)
        expected_state = reference.evaluate_state(workload, state)
        for name in sorted(BACKENDS):
            engine = QueryEngine(db, backend=make_backend(name, db))
            assert engine.evaluate(workload) == expected, name
            assert engine.evaluate_state(workload, state) == expected_state, name

    def test_aggregates_and_histogram(self, db, workload):
        reference = QueryEngine(db)
        counts = reference.count(workload.boxes)
        hist = reference.histogram(grid=8)
        for name in sorted(BACKENDS):
            engine = QueryEngine(db, backend=make_backend(name, db))
            assert np.array_equal(engine.count(workload.boxes), counts), name
            assert np.array_equal(engine.histogram(grid=8), hist), name

    def test_knn_candidates_and_similarity(self, db):
        windows = [
            (float(db[i].times[0]), float(db[i].times[-1])) for i in (0, 2, 5)
        ]
        queries = [db[0], db[2]]
        reference = QueryEngine(db)
        knn = reference.knn_candidates(windows)
        sim = reference.similarity(queries, delta=25.0)
        for name in sorted(BACKENDS):
            engine = QueryEngine(db, backend=make_backend(name, db))
            got = engine.knn_candidates(windows)
            assert all(np.array_equal(a, b) for a, b in zip(got, knn)), name
            assert engine.similarity(queries, delta=25.0) == sim, name

    def test_point_memberships(self, db, workload):
        reference = QueryEngine(db)
        rows, boxes_idx = reference.point_memberships(workload.boxes)
        for name in sorted(BACKENDS):
            engine = QueryEngine(db, backend=make_backend(name, db))
            r, b = engine.point_memberships(workload.boxes)
            assert np.array_equal(r, rows), name
            assert np.array_equal(b, boxes_idx), name

    def test_incremental_view_reset(self, db, workload):
        from repro.data.simplification import SimplificationState

        state = SimplificationState(db)
        reference = QueryEngine(db).incremental_view(workload)
        reference.reset(state)
        for name in sorted(BACKENDS):
            view = QueryEngine(
                db, backend=make_backend(name, db)
            ).incremental_view(workload)
            view.reset(state)
            assert view.result_sets == reference.result_sets, name


class TestDistanceLowerBound:
    def test_zero_when_boxes_overlap(self, db):
        backend = make_backend("grid", db)
        assert backend.distance_lower_bound(db.bounding_box) == 0.0

    def test_infinite_when_temporally_disjoint(self, db):
        ext = db.bounding_box
        far = BoundingBox(
            ext.xmin, ext.xmax, ext.ymin, ext.ymax,
            ext.tmax + 10.0, ext.tmax + 20.0,
        )
        for name in sorted(BACKENDS):
            assert np.isinf(make_backend(name, db).distance_lower_bound(far)), name

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_admissible_against_brute_force(self, seed):
        """The bound never exceeds the true min Chebyshev point distance."""
        db = random_db(seed, n_traj=5)
        rng = np.random.default_rng(seed + 50)
        points = db.point_matrix()
        for _ in range(10):
            lo = rng.uniform(-50.0, 150.0, size=3)
            hi = lo + rng.uniform(0.0, 60.0, size=3)
            box = BoundingBox(lo[0], hi[0], lo[1], hi[1], lo[2], hi[2])
            in_window = (points[:, 2] >= box.tmin) & (points[:, 2] <= box.tmax)
            if not in_window.any():
                continue  # inf bound is trivially admissible
            dx = np.maximum(
                np.maximum(box.xmin - points[:, 0], points[:, 0] - box.xmax), 0.0
            )
            dy = np.maximum(
                np.maximum(box.ymin - points[:, 1], points[:, 1] - box.ymax), 0.0
            )
            true_min = float(np.maximum(dx, dy)[in_window].min())
            for name in sorted(BACKENDS):
                bound = make_backend(name, db).distance_lower_bound(box)
                assert bound <= true_min + 1e-9, (name, bound, true_min)

    def test_chebyshev_gap_matches_axis_arithmetic(self):
        a = BoundingBox(0.0, 1.0, 0.0, 1.0, 0.0, 1.0)
        b = BoundingBox(4.0, 5.0, 2.0, 3.0, 0.5, 2.0)
        assert chebyshev_gap(a, b) == 3.0  # max(x gap 3, y gap 1)
        assert chebyshev_gap(a, BoundingBox(0.5, 2.0, 0.5, 2.0, 0.0, 1.0)) == 0.0
