"""Unit tests for the numpy DQN stack (network, replay, agent)."""

import numpy as np
import pytest

from repro.rl import DQNAgent, DQNConfig, QNetwork, ReplayMemory, Transition


def make_transition(state_dim=4, n_actions=3, reward=1.0, done=False, seed=0):
    rng = np.random.default_rng(seed)
    return Transition(
        state=rng.normal(size=state_dim),
        action=int(rng.integers(n_actions)),
        reward=reward,
        next_state=rng.normal(size=state_dim),
        next_mask=np.ones(n_actions, dtype=bool),
        done=done,
    )


class TestQNetwork:
    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            QNetwork(0, 3)
        with pytest.raises(ValueError):
            QNetwork(3, 0)

    def test_predict_shape(self):
        net = QNetwork(4, 3, hidden=8, seed=0)
        assert net.predict(np.zeros(4)).shape == (1, 3)
        assert net.predict(np.zeros((7, 4))).shape == (7, 3)

    def test_deterministic_init(self):
        a = QNetwork(4, 3, seed=5)
        b = QNetwork(4, 3, seed=5)
        x = np.ones((2, 4))
        assert np.allclose(a.predict(x), b.predict(x))

    def test_training_reduces_regression_loss(self):
        rng = np.random.default_rng(0)
        net = QNetwork(4, 3, hidden=16, lr=0.01, seed=1)
        states = rng.normal(size=(64, 4))
        actions = rng.integers(0, 3, size=64)
        targets = states[:, 0] * 2.0 + (actions == 1) * 1.5
        first = net.train_step(states, actions, targets)
        for _ in range(300):
            last = net.train_step(states, actions, targets)
        assert last < 0.3 * first

    def test_train_step_only_moves_selected_actions(self):
        net = QNetwork(2, 3, hidden=8, lr=0.05, seed=2)
        state = np.array([[1.0, -1.0]])
        before = net.predict(state)[0].copy()
        # Batch of identical states, always action 0, large target.
        states = np.repeat(state, 8, axis=0)
        for _ in range(50):
            net.train_step(states, np.zeros(8, dtype=int), np.full(8, 10.0))
        after = net.predict(state)[0]
        # Action 0 moved much more than the untouched heads.
        assert abs(after[0] - before[0]) > 3 * abs(after[2] - before[2])

    def test_copy_from(self):
        a = QNetwork(4, 3, seed=1)
        b = QNetwork(4, 3, seed=2)
        x = np.ones((2, 4))
        assert not np.allclose(a.predict(x), b.predict(x))
        b.copy_from(a)
        assert np.allclose(a.predict(x), b.predict(x))

    def test_get_set_parameters_roundtrip(self):
        a = QNetwork(4, 3, seed=1)
        params = a.get_parameters()
        b = QNetwork(4, 3, seed=9)
        b.set_parameters(params)
        x = np.linspace(-1, 1, 8).reshape(2, 4)
        assert np.allclose(a.predict(x), b.predict(x))

    def test_batchnorm_running_stats_update(self):
        net = QNetwork(4, 2, hidden=8, seed=0)
        before = net.running_mean.copy()
        rng = np.random.default_rng(1)
        net.train_step(
            rng.normal(5.0, 1.0, size=(32, 4)),
            rng.integers(0, 2, size=32),
            np.zeros(32),
        )
        assert not np.allclose(before, net.running_mean)


class TestReplayMemory:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            ReplayMemory(0)

    def test_fifo_eviction(self):
        mem = ReplayMemory(capacity=3)
        for i in range(5):
            mem.push(make_transition(reward=float(i), seed=i))
        assert len(mem) == 3
        rewards = {t.reward for t in mem._buffer}
        assert rewards == {2.0, 3.0, 4.0}

    def test_sample_without_replacement(self):
        mem = ReplayMemory(capacity=10)
        for i in range(10):
            mem.push(make_transition(reward=float(i), seed=i))
        batch = mem.sample(10, np.random.default_rng(0))
        assert len({t.reward for t in batch}) == 10

    def test_sample_caps_at_size(self):
        mem = ReplayMemory(capacity=10)
        mem.push(make_transition())
        assert len(mem.sample(32, np.random.default_rng(0))) == 1

    def test_clear(self):
        mem = ReplayMemory()
        mem.push(make_transition())
        mem.clear()
        assert len(mem) == 0


class TestDQNAgent:
    def test_act_respects_mask_greedy_and_random(self):
        agent = DQNAgent(4, 5, seed=0)
        mask = np.array([False, True, False, True, False])
        for greedy in (True, False):
            for _ in range(20):
                action = agent.act(np.zeros(4), mask, greedy=greedy)
                assert action in (1, 3)

    def test_act_no_valid_action_raises(self):
        agent = DQNAgent(4, 3, seed=0)
        with pytest.raises(ValueError):
            agent.act(np.zeros(4), np.zeros(3, dtype=bool))

    def test_learn_deferred_until_buffer_filled(self):
        agent = DQNAgent(4, 3, DQNConfig(learn_start=16, batch_size=8), seed=0)
        agent.remember(make_transition())
        assert agent.learn() is None

    def test_learn_returns_loss(self):
        agent = DQNAgent(4, 3, DQNConfig(learn_start=8, batch_size=8), seed=0)
        for i in range(16):
            agent.remember(make_transition(seed=i))
        loss = agent.learn()
        assert loss is not None and np.isfinite(loss)

    def test_target_sync(self):
        config = DQNConfig(learn_start=4, batch_size=4, target_sync_every=2)
        agent = DQNAgent(4, 3, config, seed=0)
        for i in range(8):
            agent.remember(make_transition(seed=i))
        agent.learn()
        x = np.ones((1, 4))
        assert not np.allclose(agent.q_net.predict(x), agent.target_net.predict(x))
        agent.learn()  # second learn triggers the sync
        assert np.allclose(agent.q_net.predict(x), agent.target_net.predict(x))

    def test_epsilon_decay_floor(self):
        agent = DQNAgent(4, 3, DQNConfig(epsilon_min=0.1, epsilon_decay=0.5), seed=0)
        for _ in range(50):
            agent.decay_epsilon()
        assert agent.epsilon == pytest.approx(0.1)

    def test_terminal_states_ignore_future_value(self):
        """A done transition's target is exactly the reward."""
        config = DQNConfig(learn_start=1, batch_size=1, gamma=0.99)
        agent = DQNAgent(2, 2, config, seed=0)
        t = Transition(
            state=np.array([1.0, 0.0]),
            action=0,
            reward=5.0,
            next_state=np.array([0.0, 1.0]),
            next_mask=np.ones(2, dtype=bool),
            done=True,
        )
        for _ in range(200):
            agent.memory.clear()
            agent.remember(t)
            agent.learn()
        assert agent.q_net.predict(t.state)[0, 0] == pytest.approx(5.0, abs=0.5)

    def test_all_invalid_next_mask_treated_as_terminal(self):
        config = DQNConfig(learn_start=1, batch_size=1)
        agent = DQNAgent(2, 2, config, seed=0)
        t = Transition(
            state=np.array([1.0, 0.0]),
            action=0,
            reward=1.0,
            next_state=np.array([0.0, 1.0]),
            next_mask=np.zeros(2, dtype=bool),
            done=False,
        )
        agent.remember(t)
        loss = agent.learn()
        assert loss is not None and np.isfinite(loss)

    def test_parameters_roundtrip(self):
        a = DQNAgent(4, 3, seed=0)
        b = DQNAgent(4, 3, seed=9)
        b.set_parameters(a.get_parameters())
        x = np.ones((1, 4))
        assert np.allclose(a.q_net.predict(x), b.q_net.predict(x))
        assert np.allclose(b.q_net.predict(x), b.target_net.predict(x))
