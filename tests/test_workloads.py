"""Unit tests for the range-query workload generators."""

import numpy as np
import pytest

from repro.workloads import RangeQueryWorkload


class TestConstruction:
    def test_from_centres(self, small_db):
        centres = small_db.all_points()[:5]
        wl = RangeQueryWorkload.from_centres(centres, 2.0, 4.0)
        assert len(wl) == 5
        for q, c in zip(wl, centres):
            assert q.box.contains_point(*c)

    def test_generate_dispatch(self, small_db):
        for dist in ("data", "gaussian", "zipf", "real"):
            wl = RangeQueryWorkload.generate(dist, small_db, 6, seed=1)
            assert len(wl) == 6
            assert wl.distribution == dist

    def test_generate_unknown(self, small_db):
        with pytest.raises(ValueError, match="unknown distribution"):
            RangeQueryWorkload.generate("pareto", small_db, 5)


class TestDistributions:
    def test_data_centres_on_points(self, small_db):
        wl = RangeQueryWorkload.from_data_distribution(
            small_db, 20, spatial_extent=1e-6, temporal_extent=1e-6, seed=2
        )
        # With a vanishing extent every query still contains its centre point,
        # so every query matches at least one trajectory.
        results = wl.evaluate(small_db)
        assert all(len(r) >= 1 for r in results)

    def test_gaussian_centres_cluster_near_mu(self, small_db):
        box = small_db.bounding_box
        wl = RangeQueryWorkload.from_gaussian(
            small_db, 200, mu=0.5, sigma=0.05, seed=3
        )
        xs = np.array([q.box.center[0] for q in wl])
        mid = 0.5 * (box.xmin + box.xmax)
        span = box.xmax - box.xmin
        assert abs(xs.mean() - mid) < 0.05 * span

    def test_gaussian_clips_to_region(self, small_db):
        wl = RangeQueryWorkload.from_gaussian(small_db, 100, mu=2.0, sigma=0.01, seed=1)
        box = small_db.bounding_box
        for q in wl:
            cx = q.box.center[0]
            assert box.xmin - 1e-6 <= cx <= box.xmax + 1e-6

    def test_zipf_concentrates_with_large_exponent(self, geolife_db):
        flat = RangeQueryWorkload.from_zipf(geolife_db, 150, a=1.5, seed=4)
        sharp = RangeQueryWorkload.from_zipf(geolife_db, 150, a=8.0, seed=4)

        def spread(wl):
            centres = np.array([q.box.center[:2] for q in wl])
            return centres.std(axis=0).sum()

        assert spread(sharp) <= spread(flat)

    def test_zipf_rejects_small_exponent(self, small_db):
        with pytest.raises(ValueError):
            RangeQueryWorkload.from_zipf(small_db, 5, a=1.0)

    def test_real_centres_near_endpoints(self, small_db):
        wl = RangeQueryWorkload.from_real_distribution(
            small_db, 50, jitter=0.0, seed=5
        )
        endpoints = np.concatenate(
            [np.stack([t.points[0, :2], t.points[-1, :2]]) for t in small_db]
        )
        for q in wl:
            centre = np.array(q.box.center[:2])
            gaps = np.linalg.norm(endpoints - centre, axis=1)
            assert gaps.min() < 1e-6


class TestBehaviour:
    def test_deterministic_by_seed(self, small_db):
        a = RangeQueryWorkload.from_data_distribution(small_db, 10, seed=7)
        b = RangeQueryWorkload.from_data_distribution(small_db, 10, seed=7)
        assert a.boxes == b.boxes

    def test_evaluate_returns_per_query_sets(self, small_db, small_workload):
        results = small_workload.evaluate(small_db)
        assert len(results) == len(small_workload)
        assert all(isinstance(r, set) for r in results)

    def test_split(self, small_workload):
        left, right = small_workload.split(0.4, seed=1)
        assert len(left) + len(right) == len(small_workload)
        assert len(left) == round(0.4 * len(small_workload))

    def test_split_rejects_bad_fraction(self, small_workload):
        with pytest.raises(ValueError):
            small_workload.split(0.0)
        with pytest.raises(ValueError):
            small_workload.split(1.0)

    def test_default_extents_relative_to_scale(self, geolife_db):
        from repro.data.stats import spatial_scale

        wl = RangeQueryWorkload.from_data_distribution(geolife_db, 5, seed=0)
        extent = wl[0].box.xmax - wl[0].box.xmin
        assert extent == pytest.approx(0.3 * spatial_scale(geolife_db), rel=1e-6)
