"""The concurrent serving plane: pipelined clients, worker pool, admission.

What PR 9 must prove end to end:

* the worker pool changes latency, never answers — N pipelined async
  clients with interleaved ingest stay bit-identical to
  :class:`LocalClient` on both executors and both stores, and every
  request id each client sent comes back exactly once;
* admission control refuses with a typed ``Overloaded`` frame *before*
  executing (so the client may retry anything, including ingest), and
  the retry budget absorbs transient overload;
* the handshake enforces ``auth_token`` without echoing the secret;
* concurrent large response frames on one connection never interleave
  mid-frame (the per-connection write lock's regression test).
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.client.aio as aio
from repro.client import (
    AsyncRemoteClient,
    LocalClient,
    OverloadedError,
    RemoteClient,
    ServerError,
)
from repro.data import synthetic_database
from repro.service import QueryService, serve_in_thread
from repro.workloads import RangeQueryWorkload

from tests.test_server import server_db, shifted_batch


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------- handshake
class TestAuthToken:
    @pytest.fixture()
    def guarded(self):
        handle = serve_in_thread(
            QueryService(server_db(), n_shards=2),
            close_service=True,
            auth_token="s3cret",
        )
        try:
            yield handle
        finally:
            handle.stop()

    def test_correct_token_serves(self, guarded):
        with RemoteClient(
            guarded.host, guarded.port, auth_token="s3cret"
        ) as client:
            assert client.describe()["trajectories"] == 16

    def test_missing_token_rejected_without_echoing_secret(self, guarded):
        with pytest.raises(ServerError, match="AuthError") as excinfo:
            RemoteClient(guarded.host, guarded.port)
        assert "s3cret" not in str(excinfo.value)

    def test_wrong_token_rejected(self, guarded):
        with pytest.raises(ServerError, match="AuthError"):
            RemoteClient(guarded.host, guarded.port, auth_token="nope")

    def test_async_client_sends_token(self, guarded):
        async def scenario():
            async with await AsyncRemoteClient.open(
                guarded.host, guarded.port, auth_token="s3cret"
            ) as client:
                return await client.describe()

        assert run(scenario())["trajectories"] == 16

    def test_unguarded_server_ignores_stray_token(self):
        handle = serve_in_thread(
            QueryService(server_db(), n_shards=2), close_service=True
        )
        try:
            with RemoteClient(
                handle.host, handle.port, auth_token="anything"
            ) as client:
                assert client.describe()["trajectories"] == 16
        finally:
            handle.stop()


def test_hello_advertises_worker_pool():
    handle = serve_in_thread(
        QueryService(server_db(), n_shards=2),
        close_service=True,
        workers=3,
        max_inflight=7,
    )
    try:
        with RemoteClient(handle.host, handle.port) as client:
            assert client.server_info["workers"] == 3
            assert client.server_info["max_inflight"] == 7
    finally:
        handle.stop()


# ----------------------------------------------------------- admission control
class TestOverload:
    def test_refused_frame_is_typed_and_preexecution(self):
        """With one admission slot held, the next frame gets Overloaded —
        and because refusal happens before execution, the occupied slot's
        request still completes untouched."""
        db = server_db()
        service = QueryService(db, n_shards=2)
        release = threading.Event()
        original = service.execute

        def gated(request, **kwargs):
            release.wait(timeout=30.0)
            return original(request, **kwargs)

        service.execute = gated
        handle = serve_in_thread(
            service, close_service=True, workers=1, max_inflight=1
        )
        workload = RangeQueryWorkload.from_data_distribution(db, 1, seed=3)

        async def scenario():
            client = await AsyncRemoteClient.open(
                handle.host, handle.port, max_inflight=8, retries=0
            )
            try:
                first = asyncio.create_task(client.range(workload))
                await asyncio.sleep(0.3)  # let it occupy the only slot
                with pytest.raises(OverloadedError):
                    await client.histogram(8)
                release.set()
                return await first
            finally:
                await client.close()

        try:
            response = run(scenario())
        finally:
            release.set()
            handle.stop()
        with LocalClient(db) as local:
            assert response.result_sets == local.range(workload).result_sets

    def test_retry_budget_absorbs_transient_overload(self):
        db = server_db()
        service = QueryService(db, n_shards=2)
        original = service.execute

        def slow(request, **kwargs):
            time.sleep(0.03)
            return original(request, **kwargs)

        service.execute = slow
        handle = serve_in_thread(
            service, close_service=True, workers=1, max_inflight=2
        )
        workload = RangeQueryWorkload.from_data_distribution(db, 2, seed=3)

        async def scenario():
            client = await AsyncRemoteClient.open(
                handle.host,
                handle.port,
                max_inflight=16,
                retries=8,
                retry_backoff=0.02,
            )
            try:
                return await asyncio.gather(
                    *(client.range(workload) for _ in range(10))
                )
            finally:
                await client.close()

        try:
            responses = run(scenario())
        finally:
            handle.stop()
        with LocalClient(db) as local:
            want = local.range(workload).result_sets
        assert len(responses) == 10
        assert all(r.result_sets == want for r in responses)

    def test_overload_counted_in_server_metrics(self):
        db = server_db()
        service = QueryService(db, n_shards=2)
        release = threading.Event()
        original = service.execute

        def gated(request, **kwargs):
            release.wait(timeout=30.0)
            return original(request, **kwargs)

        service.execute = gated
        handle = serve_in_thread(
            service, close_service=True, workers=1, max_inflight=1
        )
        workload = RangeQueryWorkload.from_data_distribution(db, 1, seed=3)

        async def scenario():
            client = await AsyncRemoteClient.open(
                handle.host, handle.port, max_inflight=8, retries=0
            )
            try:
                first = asyncio.create_task(client.range(workload))
                await asyncio.sleep(0.3)
                with pytest.raises(OverloadedError):
                    await client.histogram(8)
                release.set()
                await first
                return await client.metrics()
            finally:
                await client.close()

        try:
            metrics = run(scenario())
        finally:
            release.set()
            handle.stop()
        server = metrics["server"]
        assert server["overloaded_frames"] == 1
        assert server["max_inflight"] == 1
        assert server["workers"] == 1
        # Queue instruments surfaced through the ordinary summary.
        assert metrics["summary"]["queue_depth_hwm"] >= 1
        assert "queue_wait_p99_ms" in metrics["summary"]


# --------------------------------------------------- write-lock interleaving
def test_concurrent_large_frames_never_corrupt_the_stream():
    """Eight ~100KB+ responses pipelined on ONE connection: without the
    per-connection write lock the event loop could interleave two
    responses' chunks mid-frame and the framing would collapse."""
    db = server_db(n=24)
    handle = serve_in_thread(
        QueryService(db, n_shards=3), close_service=True, workers=4
    )
    grids = [96, 112, 128, 96, 112, 128, 96, 128]

    async def scenario():
        client = await AsyncRemoteClient.open(
            handle.host, handle.port, max_inflight=len(grids)
        )
        try:
            return await asyncio.gather(
                *(client.histogram(g, normalize=True) for g in grids)
            )
        finally:
            await client.close()

    try:
        responses = run(scenario())
    finally:
        handle.stop()
    with LocalClient(db) as local:
        for grid, response in zip(grids, responses):
            np.testing.assert_array_equal(
                response.histogram, local.histogram(grid, normalize=True).histogram
            )


# ------------------------------------------------------------ pipelined parity
PLANES = [
    ("serial", "heap"),
    ("serial", "shm"),
    ("process", "heap"),
    ("process", "shm"),
]


@pytest.mark.parametrize("executor,store", PLANES)
@settings(
    max_examples=2,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=st.data())
def test_pipelined_clients_match_local_and_echo_every_id(
    executor, store, data
):
    """N pipelined async clients, interleaved ingest + queries, both
    executors x both stores: responses bit-identical to LocalClient and
    every request id each client sent is echoed exactly once."""
    seed = data.draw(st.integers(0, 2**16), label="seed")
    n_phases = data.draw(st.integers(1, 2), label="phases")
    db = server_db(n=12, seed=seed % 97)
    reference = server_db(n=12, seed=seed % 97)
    service = QueryService(db, n_shards=2, executor=executor, store=store)
    handle = serve_in_thread(service, close_service=True, workers=4)

    echoed: dict[int, list[int]] = {}
    original_read = aio._read_frame

    async def recording_read(reader):
        frame = await original_read(reader)
        if frame.get("id") is not None:
            echoed.setdefault(id(reader), []).append(frame["id"])
        return frame

    workload = RangeQueryWorkload.from_data_distribution(db, 3, seed=5)

    async def scenario(local):
        clients = [
            await AsyncRemoteClient.open(
                handle.host, handle.port, max_inflight=4, retries=0
            )
            for _ in range(3)
        ]
        try:
            for phase in range(n_phases):
                # Ingest is a barrier: applied to server and reference
                # alike, then the next wave of queries pipelines freely.
                batch = shifted_batch(db, n=2, seed=seed + phase)
                result = await clients[phase % 3].ingest(batch)
                local.ingest(batch)
                assert result.added == 2

                async def wave(client):
                    return await asyncio.gather(
                        client.range(workload),
                        client.count(workload.boxes),
                        client.histogram(16),
                        client.range(workload),
                    )

                waves = await asyncio.gather(*(wave(c) for c in clients))
                want_range = local.range(workload).result_sets
                want_count = local.count(workload.boxes).counts
                want_hist = local.histogram(16).histogram
                for r1, c1, h1, r2 in waves:
                    assert r1.result_sets == want_range
                    assert r2.result_sets == want_range
                    np.testing.assert_array_equal(c1.counts, want_count)
                    np.testing.assert_array_equal(h1.histogram, want_hist)
            return [c._next_id for c in clients]
        finally:
            for c in clients:
                await c.close()

    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(aio, "_read_frame", recording_read)
        try:
            with LocalClient(reference) as local:
                minted = run(scenario(local))
        finally:
            handle.stop()

    # Exactly-once echo accounting. Each client owns exactly one
    # connection (pool size 1) and mints ids 0..n-1 on it, so the echoed
    # id streams — one per reader — must be precisely those ranges: every
    # id each client sent came back exactly once, none dropped, none
    # duplicated, none leaked across connections.
    assert sorted(minted) == sorted(len(ids) for ids in echoed.values())
    assert sorted(sorted(ids) for ids in echoed.values()) == sorted(
        list(range(n)) for n in minted
    )
