"""Tests for the vectorized batch query engine and the columnar DB layer.

The engine's contract is exact equivalence with the per-query reference path
(:func:`repro.queries.range_query.range_query`); the property tests here
assert it over randomized databases, workload distributions, and simplified
states.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    IncrementalRangeEvaluator,
    QDTSEnvironment,
    RL4QDTSConfig,
    run_episode,
)
from repro.data import SimplificationState, TrajectoryDatabase
from repro.queries import (
    QueryEngine,
    T2VecEmbedder,
    count_query_scan,
    density_histogram_scan,
    knn_query,
    knn_query_batch,
    range_query_batch,
)
from repro.workloads import RangeQueryWorkload
from tests.conftest import make_trajectory
from tests.test_core import make_agents


def random_db(seed: int, n_trajectories: int = 8) -> TrajectoryDatabase:
    return TrajectoryDatabase(
        [
            make_trajectory(n=4 + (seed + i) % 10, seed=seed + i, traj_id=i)
            for i in range(n_trajectories)
        ]
    )


def random_state(db: TrajectoryDatabase, seed: int) -> SimplificationState:
    state = SimplificationState(db)
    rng = np.random.default_rng(seed)
    for _ in range(40):
        tid = int(rng.integers(len(db)))
        if len(db[tid]) <= 2:
            continue
        idx = int(rng.integers(1, len(db[tid]) - 1))
        if not state.is_kept(tid, idx):
            state.insert(tid, idx)
    return state


class TestColumnarDatabase:
    def test_point_matrix_matches_trajectories(self, small_db):
        matrix = small_db.point_matrix()
        offsets = small_db.point_offsets()
        assert matrix.shape == (small_db.total_points, 3)
        assert offsets.shape == (len(small_db) + 1,)
        assert offsets[0] == 0 and offsets[-1] == small_db.total_points
        for traj in small_db:
            rows = matrix[offsets[traj.traj_id] : offsets[traj.traj_id + 1]]
            np.testing.assert_array_equal(rows, traj.points)

    def test_matrix_is_cached_and_read_only(self, small_db):
        matrix = small_db.point_matrix()
        assert small_db.point_matrix() is matrix
        assert small_db.all_points() is matrix
        assert not matrix.flags.writeable
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0

    def test_ownership_matches_offsets(self, small_db):
        owners = small_db.point_ownership()
        offsets = small_db.point_offsets()
        for tid in range(len(small_db)):
            assert (owners[offsets[tid] : offsets[tid + 1]] == tid).all()


class TestQueryEngineEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 100),
        n=st.integers(2, 10),
        n_queries=st.integers(1, 12),
        distribution=st.sampled_from(["data", "uniform", "gaussian", "zipf"]),
    )
    def test_matches_per_query_reference(self, seed, n, n_queries, distribution):
        db = random_db(seed, n)
        workload = RangeQueryWorkload.generate(
            distribution, db, n_queries, seed=seed + 1
        )
        engine = QueryEngine(db)
        assert engine.evaluate(workload) == range_query_batch(
            db, list(workload.queries)
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_state_evaluation_matches_materialized(self, seed):
        db = random_db(seed)
        state = random_state(db, seed + 7)
        workload = RangeQueryWorkload.from_data_distribution(db, 10, seed=seed)
        engine = QueryEngine(db)
        assert engine.evaluate_state(workload, state) == range_query_batch(
            state.materialize(), list(workload.queries)
        )

    def test_disjoint_workload_is_empty(self, small_db):
        box = small_db.bounding_box
        far = RangeQueryWorkload.from_centres(
            np.array([[box.xmax + 1000.0, box.ymax + 1000.0, box.tmax + 1000.0]]),
            spatial_extent=5.0,
            temporal_extent=5.0,
        )
        assert QueryEngine(small_db).evaluate(far) == [set()]

    def test_workload_evaluate_routes_through_engine(self, small_db, small_workload):
        assert small_workload.evaluate(small_db) == range_query_batch(
            small_db, list(small_workload.queries)
        )

    def test_rejects_oversized_resolution(self, small_db):
        # Cell coordinates are int16 internally; axes >= 2**15 must raise
        # instead of wrapping and silently dropping results.
        with pytest.raises(ValueError):
            QueryEngine(small_db, resolution=(2**15, 4, 4))
        with pytest.raises(ValueError):
            QueryEngine(small_db, resolution=(0, 4, 4))

    def test_rejects_foreign_state(self, small_db):
        other = random_db(3)
        with pytest.raises(ValueError):
            QueryEngine(small_db).evaluate_state(
                RangeQueryWorkload.from_data_distribution(small_db, 3, seed=0),
                SimplificationState(other),
            )


class TestQueryEngineMemoization:
    def test_repeat_evaluation_hits_cache(self, small_db, small_workload):
        engine = QueryEngine(small_db)
        first = engine.evaluate(small_workload)
        assert engine.cache_hits == 0
        second = engine.evaluate(small_workload)
        assert engine.cache_hits == 1
        assert first == second

    def test_cached_results_are_isolated(self, small_db, small_workload):
        engine = QueryEngine(small_db)
        first = engine.evaluate(small_workload)
        first[0].add(10**9)  # corrupting a returned set must not poison the memo
        assert 10**9 not in engine.evaluate(small_workload)[0]

    def test_lru_eviction(self, small_db):
        engine = QueryEngine(small_db, max_cached_results=2)
        for seed in range(4):
            engine.evaluate(
                RangeQueryWorkload.from_data_distribution(small_db, 3, seed=seed)
            )
        assert len(engine._cache) == 2

    def test_for_database_is_shared_and_weak(self, small_db):
        assert QueryEngine.for_database(small_db) is QueryEngine.for_database(
            small_db
        )
        db = random_db(5)
        engine = QueryEngine.for_database(db)
        assert engine is QueryEngine.for_database(db)

    def test_engine_cache_releases_dead_databases(self, small_workload):
        """Engines must not pin their databases in the process-wide cache."""
        import gc
        import weakref

        from repro.queries.engine import _ENGINES

        before = len(_ENGINES)
        db = random_db(11)
        QueryEngine.for_database(db).evaluate(small_workload)
        watcher = weakref.ref(db)
        del db
        gc.collect()
        assert watcher() is None
        assert len(_ENGINES) <= before

    def test_state_reset_is_cached_across_episodes(self, small_db, small_workload):
        engine = QueryEngine(small_db)
        state = SimplificationState(small_db)
        engine.evaluate_state(small_workload, state)
        misses = engine.cache_misses
        engine.evaluate_state(small_workload, SimplificationState(small_db))
        assert engine.cache_misses == misses
        assert engine.cache_hits >= 1


def _central_window(trajectory) -> tuple[float, float]:
    """The harness's middle-half kNN window (single source of truth)."""
    from repro.eval.harness import QueryAccuracyEvaluator

    return QueryAccuracyEvaluator._central_window(trajectory)


class TestEngineAggregates:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100), n_boxes=st.integers(1, 10))
    def test_count_matches_scan(self, seed, n_boxes):
        db = random_db(seed)
        workload = RangeQueryWorkload.from_data_distribution(
            db, n_boxes, seed=seed + 3
        )
        engine = QueryEngine(db)
        assert engine.count(workload.boxes).tolist() == [
            count_query_scan(db, b) for b in workload.boxes
        ]

    def test_count_disjoint_box_is_zero(self, small_db):
        # PR 1 regression scenario: boxes beyond the extent must not snap
        # onto border cells.
        box = small_db.bounding_box
        from repro.data import BoundingBox

        far = BoundingBox(
            box.xmax + 10, box.xmax + 20, box.ymax + 10, box.ymax + 20,
            box.tmax + 10, box.tmax + 20,
        )
        engine = QueryEngine(small_db)
        assert engine.count([far]).tolist() == [0]
        assert engine.count([far, box]).tolist() == [
            0, small_db.total_points,
        ]

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100), grid=st.integers(1, 9))
    def test_histogram_matches_scan(self, seed, grid):
        db = random_db(seed)
        engine = QueryEngine(db)
        np.testing.assert_array_equal(
            engine.histogram(grid), density_histogram_scan(db, grid)
        )

    def test_histogram_normalized_and_boxed(self, small_db):
        box = small_db.bounding_box
        from repro.data import BoundingBox

        shrunk = BoundingBox(
            box.xmin, box.center[0], box.ymin, box.center[1], box.tmin, box.tmax
        )
        engine = QueryEngine(small_db)
        np.testing.assert_array_equal(
            engine.histogram(8, shrunk, normalize=True),
            density_histogram_scan(small_db, 8, shrunk, normalize=True),
        )

    def test_aggregates_are_memoized(self, small_db):
        engine = QueryEngine(small_db)
        boxes = [small_db.bounding_box]
        first = engine.count(boxes)
        hits = engine.cache_hits
        second = engine.count(boxes)
        assert engine.cache_hits == hits + 1
        assert first.tolist() == second.tolist()
        engine.histogram(8)
        hits = engine.cache_hits
        engine.histogram(8)
        assert engine.cache_hits == hits + 1

    def test_cached_histogram_is_isolated(self, small_db):
        engine = QueryEngine(small_db)
        hist = engine.histogram(4)
        hist[0, 0] = -1.0  # corrupting a returned array must not poison the memo
        assert engine.histogram(4)[0, 0] != -1.0


class TestKnnCandidates:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 120), n_windows=st.integers(1, 6))
    def test_matches_window_restriction_filter(self, seed, n_windows):
        db = random_db(seed)
        rng = np.random.default_rng(seed + 1)
        span = db.bounding_box
        windows = []
        for _ in range(n_windows):
            a, b = sorted(rng.uniform(span.tmin - 5, span.tmax + 5, size=2))
            windows.append((float(a), float(b)))
        engine = QueryEngine(db)
        for (ts, te), cand in zip(windows, engine.knn_candidates(windows)):
            expected = [
                t.traj_id for t in db if len(t.slice_time(ts, te)) >= 2
            ]
            assert cand.tolist() == expected

    def test_min_points_threshold(self, small_db):
        span = small_db.bounding_box
        engine = QueryEngine(small_db)
        window = (span.tmin, span.tmax)
        loose = engine.knn_candidates([window], min_points=1)[0]
        strict = engine.knn_candidates([window], min_points=10**6)[0]
        assert loose.tolist() == list(range(len(small_db)))
        assert strict.tolist() == []

    def test_disjoint_window_has_no_candidates(self, small_db):
        span = small_db.bounding_box
        engine = QueryEngine(small_db)
        cand = engine.knn_candidates([(span.tmax + 100, span.tmax + 200)])
        assert cand[0].tolist() == []


class TestBatchKnn:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 100),
        k=st.integers(1, 5),
        eps=st.floats(1.0, 60.0),
    )
    def test_edr_matches_per_query_reference(self, seed, k, eps):
        db = random_db(seed, n_trajectories=10)
        rng = np.random.default_rng(seed)
        qids = [int(i) for i in rng.choice(len(db), size=4, replace=False)]
        windows = [_central_window(db[qid]) for qid in qids]
        batched = knn_query_batch(
            db, [db[qid] for qid in qids], k, windows, "edr", eps=eps
        )
        reference = [
            knn_query(db, db[qid], k, window, "edr", eps=eps)
            for qid, window in zip(qids, windows)
        ]
        assert batched == reference

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 60))
    def test_callable_measure_matches_reference(self, seed):
        db = random_db(seed)

        def theta(a, b):
            return float(abs(len(a) - len(b)))

        qids = [0, 3]
        windows = [_central_window(db[qid]) for qid in qids]
        assert knn_query_batch(
            db, [db[qid] for qid in qids], 3, windows, theta
        ) == [
            knn_query(db, db[qid], 3, window, theta)
            for qid, window in zip(qids, windows)
        ]

    def test_t2vec_matches_reference(self, small_db):
        emb = T2VecEmbedder(resolution=8, dim=8, epochs=1, seed=0).fit(small_db)
        qids = [1, 5]
        windows = [_central_window(small_db[qid]) for qid in qids]
        assert knn_query_batch(
            small_db, [small_db[qid] for qid in qids], 2, windows, "t2vec",
            embedder=emb,
        ) == [
            knn_query(
                small_db, small_db[qid], 2, window, "t2vec", embedder=emb
            )
            for qid, window in zip(qids, windows)
        ]

    def test_default_windows_match_reference(self, small_db):
        qids = [0, 2]
        assert knn_query_batch(
            small_db, [small_db[qid] for qid in qids], 3, None, "edr", eps=5.0
        ) == [
            knn_query(small_db, small_db[qid], 3, None, "edr", eps=5.0)
            for qid in qids
        ]

    def test_rejects_bad_arguments(self, small_db):
        with pytest.raises(ValueError):
            knn_query_batch(small_db, [small_db[0]], 0, None, "edr")
        with pytest.raises(ValueError):
            knn_query_batch(small_db, [small_db[0]], 1, [(0.0, 1.0)] * 2)
        with pytest.raises(ValueError):
            knn_query_batch(small_db, [small_db[0]], 1, None, "dtw")


class TestPointMemberships:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100), n_boxes=st.integers(1, 8))
    def test_matches_brute_force(self, seed, n_boxes):
        db = random_db(seed)
        workload = RangeQueryWorkload.from_data_distribution(
            db, n_boxes, seed=seed + 5
        )
        rows, box_idx = QueryEngine(db).point_memberships(workload.boxes)
        points = db.point_matrix()
        expected = sorted(
            (row, qi)
            for qi, box in enumerate(workload.boxes)
            for row in np.flatnonzero(box.contains_points(points))
        )
        assert list(zip(rows.tolist(), box_idx.tolist())) == expected

    def test_empty_workload(self, small_db):
        rows, box_idx = QueryEngine(small_db).point_memberships([])
        assert len(rows) == 0 and len(box_idx) == 0


class TestIncrementalView:
    def test_view_matches_from_scratch_evaluation(self, small_db, small_workload):
        engine = QueryEngine(small_db)
        view = engine.incremental_view(small_workload)
        state = SimplificationState(small_db)
        view.reset(state)
        rng = np.random.default_rng(5)
        for _ in range(25):
            tid = int(rng.integers(len(small_db)))
            idx = int(rng.integers(1, len(small_db[tid]) - 1))
            if state.is_kept(tid, idx):
                continue
            state.insert(tid, idx)
            view.notify_insert(tid, small_db[tid].points[idx])
        assert view.result_sets == engine.evaluate_state(small_workload, state)

    def test_view_results_are_copies(self, small_db, small_workload):
        view = QueryEngine(small_db).incremental_view(small_workload)
        copies = view.results
        copies[0].add(10**9)
        assert 10**9 not in view.result_sets[0]

    def test_evaluator_shares_engine_store(self, small_db, small_workload):
        """Two evaluators over one database reuse the shared engine's memo."""
        first = IncrementalRangeEvaluator(small_db, small_workload)
        engine = QueryEngine.for_database(small_db)
        hits = engine.cache_hits
        second = IncrementalRangeEvaluator(small_db, small_workload)
        assert second._engine is engine and first._engine is engine
        assert engine.cache_hits > hits  # truth evaluation was a cache hit


class TestIncrementalEvaluatorAudit:
    def test_incremental_counters_match_engine(self, small_db, small_workload):
        evaluator = IncrementalRangeEvaluator(small_db, small_workload)
        state = SimplificationState(small_db)
        evaluator.reset(state)
        rng = np.random.default_rng(1)
        for _ in range(30):
            tid = int(rng.integers(len(small_db)))
            idx = int(rng.integers(1, len(small_db[tid]) - 1))
            if state.is_kept(tid, idx):
                continue
            state.insert(tid, idx)
            evaluator.notify_insert(tid, small_db[tid].points[idx])
        assert evaluator.diff() == pytest.approx(evaluator.exact_diff(state))

    def test_rollout_exact_final_diff_matches_incremental(
        self, small_db, small_workload
    ):
        config = RL4QDTSConfig(start_level=2, end_level=4, delta=5, leaf_capacity=4)
        cube, point = make_agents(config)
        budget = 2 * len(small_db) + 12
        env = QDTSEnvironment(
            small_db, small_workload, config, np.random.default_rng(0)
        )
        stats = run_episode(env, cube, point, budget, greedy=True)
        assert env.exact_diff() == pytest.approx(stats.final_diff)
        audited = run_episode(
            env, cube, point, budget, greedy=True, exact_final_diff=True
        )
        assert audited.final_diff == pytest.approx(env.diff())


class TestBatchedSimilarity:
    """QueryEngine.similarity vs the per-query similarity_query reference."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 150), n_queries=st.integers(1, 4))
    def test_matches_reference_on_random_databases(self, seed, n_queries):
        from repro.data.stats import spatial_scale
        from repro.queries.similarity import similarity_query

        db = random_db(seed, n_trajectories=7)
        rng = np.random.default_rng(seed)
        delta = float(rng.uniform(0.05, 0.4)) * spatial_scale(db)
        qids = rng.choice(len(db), size=n_queries, replace=False)
        queries = [db[int(q)] for q in qids]
        windows = []
        for qi, q in enumerate(queries):
            t0, t1 = float(q.times[0]), float(q.times[-1])
            choice = (seed + qi) % 3
            if choice == 0:
                windows.append(None)  # query's own span
            elif choice == 1:
                quarter = 0.25 * (t1 - t0)
                windows.append((t0 + quarter, t1 - quarter))
            else:
                windows.append((t0 - 10.0, t1 + 10.0))  # beyond the lifespan
        reference = [
            similarity_query(db, q, delta, w) for q, w in zip(queries, windows)
        ]
        engine = QueryEngine(db)
        assert engine.similarity(queries, delta, windows) == reference
        # memoized second pass returns equal, independent sets
        again = engine.similarity(queries, delta, windows)
        assert again == reference
        again[0].add(10**9)
        assert engine.similarity(queries, delta, windows) == reference

    def test_similarity_query_batch_routes_through_shared_engine(self, small_db):
        from repro.queries import similarity_query_batch
        from repro.queries.similarity import similarity_query

        queries = [small_db[0], small_db[3]]
        results = similarity_query_batch(small_db, queries, 5.0)
        assert results == [similarity_query(small_db, q, 5.0) for q in queries]

    def test_external_query_trajectory(self, small_db):
        from repro.queries.similarity import similarity_query

        external = make_trajectory(n=12, seed=777)
        engine = QueryEngine(small_db)
        assert engine.similarity([external], 10.0) == [
            similarity_query(small_db, external, 10.0)
        ]

    def test_negative_delta_raises(self, small_db):
        with pytest.raises(ValueError, match="non-negative"):
            QueryEngine(small_db).similarity([small_db[0]], -1.0)

    def test_empty_queries(self, small_db):
        assert QueryEngine(small_db).similarity([], 1.0) == []


class TestKnnReturnPairs:
    def test_pairs_are_sorted_finite_and_consistent_with_ids(self, small_db):
        queries = [small_db[1], small_db[4]]
        ids = knn_query_batch(small_db, queries, 3)
        pairs = knn_query_batch(small_db, queries, 3, return_pairs=True)
        for id_list, pair_list in zip(ids, pairs):
            assert [tid for _, tid in pair_list] == id_list
            distances = [d for d, _ in pair_list]
            assert distances == sorted(distances)
            assert all(np.isfinite(d) for d in distances)


class TestAdaptiveResolution:
    """Cell size follows the workload's box extents; answers never change."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 150))
    def test_candidates_unchanged_under_adaptive_resolution(self, seed):
        from repro.index import GridIndex, adaptive_resolution
        from repro.queries.range_query import range_query

        db = random_db(seed, n_trajectories=6)
        workload = RangeQueryWorkload.from_data_distribution(db, 6, seed=seed)
        resolution = adaptive_resolution(db.bounding_box, workload)
        assert all(1 <= r <= 1024 for r in resolution)
        reference = [range_query(db, q) for q in workload]
        # the adaptive grid's verified candidates give identical answers
        grid = GridIndex.adaptive(db, workload)
        assert grid.resolution == resolution
        assert [range_query(db, q, grid) for q in workload] == reference
        # and the engine at the adaptive resolution agrees exactly
        engine = QueryEngine(db, resolution=resolution)
        assert engine.evaluate(workload) == reference

    def test_cell_size_tracks_median_box_extent(self, chengdu_db):
        from repro.index import adaptive_resolution

        narrow = RangeQueryWorkload.from_data_distribution(
            chengdu_db, 10, spatial_extent=1.0, temporal_extent=10.0, seed=0
        )
        wide = RangeQueryWorkload.from_data_distribution(
            chengdu_db, 10, spatial_extent=1000.0, temporal_extent=10000.0, seed=0
        )
        fine = adaptive_resolution(chengdu_db.bounding_box, narrow)
        coarse = adaptive_resolution(chengdu_db.bounding_box, wide)
        assert fine[0] > coarse[0] and fine[1] > coarse[1]

    def test_empty_workload_falls_back_to_default(self, small_db):
        from repro.index import adaptive_resolution

        assert adaptive_resolution(small_db.bounding_box, []) == (32, 32, 16)

    def test_total_cell_budget_is_respected(self, small_db):
        from repro.index import adaptive_resolution

        tiny_boxes = RangeQueryWorkload.from_data_distribution(
            small_db, 5, spatial_extent=1e-6, temporal_extent=1e-6, seed=1
        )
        resolution = adaptive_resolution(
            small_db.bounding_box, tiny_boxes, max_cells=4096
        )
        assert int(np.prod(resolution)) <= 4096


class TestExecutorHooks:
    def test_builtin_kinds_are_registered(self):
        kinds = QueryEngine.executor_kinds()
        for kind in ("range", "count", "histogram", "similarity"):
            assert kind in kinds

    def test_execute_dispatches_to_bound_methods(self, small_db, small_workload):
        engine = QueryEngine(small_db)
        assert engine.execute(
            "range", boxes=small_workload.boxes
        ) == engine.evaluate(small_workload)
        assert np.array_equal(
            engine.execute("count", boxes=small_workload.boxes),
            engine.count(small_workload.boxes),
        )

    def test_unknown_kind_raises_with_known_kinds(self, small_db):
        with pytest.raises(KeyError, match="no executor hook"):
            QueryEngine(small_db).execute("teleport")

    def test_custom_hook_is_callable_and_replaceable(self, small_db):
        try:
            QueryEngine.register_executor(
                "total_points", lambda engine, **_: len(engine._px)
            )
            engine = QueryEngine(small_db)
            assert engine.execute("total_points") == small_db.total_points
        finally:
            QueryEngine._executor_hooks.pop("total_points", None)

    def test_local_hook_shadows_registry_for_one_engine_only(self, small_db):
        instrumented = QueryEngine(small_db)
        plain = QueryEngine(small_db)
        calls = []

        def counting_count(engine, *, boxes):
            calls.append(len(list(boxes)))
            return engine.count(boxes)

        instrumented.register_local_executor("count", counting_count)
        box = small_db.bounding_box
        assert instrumented.execute("count", boxes=[box]) == plain.execute(
            "count", boxes=[box]
        )
        assert calls == [1]  # only the instrumented engine routed through it
        plain.execute("count", boxes=[box])
        assert calls == [1]
