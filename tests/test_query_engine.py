"""Tests for the vectorized batch query engine and the columnar DB layer.

The engine's contract is exact equivalence with the per-query reference path
(:func:`repro.queries.range_query.range_query`); the property tests here
assert it over randomized databases, workload distributions, and simplified
states.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    IncrementalRangeEvaluator,
    QDTSEnvironment,
    RL4QDTSConfig,
    run_episode,
)
from repro.data import SimplificationState, TrajectoryDatabase
from repro.queries import QueryEngine, range_query_batch
from repro.workloads import RangeQueryWorkload
from tests.conftest import make_trajectory
from tests.test_core import make_agents


def random_db(seed: int, n_trajectories: int = 8) -> TrajectoryDatabase:
    return TrajectoryDatabase(
        [
            make_trajectory(n=4 + (seed + i) % 10, seed=seed + i, traj_id=i)
            for i in range(n_trajectories)
        ]
    )


def random_state(db: TrajectoryDatabase, seed: int) -> SimplificationState:
    state = SimplificationState(db)
    rng = np.random.default_rng(seed)
    for _ in range(40):
        tid = int(rng.integers(len(db)))
        if len(db[tid]) <= 2:
            continue
        idx = int(rng.integers(1, len(db[tid]) - 1))
        if not state.is_kept(tid, idx):
            state.insert(tid, idx)
    return state


class TestColumnarDatabase:
    def test_point_matrix_matches_trajectories(self, small_db):
        matrix = small_db.point_matrix()
        offsets = small_db.point_offsets()
        assert matrix.shape == (small_db.total_points, 3)
        assert offsets.shape == (len(small_db) + 1,)
        assert offsets[0] == 0 and offsets[-1] == small_db.total_points
        for traj in small_db:
            rows = matrix[offsets[traj.traj_id] : offsets[traj.traj_id + 1]]
            np.testing.assert_array_equal(rows, traj.points)

    def test_matrix_is_cached_and_read_only(self, small_db):
        matrix = small_db.point_matrix()
        assert small_db.point_matrix() is matrix
        assert small_db.all_points() is matrix
        assert not matrix.flags.writeable
        with pytest.raises(ValueError):
            matrix[0, 0] = 1.0

    def test_ownership_matches_offsets(self, small_db):
        owners = small_db.point_ownership()
        offsets = small_db.point_offsets()
        for tid in range(len(small_db)):
            assert (owners[offsets[tid] : offsets[tid + 1]] == tid).all()


class TestQueryEngineEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 100),
        n=st.integers(2, 10),
        n_queries=st.integers(1, 12),
        distribution=st.sampled_from(["data", "uniform", "gaussian", "zipf"]),
    )
    def test_matches_per_query_reference(self, seed, n, n_queries, distribution):
        db = random_db(seed, n)
        workload = RangeQueryWorkload.generate(
            distribution, db, n_queries, seed=seed + 1
        )
        engine = QueryEngine(db)
        assert engine.evaluate(workload) == range_query_batch(
            db, list(workload.queries)
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_state_evaluation_matches_materialized(self, seed):
        db = random_db(seed)
        state = random_state(db, seed + 7)
        workload = RangeQueryWorkload.from_data_distribution(db, 10, seed=seed)
        engine = QueryEngine(db)
        assert engine.evaluate_state(workload, state) == range_query_batch(
            state.materialize(), list(workload.queries)
        )

    def test_disjoint_workload_is_empty(self, small_db):
        box = small_db.bounding_box
        far = RangeQueryWorkload.from_centres(
            np.array([[box.xmax + 1000.0, box.ymax + 1000.0, box.tmax + 1000.0]]),
            spatial_extent=5.0,
            temporal_extent=5.0,
        )
        assert QueryEngine(small_db).evaluate(far) == [set()]

    def test_workload_evaluate_routes_through_engine(self, small_db, small_workload):
        assert small_workload.evaluate(small_db) == range_query_batch(
            small_db, list(small_workload.queries)
        )

    def test_rejects_oversized_resolution(self, small_db):
        # Cell coordinates are int16 internally; axes >= 2**15 must raise
        # instead of wrapping and silently dropping results.
        with pytest.raises(ValueError):
            QueryEngine(small_db, resolution=(2**15, 4, 4))
        with pytest.raises(ValueError):
            QueryEngine(small_db, resolution=(0, 4, 4))

    def test_rejects_foreign_state(self, small_db):
        other = random_db(3)
        with pytest.raises(ValueError):
            QueryEngine(small_db).evaluate_state(
                RangeQueryWorkload.from_data_distribution(small_db, 3, seed=0),
                SimplificationState(other),
            )


class TestQueryEngineMemoization:
    def test_repeat_evaluation_hits_cache(self, small_db, small_workload):
        engine = QueryEngine(small_db)
        first = engine.evaluate(small_workload)
        assert engine.cache_hits == 0
        second = engine.evaluate(small_workload)
        assert engine.cache_hits == 1
        assert first == second

    def test_cached_results_are_isolated(self, small_db, small_workload):
        engine = QueryEngine(small_db)
        first = engine.evaluate(small_workload)
        first[0].add(10**9)  # corrupting a returned set must not poison the memo
        assert 10**9 not in engine.evaluate(small_workload)[0]

    def test_lru_eviction(self, small_db):
        engine = QueryEngine(small_db, max_cached_results=2)
        for seed in range(4):
            engine.evaluate(
                RangeQueryWorkload.from_data_distribution(small_db, 3, seed=seed)
            )
        assert len(engine._cache) == 2

    def test_for_database_is_shared_and_weak(self, small_db):
        assert QueryEngine.for_database(small_db) is QueryEngine.for_database(
            small_db
        )
        db = random_db(5)
        engine = QueryEngine.for_database(db)
        assert engine is QueryEngine.for_database(db)

    def test_engine_cache_releases_dead_databases(self, small_workload):
        """Engines must not pin their databases in the process-wide cache."""
        import gc
        import weakref

        from repro.queries.engine import _ENGINES

        before = len(_ENGINES)
        db = random_db(11)
        QueryEngine.for_database(db).evaluate(small_workload)
        watcher = weakref.ref(db)
        del db
        gc.collect()
        assert watcher() is None
        assert len(_ENGINES) <= before

    def test_state_reset_is_cached_across_episodes(self, small_db, small_workload):
        engine = QueryEngine(small_db)
        state = SimplificationState(small_db)
        engine.evaluate_state(small_workload, state)
        misses = engine.cache_misses
        engine.evaluate_state(small_workload, SimplificationState(small_db))
        assert engine.cache_misses == misses
        assert engine.cache_hits >= 1


class TestIncrementalEvaluatorAudit:
    def test_incremental_counters_match_engine(self, small_db, small_workload):
        evaluator = IncrementalRangeEvaluator(small_db, small_workload)
        state = SimplificationState(small_db)
        evaluator.reset(state)
        rng = np.random.default_rng(1)
        for _ in range(30):
            tid = int(rng.integers(len(small_db)))
            idx = int(rng.integers(1, len(small_db[tid]) - 1))
            if state.is_kept(tid, idx):
                continue
            state.insert(tid, idx)
            evaluator.notify_insert(tid, small_db[tid].points[idx])
        assert evaluator.diff() == pytest.approx(evaluator.exact_diff(state))

    def test_rollout_exact_final_diff_matches_incremental(
        self, small_db, small_workload
    ):
        config = RL4QDTSConfig(start_level=2, end_level=4, delta=5, leaf_capacity=4)
        cube, point = make_agents(config)
        budget = 2 * len(small_db) + 12
        env = QDTSEnvironment(
            small_db, small_workload, config, np.random.default_rng(0)
        )
        stats = run_episode(env, cube, point, budget, greedy=True)
        assert env.exact_diff() == pytest.approx(stats.final_diff)
        audited = run_episode(
            env, cube, point, budget, greedy=True, exact_final_diff=True
        )
        assert audited.final_diff == pytest.approx(env.diff())
