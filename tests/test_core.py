"""Tests for the RL4QDTS core: features, reward, environment, rollout."""

import numpy as np
import pytest

from repro.core import (
    CUBE_N_ACTIONS,
    CUBE_STATE_DIM,
    STOP_ACTION,
    IncrementalRangeEvaluator,
    QDTSEnvironment,
    RL4QDTSConfig,
    cube_point_state,
    point_values,
    run_episode,
)
from repro.data import SimplificationState
from repro.rl import DQNAgent
from repro.workloads import RangeQueryWorkload


@pytest.fixture
def env(small_db, small_workload):
    config = RL4QDTSConfig(start_level=2, end_level=5, delta=5, leaf_capacity=4)
    return QDTSEnvironment(small_db, small_workload, config, np.random.default_rng(0))


def make_agents(config):
    cube = DQNAgent(CUBE_STATE_DIM, CUBE_N_ACTIONS, config.dqn, seed=0)
    point = DQNAgent(2 * config.k_candidates, config.k_candidates, config.dqn, seed=1)
    return cube, point


class TestPointValues:
    def test_on_anchor_is_zero(self):
        pts = np.array([[0, 0, 0], [5, 0, 5], [10, 0, 10]], dtype=float)
        v_s, v_t = point_values(pts, 1, 0, 2)
        assert v_s == pytest.approx(0.0)
        assert v_t == pytest.approx(0.0)

    def test_spatial_detour(self):
        pts = np.array([[0, 0, 0], [5, 4, 5], [10, 0, 10]], dtype=float)
        v_s, _ = point_values(pts, 1, 0, 2)
        assert v_s == pytest.approx(4.0)

    def test_temporal_lag(self):
        # Point sits at x=8 but at time 2: nearest anchor location at x=8 is
        # passed at time 8 -> v_t = 6.
        pts = np.array([[0, 0, 0], [8, 0, 2], [10, 0, 10]], dtype=float)
        v_s, v_t = point_values(pts, 1, 0, 2)
        assert v_s == pytest.approx(np.hypot(8 - 2, 0))  # sync at x=2
        assert v_t == pytest.approx(6.0)

    def test_degenerate_anchor(self):
        pts = np.array([[0, 0, 0], [3, 4, 1], [0, 0, 2]], dtype=float)
        v_s, v_t = point_values(pts, 1, 0, 2)
        assert v_s == pytest.approx(5.0)
        assert v_t == pytest.approx(1.0)


class TestCubePointState:
    def test_k_validation(self, small_db):
        state = SimplificationState(small_db)
        with pytest.raises(ValueError):
            cube_point_state(state, [], 0)

    def test_empty_cube(self, small_db):
        state = SimplificationState(small_db)
        vec, candidates, mask = cube_point_state(state, [], 2)
        assert vec.shape == (4,)
        assert candidates == []
        assert not mask.any()

    def test_kept_points_excluded(self, small_db):
        state = SimplificationState(small_db)
        entries = [(0, i) for i in range(len(small_db[0]))]
        _, candidates, _ = cube_point_state(state, entries, 3)
        for tid, idx in candidates:
            assert not state.is_kept(tid, idx)
        # After keeping everything no candidates remain.
        for i in range(1, len(small_db[0]) - 1):
            state.insert(0, i)
        _, candidates, mask = cube_point_state(state, entries, 3)
        assert candidates == [] and not mask.any()

    def test_one_candidate_per_trajectory(self, small_db):
        state = SimplificationState(small_db)
        entries = [
            (tid, i)
            for tid in (0, 1, 2)
            for i in range(1, len(small_db[tid]) - 1)
        ]
        _, candidates, _ = cube_point_state(state, entries, 5)
        owners = [tid for tid, _ in candidates]
        assert len(owners) == len(set(owners)) == 3

    def test_sorted_by_vs_descending(self, small_db):
        state = SimplificationState(small_db)
        entries = [
            (tid, i)
            for tid in range(len(small_db))
            for i in range(1, len(small_db[tid]) - 1)
        ]
        vec, candidates, mask = cube_point_state(state, entries, 4)
        vs = vec[::2][: len(candidates)]
        assert (np.diff(vs) <= 1e-12).all()
        assert mask[: len(candidates)].all()

    def test_list_and_dict_entries_agree(self, small_db):
        state = SimplificationState(small_db)
        entries = [(0, i) for i in range(len(small_db[0]))] + [
            (1, i) for i in range(len(small_db[1]))
        ]
        grouped = {
            0: np.arange(len(small_db[0])),
            1: np.arange(len(small_db[1])),
        }
        vec_a, cand_a, _ = cube_point_state(state, entries, 3)
        vec_b, cand_b, _ = cube_point_state(state, grouped, 3)
        assert np.allclose(vec_a, vec_b)
        assert cand_a == cand_b


class TestIncrementalEvaluator:
    def test_empty_workload_rejected(self, small_db):
        empty = RangeQueryWorkload(())
        with pytest.raises(ValueError):
            IncrementalRangeEvaluator(small_db, empty)

    def test_full_state_perfect_f1(self, small_db, small_workload):
        evaluator = IncrementalRangeEvaluator(small_db, small_workload)
        evaluator.reset(SimplificationState(small_db, start_full=True))
        assert evaluator.mean_f1() == pytest.approx(1.0)
        assert evaluator.diff() == pytest.approx(0.0)

    def test_incremental_matches_scratch(self, small_db, small_workload):
        """notify_insert must agree with a from-scratch reset."""
        evaluator = IncrementalRangeEvaluator(small_db, small_workload)
        state = SimplificationState(small_db)
        evaluator.reset(state)
        rng = np.random.default_rng(1)
        for _ in range(30):
            tid = int(rng.integers(len(small_db)))
            interior = [
                i
                for i in range(1, len(small_db[tid]) - 1)
                if not state.is_kept(tid, i)
            ]
            if not interior:
                continue
            idx = int(rng.choice(interior))
            state.insert(tid, idx)
            evaluator.notify_insert(tid, small_db[tid].points[idx])
        incremental = evaluator.results
        evaluator.reset(state)
        assert evaluator.results == incremental

    def test_diff_monotone_under_insertions(self, small_db, small_workload):
        """Adding points can only improve range-query F1 (recall grows)."""
        evaluator = IncrementalRangeEvaluator(small_db, small_workload)
        state = SimplificationState(small_db)
        evaluator.reset(state)
        previous = evaluator.diff()
        for tid in range(len(small_db)):
            for idx in range(1, len(small_db[tid]) - 1, 3):
                state.insert(tid, idx)
                evaluator.notify_insert(tid, small_db[tid].points[idx])
            current = evaluator.diff()
            assert current <= previous + 1e-12
            previous = current

    def test_truth_matches_direct_queries(self, small_db, small_workload):
        evaluator = IncrementalRangeEvaluator(small_db, small_workload)
        assert evaluator.truth == small_workload.evaluate(small_db)


class TestEnvironment:
    def test_reset_state(self, env, small_db):
        assert env.state.total_kept == 2 * len(small_db)
        assert 0.0 <= env.diff() <= 1.0

    def test_cube_state_shape_and_mask(self, env):
        state, mask = env.cube_state(env.octree.root)
        assert state.shape == (CUBE_STATE_DIM,)
        assert mask.shape == (CUBE_N_ACTIONS,)
        assert mask[STOP_ACTION]

    def test_leaf_forces_stop(self, env):
        node = env.octree.root
        while not node.is_leaf and node.level < env.config.end_level:
            node = node.child(node.nonempty_children()[0])
        _, mask = env.cube_state(node)
        assert mask[STOP_ACTION]
        assert not mask[:STOP_ACTION].any()

    def test_descend_to_empty_child_raises(self, env):
        node = env.octree.root
        empties = [k for k in range(8) if node.child(k) is None]
        if empties:
            with pytest.raises(ValueError):
                env.descend(node, empties[0])

    def test_insert_updates_diff_bookkeeping(self, env, small_db):
        before = env.state.total_kept
        env.insert(0, 3)
        assert env.state.total_kept == before + 1
        assert env.state.is_kept(0, 3)

    def test_random_unkept_point_exhausts(self, env, small_db):
        seen = set()
        while True:
            pick = env.random_unkept_point()
            if pick is None:
                break
            assert pick not in seen
            seen.add(pick)
            env.state.insert(*pick)
        interior_total = sum(len(t) - 2 for t in small_db)
        assert len(seen) == interior_total

    def test_start_node_level(self, env):
        node = env.start_node()
        assert node.level <= env.config.start_level


class TestRollout:
    def test_budget_exactly_consumed(self, env, small_db):
        config = env.config
        cube, point = make_agents(config)
        budget = small_db.budget_for_ratio(0.5)
        stats = run_episode(env, cube, point, budget, greedy=True)
        assert env.state.total_kept == budget
        assert stats.inserted == budget - 2 * len(small_db)

    def test_full_budget_keeps_everything(self, env, small_db):
        config = env.config
        cube, point = make_agents(config)
        stats = run_episode(env, cube, point, small_db.total_points, greedy=True)
        assert env.state.total_kept == small_db.total_points
        assert stats.final_diff == pytest.approx(0.0)

    def test_learning_episode_fills_replay(self, env):
        config = env.config
        cube, point = make_agents(config)
        budget = env.db.budget_for_ratio(0.5)
        run_episode(env, cube, point, budget, greedy=False, learn=True)
        assert len(point.memory) > 0
        assert len(cube.memory) > 0

    def test_rewards_telescope_to_diff_decrease(self, env):
        """Sum of window rewards equals initial diff minus final diff (Eq. 11)."""
        config = env.config
        cube, point = make_agents(config)
        budget = env.db.budget_for_ratio(0.6)
        stats = run_episode(env, cube, point, budget, greedy=True)
        assert stats.total_reward == pytest.approx(
            stats.initial_diff - stats.final_diff, abs=1e-9
        )

    def test_ablation_modes_run(self, env):
        config = env.config
        cube, point = make_agents(config)
        budget = env.db.budget_for_ratio(0.3)
        for uc, up in ((False, True), (True, False), (False, False)):
            env.reset()
            stats = run_episode(
                env, cube, point, budget, greedy=True,
                use_agent_cube=uc, use_agent_point=up,
            )
            assert env.state.total_kept == budget
