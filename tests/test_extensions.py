"""Tests for the extension modules: join, error-bounded mode, ASCII viz."""

import numpy as np
import pytest

from repro.baselines import (
    error_bounded_simplify,
    error_bounded_simplify_database,
)
from repro.data import Trajectory, TrajectoryDatabase
from repro.errors import trajectory_error
from repro.queries import distance_join
from repro.viz import render_comparison, render_density, render_trajectory


def traj(x0, y0, n=8, traj_id=0, t0=0.0):
    xs = x0 + np.arange(float(n))
    ts = t0 + np.arange(float(n))
    return Trajectory(np.column_stack([xs, np.full(n, y0), ts]), traj_id=traj_id)


class TestDistanceJoin:
    def test_close_pair_found(self):
        db = TrajectoryDatabase([traj(0, 0), traj(0, 1, traj_id=1)])
        pairs = distance_join(db, delta=2.0)
        assert pairs == {frozenset((0, 1))}

    def test_far_pair_excluded(self):
        db = TrajectoryDatabase([traj(0, 0), traj(0, 100, traj_id=1)])
        assert distance_join(db, delta=2.0) == set()

    def test_disjoint_times_excluded(self):
        db = TrajectoryDatabase([traj(0, 0), traj(0, 0, t0=1000.0, traj_id=1)])
        assert distance_join(db, delta=5.0) == set()

    def test_always_stricter_than_ever(self):
        # b drifts away from a over time: "ever" matches, "always" does not.
        a = traj(0, 0, n=10)
        pts = np.column_stack(
            [np.arange(10.0), np.linspace(0, 30, 10), np.arange(10.0)]
        )
        b = Trajectory(pts, traj_id=1)
        db = TrajectoryDatabase([a, b])
        assert distance_join(db, delta=5.0, mode="ever") == {frozenset((0, 1))}
        assert distance_join(db, delta=5.0, mode="always") == set()

    def test_binary_join(self):
        left = TrajectoryDatabase([traj(0, 0)])
        right = TrajectoryDatabase([traj(0, 1)])
        pairs = distance_join(left, delta=2.0, other=right)
        assert pairs == {frozenset((0,))} or pairs == {frozenset((0, 0))}

    def test_validation(self):
        db = TrajectoryDatabase([traj(0, 0)])
        with pytest.raises(ValueError):
            distance_join(db, delta=-1.0)
        with pytest.raises(ValueError):
            distance_join(db, delta=1.0, mode="sometimes")

    def test_join_preserved_under_mild_simplification(self, geolife_db):
        """Dropping redundant points keeps most 'ever' join pairs."""
        delta = 200.0
        full_pairs = distance_join(geolife_db, delta)
        light = geolife_db.map_simplify(
            lambda t: sorted({0, len(t) - 1, *range(0, len(t), 2)})
        )
        light_pairs = distance_join(light, delta)
        if full_pairs:
            overlap = len(full_pairs & light_pairs) / len(full_pairs)
            assert overlap >= 0.5


class TestErrorBounded:
    def test_tolerance_respected(self, random_trajectory):
        for tolerance in (1.0, 5.0, 20.0):
            kept = error_bounded_simplify(random_trajectory, tolerance, "sed")
            assert trajectory_error(random_trajectory, kept, "sed") <= tolerance

    def test_zero_tolerance_keeps_detours(self, zigzag_trajectory):
        kept = error_bounded_simplify(zigzag_trajectory, 0.0, "sed")
        assert trajectory_error(zigzag_trajectory, kept, "sed") == 0.0

    def test_looser_tolerance_keeps_fewer(self, random_trajectory):
        tight = error_bounded_simplify(random_trajectory, 1.0)
        loose = error_bounded_simplify(random_trajectory, 50.0)
        assert len(loose) <= len(tight)

    def test_straight_line_collapses(self, straight_line_trajectory):
        kept = error_bounded_simplify(straight_line_trajectory, 0.01)
        assert kept == [0, len(straight_line_trajectory) - 1]

    def test_validation(self, random_trajectory):
        with pytest.raises(ValueError):
            error_bounded_simplify(random_trajectory, -1.0)
        with pytest.raises(ValueError):
            error_bounded_simplify(random_trajectory, 1.0, "l2")

    def test_database_variant(self, small_db):
        simplified = error_bounded_simplify_database(small_db, 10.0, "sed")
        assert len(simplified) == len(small_db)
        from repro.errors import database_errors

        assert (database_errors(small_db, simplified, "sed") <= 10.0 + 1e-9).all()


class TestViz:
    def test_density_dimensions(self, small_db):
        text = render_density(small_db, width=40, height=10)
        lines = text.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)
        assert any(ch != " " for line in lines for ch in line)

    def test_trajectory_markers(self, random_trajectory):
        text = render_trajectory(random_trajectory, width=30, height=10)
        assert "S" in text and "E" in text

    def test_comparison_overlay(self, random_trajectory):
        simplified = random_trajectory.subsample([0, len(random_trajectory) - 1])
        text = render_comparison(random_trajectory, simplified)
        assert "#" in text and "." in text

    def test_bad_dimensions_rejected(self, small_db):
        with pytest.raises(ValueError):
            render_density(small_db, width=0)
        with pytest.raises(ValueError):
            render_trajectory(small_db[0], height=0)


class TestRenderDensityLoss:
    def test_dimensions_and_charset(self, small_db):
        from repro.baselines import uniform_simplify_database
        from repro.viz import render_density_loss

        simplified = uniform_simplify_database(small_db, 0.2)
        text = render_density_loss(small_db, simplified, width=30, height=8)
        lines = text.splitlines()
        assert len(lines) == 8
        assert all(len(line) == 30 for line in lines)

    def test_identity_has_no_loss_markers(self, small_db):
        from repro.viz import render_density_loss

        text = render_density_loss(small_db, small_db, width=30, height=8)
        assert "-" not in text and "+" not in text

    def test_heavy_simplification_shows_loss(self, small_db):
        from repro.viz import render_density_loss

        endpoints = small_db.map_simplify(lambda t: [0, len(t) - 1])
        text = render_density_loss(small_db, endpoints, width=40, height=12)
        assert "-" in text

    def test_rejects_bad_dimensions(self, small_db):
        import pytest as _pytest

        from repro.viz import render_density_loss

        with _pytest.raises(ValueError):
            render_density_loss(small_db, small_db, width=0)
