"""Test suite for the RL4QDTS reproduction."""
