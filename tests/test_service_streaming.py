"""Concurrent ingest + query tests for the sharded service.

Property: however ingest batches and queries interleave, every query
answered by the sharded service equals a fresh single-engine evaluation of
the database state at that moment — and the final state matches
``initial.extended(all batches)`` exactly. This is the consistency
contract of the streaming path: the pending tier, compaction, epoch-keyed
caching, and the scatter/gather merge must all be invisible to clients.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import TrajectoryDatabase
from repro.data.stats import spatial_scale
from repro.queries import QueryEngine, knn_query_batch, similarity_query_batch
from repro.service import QueryService
from repro.workloads import RangeQueryWorkload
from tests.conftest import make_trajectory
from tests.test_service import knn_suite


def initial_db(seed: int, n: int = 8) -> TrajectoryDatabase:
    return TrajectoryDatabase(
        [make_trajectory(n=4 + (seed + i) % 8, seed=seed + i) for i in range(n)]
    )


def assert_state_parity(service, db, workload, queries, windows, eps, delta):
    """Every request kind on the service == fresh engine on ``db``."""
    engine = QueryEngine(db)
    assert service.range(workload).result_sets == engine.evaluate(workload)
    assert np.array_equal(
        service.count(workload.boxes).counts, engine.count(workload.boxes)
    )
    assert np.array_equal(service.histogram(8).histogram, engine.histogram(8))
    assert (
        service.knn(queries, 2, windows, eps=eps).neighbors
        == knn_query_batch(db, queries, 2, windows, "edr", eps=eps)
    )
    assert service.similarity(queries, delta).result_sets == similarity_query_batch(
        db, queries, delta
    )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 80),
    n_shards=st.integers(2, 4),
    partitioner=st.sampled_from(["hash", "spatial"]),
    plan=st.lists(
        st.tuples(st.integers(1, 4), st.booleans()), min_size=1, max_size=4
    ),
)
def test_interleaved_ingest_query_matches_fresh_engine(
    seed, n_shards, partitioner, plan
):
    """``plan`` is a list of (batch size, query-after-batch?) rounds."""
    db = initial_db(seed)
    workload = RangeQueryWorkload.from_data_distribution(db, 6, seed=seed)
    queries, windows = knn_suite(db, n_queries=2, seed=seed)
    eps = 0.10 * spatial_scale(db)
    delta = 0.15 * spatial_scale(db)
    current = db
    next_seed = 1000 * (seed + 1)
    with QueryService(
        db,
        n_shards=n_shards,
        partitioner=partitioner,
        # tiny compaction bound so some rounds compact and others buffer
        min_compact_points=24,
        compact_threshold=0.1,
    ) as service:
        assert_state_parity(service, current, workload, queries, windows, eps, delta)
        for batch_size, query_now in plan:
            batch = [
                make_trajectory(n=5, seed=next_seed + i) for i in range(batch_size)
            ]
            next_seed += batch_size
            service.ingest(batch)
            current = current.extended(batch)
            if query_now:
                assert_state_parity(
                    service, current, workload, queries, windows, eps, delta
                )
        # final state always checked, including the cache's epoch keying
        assert_state_parity(service, current, workload, queries, windows, eps, delta)
        assert service.manager.n_trajectories == len(current)


@pytest.mark.parametrize("partitioner", ["hash", "spatial"])
def test_interleaved_ingest_query_process_executor(partitioner):
    """The same interleaving contract holds across worker processes."""
    db = initial_db(7, n=10)
    workload = RangeQueryWorkload.from_data_distribution(db, 6, seed=7)
    queries, windows = knn_suite(db, n_queries=2, seed=7)
    eps = 0.10 * spatial_scale(db)
    delta = 0.15 * spatial_scale(db)
    current = db
    with QueryService(
        db,
        n_shards=3,
        partitioner=partitioner,
        executor="process",
        min_compact_points=24,
        compact_threshold=0.1,
    ) as service:
        for round_idx in range(3):
            batch = [
                make_trajectory(n=5, seed=5000 + 10 * round_idx + i)
                for i in range(3)
            ]
            service.ingest(batch)
            current = current.extended(batch)
            assert_state_parity(
                service, current, workload, queries, windows, eps, delta
            )


def test_queries_between_ingests_never_serve_stale_cache():
    db = initial_db(3)
    workload = RangeQueryWorkload.from_data_distribution(db, 5, seed=3)
    with QueryService(db, n_shards=2) as service:
        before = service.range(workload)
        batch = [make_trajectory(n=30, seed=1234)]  # big, hits many boxes
        service.ingest(batch)
        after = service.range(workload)
        assert after.epoch == before.epoch + 1
        assert not after.cached
        expected = QueryEngine(db.extended(batch)).evaluate(workload)
        assert after.result_sets == expected
