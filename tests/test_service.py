"""Tests for the sharded query service subsystem (:mod:`repro.service`).

The service's contract is *bit-identical* results to a fresh single-engine
evaluation of the same database state, for every request kind, shard
count, partitioner, and executor — sharding and process fan-out are pure
execution concerns and must never change an answer.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Trajectory, TrajectoryDatabase, synthetic_database
from repro.data.stats import spatial_scale
from repro.eval.harness import QueryAccuracyEvaluator
from repro.queries import QueryEngine, knn_query_batch, similarity_query_batch
from repro.service import (
    HashPartitioner,
    KnnRequest,
    ProcessShardExecutor,
    QueryService,
    RangeRequest,
    SerialShardExecutor,
    Shard,
    ShardExecutionError,
    ShardManager,
    ShardRuntime,
    SpatialPartitioner,
    make_executor,
)
from repro.workloads import RangeQueryWorkload
from tests.conftest import make_trajectory


def service_db(n: int = 20, seed: int = 5) -> TrajectoryDatabase:
    return synthetic_database(
        "geolife", n_trajectories=n, points_scale=0.05, seed=seed
    )


def knn_suite(db, n_queries=4, seed=1):
    """Query trajectories + central windows, as the harness builds them."""
    rng = np.random.default_rng(seed)
    qids = [int(i) for i in rng.choice(len(db), size=n_queries, replace=False)]
    queries = [db[q] for q in qids]
    windows = [QueryAccuracyEvaluator._central_window(q) for q in queries]
    return queries, windows


@pytest.fixture(scope="module")
def served_db():
    return service_db()


@pytest.fixture(scope="module")
def served_workload(served_db):
    return RangeQueryWorkload.from_data_distribution(served_db, 20, seed=3)


class TestPartitioning:
    def test_hash_partition_is_exhaustive_and_disjoint(self, small_db):
        parts = small_db.partition_ids(3, "hash")
        ids = np.concatenate(parts)
        assert sorted(ids.tolist()) == list(range(len(small_db)))

    def test_spatial_partition_is_exhaustive_and_disjoint(self, small_db):
        parts = small_db.partition_ids(3, "spatial")
        ids = np.concatenate(parts)
        assert sorted(ids.tolist()) == list(range(len(small_db)))

    def test_spatial_partition_slabs_by_centroid(self, small_db):
        parts = small_db.partition_ids(2, "spatial")
        x = small_db.centroids()[:, 0]
        assert max(x[parts[0]]) <= min(x[parts[1]]) or len(parts[0]) == 0

    def test_unknown_strategy_raises(self, small_db):
        with pytest.raises(ValueError, match="unknown partition strategy"):
            small_db.partition_ids(2, "zorder")

    def test_more_shards_than_trajectories_gives_empty_shards(self, small_db):
        manager = ShardManager.create(small_db, n_shards=len(small_db) + 4)
        assert manager.n_shards == len(small_db) + 4
        assert sum(len(s) for s in manager.shards) == len(small_db)
        assert any(len(s) == 0 for s in manager.shards)

    def test_partitioners_route_new_ids_deterministically(self, small_db):
        hashp = HashPartitioner(3)
        traj = make_trajectory(n=6, seed=77)
        assert hashp.assign(7, traj) == 7 % 3
        spatial = SpatialPartitioner.from_database(small_db, 3)
        assert spatial.assign(99, traj) == spatial.assign(100, traj)

    def test_centroids_match_per_trajectory_means(self, small_db):
        centroids = small_db.centroids()
        for tid, traj in enumerate(small_db):
            assert np.allclose(centroids[tid], traj.xy.mean(axis=0))

    @pytest.mark.parametrize("strategy", ["hash", "spatial"])
    def test_manager_membership_equals_partition_ids(self, small_db, strategy):
        """create()'s assign()-driven split mirrors the bulk database view."""
        manager = ShardManager.create(small_db, 3, partitioner=strategy)
        bulk = small_db.partition_ids(3, strategy)
        assert [s.global_ids for s in manager.shards] == [
            g.tolist() for g in bulk
        ]


class TestShardManager:
    def test_database_roundtrip_preserves_global_order(self, small_db):
        manager = ShardManager.create(small_db, n_shards=3, partitioner="hash")
        rebuilt = manager.database()
        assert len(rebuilt) == len(small_db)
        for tid in range(len(small_db)):
            assert np.array_equal(rebuilt[tid].points, small_db[tid].points)

    def test_extent_matches_database_bounding_box(self, small_db):
        manager = ShardManager.create(small_db, n_shards=3)
        assert manager.extent() == small_db.bounding_box

    def test_ingest_assigns_sequential_ids_and_bumps_epoch(self, small_db):
        manager = ShardManager.create(small_db, n_shards=2)
        assert manager.epoch == 0
        batch = [make_trajectory(n=5, seed=900 + i) for i in range(3)]
        routed = manager.ingest(batch)
        assert manager.epoch == 1
        gids = sorted(g for pairs in routed.values() for g, _ in pairs)
        assert gids == [len(small_db), len(small_db) + 1, len(small_db) + 2]
        # reference materialization equals extended()
        reference = small_db.extended(batch)
        rebuilt = manager.database()
        for tid in range(len(reference)):
            assert np.array_equal(rebuilt[tid].points, reference[tid].points)
        assert manager.extent() == reference.bounding_box

    def test_ingest_rejects_non_trajectories(self, small_db):
        manager = ShardManager.create(small_db, n_shards=2)
        with pytest.raises(TypeError):
            manager.ingest([np.zeros((3, 3))])

    def test_trajectory_lookup(self, small_db):
        manager = ShardManager.create(small_db, n_shards=3)
        assert np.array_equal(manager.trajectory(5).points, small_db[5].points)
        with pytest.raises(KeyError):
            manager.trajectory(999)


@pytest.mark.parametrize("executor", ["serial", "process"])
@pytest.mark.parametrize("partitioner", ["hash", "spatial"])
class TestServiceParity:
    """Acceptance: K >= 2 sharded results == single-engine results, bitwise."""

    def test_all_request_kinds_match_single_engine(
        self, served_db, served_workload, executor, partitioner
    ):
        engine = QueryEngine(served_db)
        eps = 0.10 * spatial_scale(served_db)
        delta = 0.15 * spatial_scale(served_db)
        queries, windows = knn_suite(served_db)
        ref_range = engine.evaluate(served_workload)
        ref_count = engine.count(served_workload.boxes)
        ref_hist = engine.histogram(16)
        ref_hist_norm = engine.histogram(16, normalize=True)
        ref_knn = knn_query_batch(served_db, queries, 3, windows, "edr", eps=eps)
        ref_sim = similarity_query_batch(served_db, queries, delta)
        with QueryService(
            served_db, n_shards=3, partitioner=partitioner, executor=executor
        ) as service:
            assert service.range(served_workload).result_sets == ref_range
            counts = service.count(served_workload.boxes).counts
            assert counts.dtype == np.int64
            assert np.array_equal(counts, ref_count)
            assert np.array_equal(service.histogram(16).histogram, ref_hist)
            assert np.array_equal(
                service.histogram(16, normalize=True).histogram, ref_hist_norm
            )
            assert service.knn(queries, 3, windows, eps=eps).neighbors == ref_knn
            assert service.similarity(queries, delta).result_sets == ref_sim

    def test_ingest_matches_fresh_engine_on_final_state(
        self, served_db, served_workload, executor, partitioner
    ):
        extra = [make_trajectory(n=8, seed=500 + i) for i in range(6)]
        final = served_db.extended(extra)
        engine = QueryEngine(final)
        eps = 0.10 * spatial_scale(served_db)
        queries, windows = knn_suite(served_db)
        with QueryService(
            served_db, n_shards=3, partitioner=partitioner, executor=executor
        ) as service:
            assert service.ingest(extra) == len(extra)
            assert service.range(served_workload).result_sets == engine.evaluate(
                served_workload
            )
            assert np.array_equal(
                service.count(served_workload.boxes).counts,
                engine.count(served_workload.boxes),
            )
            # default histogram box follows the *current* (grown) extent
            assert np.array_equal(
                service.histogram(12).histogram, engine.histogram(12)
            )
            assert (
                service.knn(queries, 3, windows, eps=eps).neighbors
                == knn_query_batch(final, queries, 3, windows, "edr", eps=eps)
            )


class TestServiceCacheAndStats:
    def test_repeat_request_hits_cache(self, served_db, served_workload):
        with QueryService(served_db, n_shards=2) as service:
            first = service.range(served_workload)
            second = service.range(served_workload)
            assert not first.cached and second.cached
            assert second.result_sets == first.result_sets
            assert service.stats.cache_hits.get("range") == 1

    def test_equal_requests_share_a_cache_line(self, served_db, served_workload):
        with QueryService(served_db, n_shards=2) as service:
            service.execute(RangeRequest.from_workload(served_workload))
            # a fresh request object over the same boxes must hit
            response = service.execute(
                RangeRequest.from_workload(list(served_workload.boxes))
            )
            assert response.cached

    def test_ingest_invalidates_cache_via_epoch(self, served_db, served_workload):
        with QueryService(served_db, n_shards=2) as service:
            service.range(served_workload)
            service.ingest([make_trajectory(n=5, seed=321)])
            refreshed = service.range(served_workload)
            assert not refreshed.cached
            assert refreshed.epoch == 1

    def test_list_shaped_time_windows_are_served_and_cached(self, served_db):
        """JSON-decoded windows arrive as lists; they must not crash the key."""
        queries, windows = knn_suite(served_db, n_queries=2)
        as_lists = [list(w) for w in windows]
        with QueryService(served_db, n_shards=2) as service:
            first = service.knn(queries, 2, as_lists)
            again = service.knn(queries, 2, tuple(windows))
            assert again.cached  # tuple- and list-shaped windows share a key
            assert again.neighbors == first.neighbors
            sim = service.similarity(queries, 1.0, as_lists)
            assert service.similarity(queries, 1.0, windows).cached
            assert sim.result_sets is not None

    def test_callable_measure_is_not_cached(self, served_db):
        queries, windows = knn_suite(served_db, n_queries=2)
        request = KnnRequest(
            tuple(queries), 2, tuple(windows), measure=lambda a, b: 1.0
        )
        assert request.cache_key() is None
        with QueryService(served_db, n_shards=2) as service:
            first = service.execute(request)
            second = service.execute(request)
            assert not first.cached and not second.cached

    def test_stats_summary_counts_latency(self, served_db, served_workload):
        with QueryService(served_db, n_shards=2) as service:
            service.range(served_workload)
            service.range(served_workload)
            service.histogram(8)
            summary = service.stats.summary()
            assert summary["requests"] == 3
            assert summary["range_requests"] == 2
            assert summary["range_cache_hits"] == 1
            assert summary["range_mean_latency_ms"] >= 0.0
            assert summary["histogram_requests"] == 1

    def test_queue_instruments_absent_until_recorded(self, served_db):
        """Single-threaded transports never record queue stats, so their
        summary keeps the exact historical key set."""
        with QueryService(served_db, n_shards=2) as service:
            service.histogram(8)
            summary = service.stats.summary()
            assert "queue_depth_hwm" not in summary
            assert "queue_wait_p99_ms" not in summary
            assert "queue_wait" not in service.stats.histograms()

    def test_queue_depth_hwm_and_wait_quantiles(self, served_db):
        with QueryService(served_db, n_shards=2) as service:
            stats = service.stats
            for depth in (1, 3, 2, 3, 1):
                stats.record_queue_depth(depth)
            rng = np.random.default_rng(11)
            waits = rng.uniform(1e-4, 0.2, size=200)
            for wait in waits:
                stats.record_queue_wait(float(wait))
            summary = stats.summary()
            assert summary["queue_depth_hwm"] == 3
            assert summary["queue_wait_max_ms"] == pytest.approx(
                1000.0 * waits.max()
            )
            # The histogram's accuracy contract: each reported quantile
            # sits within one bucket width of the exact sample quantile.
            hist = stats.queue_wait
            exact_sorted = np.sort(waits)
            for q, key in (
                (0.50, "queue_wait_p50_ms"),
                (0.95, "queue_wait_p95_ms"),
                (0.99, "queue_wait_p99_ms"),
            ):
                exact = float(
                    np.quantile(exact_sorted, q, method="inverted_cdf")
                )
                approx = summary[key] / 1000.0
                idx = hist.bucket_index(exact)
                width = hist.upper_edge(idx) - hist.lower_edge(idx)
                assert abs(approx - exact) <= width
            assert "queue_wait" in stats.histograms()

    def test_describe_reports_shard_layout(self, served_db):
        with QueryService(served_db, n_shards=3) as service:
            info = service.describe()
            assert info["n_shards"] == 3
            assert info["trajectories"] == len(served_db)
            assert len(info["shards"]) == 3
            assert sum(s["base_trajectories"] for s in info["shards"]) == len(
                served_db
            )

    def test_closed_service_refuses_requests(self, served_db, served_workload):
        service = QueryService(served_db, n_shards=2)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.range(served_workload)

    def test_failed_delivery_leaves_manager_uncommitted(
        self, served_db, served_workload
    ):
        """A dead worker at ingest must not desynchronize the manager."""
        with QueryService(served_db, n_shards=2, executor="process") as service:
            baseline = service.range(served_workload).result_sets
            for proc in service._executor._procs:
                proc.terminate()
                proc.join()
            with pytest.raises(ShardExecutionError):
                service.ingest([make_trajectory(n=5, seed=1)])
            # nothing committed: same epoch, same membership...
            assert service.manager.epoch == 0
            assert service.manager.n_trajectories == len(served_db)
            # ...and the service refuses to keep serving from diverged shards
            with pytest.raises(RuntimeError, match="failed state"):
                service.range(served_workload)
            # the manager's database still rebuilds the consistent state
            rebuilt = service.manager.database()
            from repro.queries import QueryEngine

            assert QueryEngine(rebuilt).evaluate(served_workload) == baseline


class TestShardRuntimeTiers:
    def test_small_ingest_keeps_base_engine(self, served_db, served_workload):
        """Streaming ingest must not rebuild the CSR layout per batch."""
        with QueryService(
            served_db, n_shards=2, min_compact_points=10**9
        ) as service:
            service.range(served_workload)  # builds base engines
            runtimes = service._executor.runtimes
            engines = [r.engine for r in runtimes]
            service.ingest([make_trajectory(n=6, seed=41 + i) for i in range(4)])
            assert [r.engine for r in runtimes] == engines  # same objects
            assert sum(r.n_pending for r in runtimes) == 4
            final = service.database()
            assert service.range(served_workload).result_sets == QueryEngine(
                final
            ).evaluate(served_workload)

    def test_compaction_folds_pending_and_preserves_results(
        self, served_db, served_workload
    ):
        with QueryService(
            served_db, n_shards=2, min_compact_points=1, compact_threshold=0.0
        ) as service:
            service.ingest([make_trajectory(n=6, seed=51 + i) for i in range(4)])
            runtimes = service._executor.runtimes
            assert all(r.n_pending == 0 for r in runtimes)
            assert sum(r.compactions for r in runtimes) >= 1
            final = service.database()
            assert service.range(served_workload).result_sets == QueryEngine(
                final
            ).evaluate(served_workload)

    def test_empty_shard_answers_every_kind(self):
        runtime = ShardRuntime(Shard(index=0))
        db = service_db(6)
        workload = RangeQueryWorkload.from_data_distribution(db, 4, seed=0)
        queries, windows = knn_suite(db, n_queries=2)
        assert runtime.op_range(workload.boxes) == [set()] * 4
        assert runtime.op_count(workload.boxes).tolist() == [0] * 4
        assert runtime.op_histogram(8, db.bounding_box).sum() == 0
        assert runtime.op_knn(queries, 2, windows) == [[], []]
        assert runtime.op_similarity(queries, 1.0) == [set(), set()]

    def test_ingest_into_initially_empty_shard(self, served_workload, served_db):
        runtime = ShardRuntime(Shard(index=0), min_compact_points=10**9)
        batch = [(gid, served_db[gid]) for gid in range(len(served_db))]
        runtime.ingest(batch)
        engine = QueryEngine(served_db)
        assert runtime.op_range(served_workload.boxes) == engine.evaluate(
            served_workload
        )


class TestExecutors:
    def test_make_executor_rejects_unknown_kind(self, small_db):
        manager = ShardManager.create(small_db, 2)
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("threads", manager.snapshots())

    def test_process_executor_runs_one_worker_per_shard(self, served_db):
        manager = ShardManager.create(served_db, 3)
        with ProcessShardExecutor(manager.snapshots()) as executor:
            assert executor.n_workers == 3
            pids = executor.worker_pids()
            assert len(set(pids)) == 3
            infos = executor.broadcast("info", {})
            assert sum(i["base_trajectories"] for i in infos) == len(served_db)

    def test_process_executor_propagates_shard_errors(self, served_db):
        manager = ShardManager.create(served_db, 2)
        with ProcessShardExecutor(manager.snapshots()) as executor:
            with pytest.raises(ShardExecutionError, match="shard 0"):
                executor.broadcast("no_such_op", {})
            # the worker survives an error and keeps serving
            assert len(executor.broadcast("info", {})) == 2

    def test_dead_worker_surfaces_as_shard_execution_error(self, served_db):
        """A killed worker must not leak BrokenPipeError or stale replies."""
        manager = ShardManager.create(served_db, 2)
        with ProcessShardExecutor(manager.snapshots()) as executor:
            executor._procs[0].terminate()
            executor._procs[0].join()
            with pytest.raises(ShardExecutionError, match="shard 0"):
                executor.broadcast("info", {})
            # repeatable: no stale reply from the earlier failed round
            with pytest.raises(ShardExecutionError, match="shard 0"):
                executor.broadcast("info", {})
            # targeted ingest to the live shard alone still works
            executor.ingest({1: [(len(served_db), make_trajectory(n=4, seed=2))]})
            with pytest.raises(ShardExecutionError):
                executor.broadcast("info", {})

    def test_process_executor_close_is_idempotent(self, served_db):
        manager = ShardManager.create(served_db, 2)
        executor = ProcessShardExecutor(manager.snapshots())
        executor.close()
        executor.close()
        with pytest.raises(ShardExecutionError, match="closed"):
            executor.broadcast("info", {})

    def test_serial_executor_matches_runtime_directly(self, served_db):
        manager = ShardManager.create(served_db, 2)
        executor = SerialShardExecutor(manager.snapshots())
        boxes = RangeQueryWorkload.from_data_distribution(served_db, 5, seed=9).boxes
        partials = executor.broadcast("range", {"boxes": boxes})
        assert len(partials) == 2
        merged = [set() for _ in boxes]
        for shard_sets in partials:
            for qi, ids in enumerate(shard_sets):
                merged[qi] |= ids
        assert merged == QueryEngine(served_db).evaluate(boxes)


class TestServiceBackedEvaluation:
    def test_harness_scores_identical_through_service(self, served_db):
        from repro.baselines import get_baseline, simplify_database

        evaluator = QueryAccuracyEvaluator(served_db)
        simplified = simplify_database(
            served_db, 0.4, get_baseline("Top-Down(E,SED)")
        )
        tasks = ("range", "knn_edr", "similarity")
        direct = evaluator.evaluate(simplified, tasks)
        with QueryService(simplified, n_shards=3) as service:
            via_service = evaluator.evaluate(simplified, tasks, service=service)
        assert via_service == direct

    def test_harness_rejects_mismatched_service(self, served_db):
        evaluator = QueryAccuracyEvaluator(served_db)
        wrong = service_db(6, seed=123)
        with QueryService(wrong, n_shards=2) as service:
            with pytest.raises(ValueError, match="service"):
                evaluator.evaluate(served_db, ("range",), service=service)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 100),
    n_shards=st.integers(2, 5),
    partitioner=st.sampled_from(["hash", "spatial"]),
)
def test_property_sharded_range_equals_engine(seed, n_shards, partitioner):
    db = TrajectoryDatabase(
        [make_trajectory(n=4 + (seed + i) % 8, seed=seed + i) for i in range(9)]
    )
    workload = RangeQueryWorkload.from_data_distribution(db, 8, seed=seed)
    with QueryService(
        db, n_shards=n_shards, partitioner=partitioner
    ) as service:
        assert service.range(workload).result_sets == QueryEngine(db).evaluate(
            workload
        )
        assert np.array_equal(
            service.count(workload.boxes).counts,
            QueryEngine(db).count(workload.boxes),
        )


def test_t2vec_measure_rejected_at_request_construction():
    db = service_db(6)
    with pytest.raises(ValueError, match="t2vec"):
        KnnRequest((db[0],), 2, measure="t2vec")
