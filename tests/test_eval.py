"""Tests for the evaluation harness, deformation study, and experiment drivers."""

import pytest

from repro.baselines import get_baseline
from repro.core import RL4QDTS, RL4QDTSConfig
from repro.eval import (
    ALL_TASKS,
    MethodResult,
    QueryAccuracyEvaluator,
    QuerySuiteConfig,
    baseline_method,
    compare_methods,
    query_deformation,
    rl4qdts_method,
)
from repro.eval.experiments import format_results_table
from repro.workloads import RangeQueryWorkload


@pytest.fixture(scope="module")
def evaluator(geolife_db):
    config = QuerySuiteConfig(
        n_range_queries=15,
        n_knn_queries=4,
        n_similarity_queries=4,
        clustering_subset=8,
        seed=1,
    )
    return QueryAccuracyEvaluator(geolife_db, config)


class TestKnnSuiteGuard:
    def test_degenerate_central_windows_are_skipped(self):
        """2-point trajectories (middle half contains no sample) must not be
        chosen as kNN query trajectories: their truth would be the empty
        list and every method's F1 a vacuous empty-set comparison."""
        from repro.data import Trajectory, TrajectoryDatabase
        from tests.conftest import make_trajectory

        def two_point(seed, traj_id):
            t = make_trajectory(n=10, seed=seed, traj_id=traj_id)
            return Trajectory(t.points[[0, -1]], traj_id=traj_id)

        # Half the database is unusable as a kNN query.
        db = TrajectoryDatabase(
            [make_trajectory(n=12, seed=i, traj_id=i) for i in range(6)]
            + [two_point(100 + i, 6 + i) for i in range(6)]
        )
        config = QuerySuiteConfig(
            n_range_queries=5, n_knn_queries=12, n_similarity_queries=2,
            clustering_subset=4, seed=0,
        )
        evaluator = QueryAccuracyEvaluator(db, config)
        assert evaluator._knn_query_ids  # some eligible queries exist
        assert all(qid < 6 for qid in evaluator._knn_query_ids)
        assert all(truth for truth in evaluator._knn_edr_truth)
        # And the suite still scores cleanly end to end.
        scores = evaluator.evaluate(db, tasks=("knn_edr",))
        assert scores["knn_edr"] == pytest.approx(1.0)

    def test_all_degenerate_scores_vacuous_perfect(self):
        """A database with no eligible query trajectory yields an empty kNN
        suite that scores 1.0 instead of NaN."""
        from repro.data import Trajectory, TrajectoryDatabase
        from tests.conftest import make_trajectory

        db = TrajectoryDatabase(
            [
                Trajectory(
                    make_trajectory(n=10, seed=i).points[[0, -1]], traj_id=i
                )
                for i in range(5)
            ]
        )
        config = QuerySuiteConfig(
            n_range_queries=5, n_knn_queries=4, n_similarity_queries=2,
            clustering_subset=3, seed=0,
        )
        evaluator = QueryAccuracyEvaluator(db, config)
        assert evaluator._knn_query_ids == []
        scores = evaluator.evaluate(db, tasks=("knn_edr", "knn_t2vec"))
        assert scores["knn_edr"] == 1.0
        assert scores["knn_t2vec"] == 1.0


class TestEvaluator:
    def test_identity_scores_one_on_all_tasks(self, geolife_db, evaluator):
        scores = evaluator.evaluate(geolife_db)
        assert set(scores) == set(ALL_TASKS)
        for task, value in scores.items():
            assert value == pytest.approx(1.0), task

    def test_scores_in_unit_interval(self, geolife_db, evaluator):
        coarse = geolife_db.map_simplify(lambda t: [0, len(t) - 1])
        scores = evaluator.evaluate(coarse)
        for task, value in scores.items():
            assert 0.0 <= value <= 1.0, task

    def test_subset_of_tasks(self, geolife_db, evaluator):
        scores = evaluator.evaluate(geolife_db, tasks=("range", "similarity"))
        assert set(scores) == {"range", "similarity"}

    def test_unknown_task_rejected(self, geolife_db, evaluator):
        with pytest.raises(ValueError):
            evaluator.evaluate(geolife_db, tasks=("join",))

    def test_size_mismatch_rejected(self, geolife_db, evaluator, small_db):
        with pytest.raises(ValueError):
            evaluator.evaluate(small_db)

    def test_thresholds_derived_from_scale(self, geolife_db):
        from repro.data.stats import spatial_scale

        ev = QueryAccuracyEvaluator(geolife_db, QuerySuiteConfig(seed=0))
        scale = spatial_scale(geolife_db)
        assert ev.edr_eps == pytest.approx(0.10 * scale)
        assert ev.similarity_delta == pytest.approx(0.15 * scale)

    def test_explicit_thresholds_respected(self, geolife_db):
        ev = QueryAccuracyEvaluator(
            geolife_db,
            QuerySuiteConfig(edr_eps=123.0, similarity_delta=55.0, seed=0),
        )
        assert ev.edr_eps == 123.0
        assert ev.similarity_delta == 55.0

    def test_more_budget_means_no_worse_range_f1(self, geolife_db, evaluator):
        from repro.baselines import simplify_database

        spec = get_baseline("Top-Down(E,SED)")
        light = simplify_database(geolife_db, 0.5, spec)
        heavy = simplify_database(geolife_db, 0.05, spec)
        light_f1 = evaluator.evaluate(light, ("range",))["range"]
        heavy_f1 = evaluator.evaluate(heavy, ("range",))["range"]
        assert light_f1 >= heavy_f1 - 0.05


class TestDeformation:
    def test_zero_for_identity(self, geolife_db):
        wl = RangeQueryWorkload.from_data_distribution(geolife_db, 10, seed=2)
        assert query_deformation(geolife_db, geolife_db, wl) == pytest.approx(0.0)

    def test_positive_for_endpoint_simplification(self, geolife_db):
        wl = RangeQueryWorkload.from_data_distribution(geolife_db, 10, seed=2)
        coarse = geolife_db.map_simplify(lambda t: [0, len(t) - 1])
        assert query_deformation(geolife_db, coarse, wl) > 0.0

    def test_size_mismatch_rejected(self, geolife_db, small_db):
        wl = RangeQueryWorkload.from_data_distribution(geolife_db, 5, seed=2)
        with pytest.raises(ValueError):
            query_deformation(geolife_db, small_db, wl)


class TestExperimentDrivers:
    def test_compare_methods_rows(self, geolife_db, evaluator):
        methods = {
            "Top-Down(E,SED)": baseline_method(get_baseline("Top-Down(E,SED)")),
            "Bottom-Up(E,SED)": baseline_method(get_baseline("Bottom-Up(E,SED)")),
        }
        results = compare_methods(
            geolife_db, methods, [0.1, 0.3], evaluator, tasks=("range",)
        )
        assert len(results) == 4
        for row in results:
            assert row.method in methods
            assert "range" in row.scores
            assert row.simplify_seconds >= 0.0

    def test_rl4qdts_method_wrapper(self, geolife_db, evaluator):
        config = RL4QDTSConfig(
            start_level=3, end_level=5, n_training_queries=10,
            n_inference_queries=10, episodes=1, n_train_databases=1,
            train_db_size=6,
        )
        model = RL4QDTS(config)
        method = rl4qdts_method(model, seed=3)
        results = compare_methods(
            geolife_db, {"RL4QDTS": method}, [0.1], evaluator, tasks=("range",)
        )
        assert results[0].scores["range"] >= 0.0

    def test_format_results_table(self):
        rows = [
            MethodResult("m1", 0.1, {"range": 0.5}, 1.0),
            MethodResult("m2", 0.1, {"range": 0.7}, 2.0),
        ]
        table = format_results_table(rows, tasks=("range",))
        assert "m1" in table and "0.5000" in table
        assert len(table.splitlines()) == 4

    def test_method_result_as_row(self):
        row = MethodResult("m", 0.2, {"range": 0.9}, 1.234).as_row()
        assert row["method"] == "m"
        assert row["range"] == 0.9
        assert row["time_s"] == 1.234


class TestEvaluateExtended:
    def test_identity_scores_perfect(self, small_db):
        from repro.eval import QueryAccuracyEvaluator, QuerySuiteConfig

        evaluator = QueryAccuracyEvaluator(
            small_db,
            QuerySuiteConfig(n_range_queries=10, clustering_subset=8, seed=0),
        )
        scores = evaluator.evaluate_extended(small_db)
        assert scores["range_jaccard"] == 1.0
        assert scores["knn_edr_tau"] == 1.0
        assert scores["clustering_ari"] == 1.0
        assert scores["heatmap"] == 1.0

    def test_simplified_scores_bounded(self, small_db):
        from repro.baselines import uniform_simplify_database
        from repro.eval import QueryAccuracyEvaluator, QuerySuiteConfig

        evaluator = QueryAccuracyEvaluator(
            small_db,
            QuerySuiteConfig(n_range_queries=10, clustering_subset=8, seed=0),
        )
        simplified = uniform_simplify_database(small_db, 0.3)
        scores = evaluator.evaluate_extended(simplified)
        assert 0.0 <= scores["range_jaccard"] <= 1.0
        assert -1.0 <= scores["knn_edr_tau"] <= 1.0
        assert 0.0 <= scores["heatmap"] <= 1.0
        # Jaccard can never exceed F1.
        f1 = evaluator.evaluate(simplified, ("range",))["range"]
        assert scores["range_jaccard"] <= f1 + 1e-9

    def test_rejects_mismatched_database(self, small_db):
        import pytest as _pytest

        from repro.eval import QueryAccuracyEvaluator, QuerySuiteConfig

        evaluator = QueryAccuracyEvaluator(
            small_db, QuerySuiteConfig(n_range_queries=5, seed=0)
        )
        with _pytest.raises(ValueError):
            evaluator.evaluate_extended(small_db.subset([0, 1]))
