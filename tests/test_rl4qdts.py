"""Tests for the RL4QDTS algorithm: training, inference, ablation, persistence."""

import numpy as np
import pytest

from repro.core import RL4QDTS, RL4QDTSConfig
from repro.errors import database_errors
from repro.rl import DQNConfig
from repro.workloads import RangeQueryWorkload


@pytest.fixture(scope="module")
def tiny_config():
    return RL4QDTSConfig(
        start_level=3,
        end_level=6,
        delta=8,
        n_training_queries=20,
        n_inference_queries=40,
        episodes=2,
        n_train_databases=1,
        train_db_size=10,
        train_budget_ratio=0.1,
        seed=3,
    )


@pytest.fixture(scope="module")
def trained_model(geolife_db, tiny_config):
    return RL4QDTS.train(geolife_db, config=tiny_config)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RL4QDTSConfig(start_level=0)
        with pytest.raises(ValueError):
            RL4QDTSConfig(start_level=5, end_level=4)
        with pytest.raises(ValueError):
            RL4QDTSConfig(k_candidates=0)
        with pytest.raises(ValueError):
            RL4QDTSConfig(delta=0)
        with pytest.raises(ValueError):
            RL4QDTSConfig(train_budget_ratio=0.0)

    def test_defaults_match_paper_style(self):
        config = RL4QDTSConfig()
        assert config.k_candidates == 2
        assert config.dqn.hidden == 25
        assert config.dqn.gamma == 0.99
        assert config.dqn.replay_capacity == 2000


class TestTraining:
    def test_history_recorded(self, trained_model, tiny_config):
        expected = tiny_config.episodes * tiny_config.n_train_databases
        assert len(trained_model.history.episode_diffs) == expected
        assert len(trained_model.history.episode_rewards) == expected
        assert trained_model.history.best_diff <= min(
            trained_model.history.episode_diffs
        ) + 1e-12

    def test_training_is_deterministic(self, geolife_db, tiny_config):
        a = RL4QDTS.train(geolife_db, config=tiny_config)
        b = RL4QDTS.train(geolife_db, config=tiny_config)
        assert a.history.episode_diffs == b.history.episode_diffs

    def test_explicit_workload_reused(self, geolife_db, tiny_config):
        workload = RangeQueryWorkload.from_data_distribution(geolife_db, 10, seed=1)
        model = RL4QDTS.train(geolife_db, workload=workload, config=tiny_config)
        assert len(model.history.episode_diffs) > 0


class TestSimplify:
    def test_budget_argument_validation(self, trained_model, geolife_db):
        with pytest.raises(ValueError):
            trained_model.simplify(geolife_db)
        with pytest.raises(ValueError):
            trained_model.simplify(geolife_db, budget_ratio=0.1, budget=50)
        with pytest.raises(ValueError):
            trained_model.simplify(geolife_db, budget=3)  # < 2 per trajectory

    def test_exact_budget(self, trained_model, geolife_db):
        budget = geolife_db.budget_for_ratio(0.08)
        simplified = trained_model.simplify(geolife_db, budget=budget, seed=5)
        assert simplified.total_points == budget
        assert len(simplified) == len(geolife_db)

    def test_output_is_subsequence_with_endpoints(self, trained_model, geolife_db):
        simplified = trained_model.simplify(geolife_db, budget_ratio=0.08, seed=5)
        # database_errors recovers indices and raises if not a subsequence.
        errors = database_errors(geolife_db, simplified, "sed")
        assert (errors >= 0.0).all()
        for orig, simp in zip(geolife_db, simplified):
            assert np.array_equal(simp.points[0], orig.points[0])
            assert np.array_equal(simp.points[-1], orig.points[-1])

    def test_deterministic_given_seed(self, trained_model, geolife_db):
        a = trained_model.simplify(geolife_db, budget_ratio=0.08, seed=5)
        b = trained_model.simplify(geolife_db, budget_ratio=0.08, seed=5)
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.points, tb.points)

    def test_stats_reported(self, trained_model, geolife_db):
        _, stats = trained_model.simplify(
            geolife_db, budget_ratio=0.08, seed=5, return_stats=True
        )
        assert stats.inserted > 0
        assert 0.0 <= stats.final_diff <= 1.0

    def test_untrained_model_still_works(self, geolife_db, tiny_config):
        model = RL4QDTS(tiny_config)
        simplified = model.simplify(geolife_db, budget_ratio=0.06, seed=2)
        assert simplified.total_points == geolife_db.budget_for_ratio(0.06)


class TestAblation:
    def test_all_ablation_combinations_run(self, geolife_db, tiny_config):
        budget = geolife_db.budget_for_ratio(0.06)
        for uc, up in ((False, True), (True, False), (False, False)):
            model = RL4QDTS(tiny_config, use_agent_cube=uc, use_agent_point=up)
            simplified = model.simplify(geolife_db, budget=budget, seed=1)
            assert simplified.total_points == budget


class TestPersistence:
    def test_save_load_roundtrip(self, trained_model, geolife_db, tmp_path):
        path = tmp_path / "model.npz"
        trained_model.save(path)
        loaded = RL4QDTS.load(path)
        assert loaded.config == trained_model.config
        assert loaded.use_agent_cube == trained_model.use_agent_cube
        a = trained_model.simplify(geolife_db, budget_ratio=0.08, seed=5)
        b = loaded.simplify(geolife_db, budget_ratio=0.08, seed=5)
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.points, tb.points)

    def test_save_load_preserves_ablation_flags(self, tiny_config, tmp_path):
        model = RL4QDTS(tiny_config, use_agent_cube=False)
        path = tmp_path / "model.npz"
        model.save(path)
        assert RL4QDTS.load(path).use_agent_cube is False

    def test_saved_model_drives_identical_service_masks(
        self, trained_model, geolife_db, tmp_path
    ):
        """A path-loaded policy keeps the exact points the live model keeps.

        This is the contract the serving layer relies on: a trained policy
        saved to disk and handed to ``--compaction rl --compaction-model``
        (an :class:`RLSimplifier` built from the path) must propose the
        same kept indices as the in-memory model, on a fixed seed.
        """
        from repro.baselines.registry import RLSimplifier

        path = tmp_path / "model.npz"
        trained_model.save(path)
        live = RLSimplifier(model=trained_model, seed=5)
        from_disk = RLSimplifier(model=str(path), seed=5)
        assert live.keep_indices(geolife_db, 0.08) == from_disk.keep_indices(
            geolife_db, 0.08
        )

    def test_save_load_preserves_dqn_config(self, tmp_path):
        config = RL4QDTSConfig(dqn=DQNConfig(hidden=13, lr=0.123))
        model = RL4QDTS(config)
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = RL4QDTS.load(path)
        assert loaded.config.dqn.hidden == 13
        assert loaded.config.dqn.lr == 0.123
