"""Hypothesis property tests on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import SimplificationState, TrajectoryDatabase
from repro.index import Octree
from repro.queries.edr import edr_distance
from repro.queries.metrics import f1_score, precision_recall_f1
from tests.conftest import make_trajectory


def random_db(seed: int, n_trajectories: int) -> TrajectoryDatabase:
    return TrajectoryDatabase(
        [
            make_trajectory(n=5 + (seed + i) % 12, seed=seed + i, traj_id=i)
            for i in range(n_trajectories)
        ]
    )


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 200), n=st.integers(1, 6), data=st.data())
def test_simplification_state_invariants_under_random_ops(seed, n, data):
    """Random insert/drop sequences preserve the structural invariants."""
    db = random_db(seed, n)
    state = SimplificationState(db)
    rng = np.random.default_rng(seed)
    for _ in range(30):
        tid = int(rng.integers(n))
        traj_len = len(db[tid])
        interior = list(range(1, traj_len - 1))
        if not interior:
            continue
        idx = int(rng.choice(interior))
        if state.is_kept(tid, idx):
            state.drop(tid, idx)
        else:
            state.insert(tid, idx)
        kept = state.kept[tid]
        # Invariants: sorted, unique, endpoints present, count consistent.
        assert kept == sorted(set(kept))
        assert kept[0] == 0 and kept[-1] == traj_len - 1
    assert state.total_kept == sum(len(k) for k in state.kept)
    # Materialization round-trips the kept points.
    simplified = state.materialize()
    for traj in simplified:
        assert len(traj) == state.kept_count(traj.traj_id)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 100),
    n=st.integers(1, 8),
    max_depth=st.integers(2, 6),
    leaf_capacity=st.integers(1, 16),
)
def test_octree_partitions_points_exactly(seed, n, max_depth, leaf_capacity):
    """Every point lands in exactly one leaf regardless of tree shape."""
    db = random_db(seed, n)
    tree = Octree(db, max_depth=max_depth, leaf_capacity=leaf_capacity)
    entries = tree.collect_points(tree.root)
    assert len(entries) == db.total_points
    assert len(set(entries)) == db.total_points
    assert tree.depth() <= max_depth


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 300), eps=st.floats(0.1, 100.0))
def test_edr_metric_like_properties(seed, eps):
    a = make_trajectory(n=6 + seed % 5, seed=seed)
    b = make_trajectory(n=4 + seed % 7, seed=seed + 1)
    d_ab = edr_distance(a, b, eps)
    # Symmetry, identity, bounds.
    assert d_ab == edr_distance(b, a, eps)
    assert edr_distance(a, a, eps) == 0.0
    assert 0.0 <= d_ab <= max(len(a), len(b))


@settings(max_examples=50)
@given(
    truth=st.sets(st.integers(0, 20), max_size=10),
    predicted=st.sets(st.integers(0, 20), max_size=10),
)
def test_f1_bounds_and_symmetry_of_equal_sets(truth, predicted):
    p, r, f1 = precision_recall_f1(truth, predicted)
    assert 0.0 <= p <= 1.0 and 0.0 <= r <= 1.0 and 0.0 <= f1 <= 1.0
    if truth == predicted:
        assert f1 == 1.0
    # F1 is symmetric in its arguments.
    assert f1 == pytest.approx(f1_score(predicted, truth))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 200), keep_every=st.integers(2, 6))
def test_subsample_preserves_point_identity(seed, keep_every):
    traj = make_trajectory(n=20, seed=seed)
    indices = sorted({0, 19, *range(0, 20, keep_every)})
    simplified = traj.subsample(indices)
    for out_row, original_index in zip(simplified.points, indices):
        assert np.array_equal(out_row, traj.points[original_index])
