"""Tests for the STR-packed R-tree range-query accelerator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BoundingBox, TrajectoryDatabase
from repro.index import GridIndex, RTree
from repro.queries import range_query
from repro.workloads import RangeQueryWorkload
from tests.conftest import make_trajectory


def brute_force_candidates(db, box):
    return {
        t.traj_id for t in db if t.bounding_box.intersects(box)
    }


class TestRTreeStructure:
    def test_single_trajectory(self):
        db = TrajectoryDatabase([make_trajectory(n=10)])
        tree = RTree(db)
        assert tree.height() == 1
        assert tree.node_count() == 1
        assert len(tree) == 1

    def test_root_box_covers_database(self, small_db):
        tree = RTree(small_db)
        assert tree.root.box.contains_box(small_db.bounding_box)

    def test_every_trajectory_indexed_once(self, small_db):
        tree = RTree(small_db, fanout=3)
        seen: list[int] = []
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                seen.extend(node.traj_ids)
            else:
                stack.extend(node.children)
        assert sorted(seen) == list(range(len(small_db)))

    def test_children_within_parent_box(self, small_db):
        tree = RTree(small_db, fanout=3)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                continue
            for child in node.children:
                assert node.box.contains_box(child.box)
                stack.append(child)

    def test_fanout_respected(self, small_db):
        fanout = 3
        tree = RTree(small_db, fanout=fanout)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert 1 <= len(node.traj_ids) <= fanout
            else:
                assert 1 <= len(node.children) <= fanout
                stack.extend(node.children)

    def test_height_grows_logarithmically(self):
        db = TrajectoryDatabase(
            [make_trajectory(n=5, seed=i, traj_id=i) for i in range(100)]
        )
        tree = RTree(db, fanout=4)
        # 100 leaves at fanout 4: ceil(log4(25)) + 1 levels, certainly < 8.
        assert 2 <= tree.height() < 8

    def test_rejects_tiny_fanout(self, small_db):
        with pytest.raises(ValueError):
            RTree(small_db, fanout=1)


class TestRTreeSearch:
    def test_candidates_are_superset_of_truth(self, small_db):
        tree = RTree(small_db, fanout=4)
        workload = RangeQueryWorkload.from_data_distribution(small_db, 20, seed=1)
        for query in workload:
            truth = brute_force_candidates(small_db, query.box)
            assert tree.candidate_trajectories(query.box) == truth

    def test_whole_region_returns_everything(self, small_db):
        tree = RTree(small_db)
        assert tree.candidate_trajectories(small_db.bounding_box) == set(
            range(len(small_db))
        )

    def test_empty_region_returns_nothing(self, small_db):
        tree = RTree(small_db)
        box = small_db.bounding_box
        far = BoundingBox(
            box.xmax + 10, box.xmax + 20, box.ymax + 10, box.ymax + 20,
            box.tmax + 10, box.tmax + 20,
        )
        assert tree.candidate_trajectories(far) == set()

    def test_agrees_with_grid_pruning(self, small_db):
        """Both accelerators must produce identical final query results."""
        tree = RTree(small_db, fanout=4)
        grid = GridIndex(small_db)
        workload = RangeQueryWorkload.from_data_distribution(small_db, 15, seed=2)
        for query in workload:
            from_rtree = {
                tid
                for tid in tree.candidate_trajectories(query.box)
                if query.box.contains_points(small_db[tid].points).any()
            }
            assert from_rtree == range_query(small_db, query, grid)

    @given(seed=st.integers(0, 2000), fanout=st.integers(2, 12))
    @settings(max_examples=25, deadline=None)
    def test_property_exact_candidates(self, seed, fanout):
        rng = np.random.default_rng(seed)
        db = TrajectoryDatabase(
            [make_trajectory(n=8, seed=seed + i, traj_id=i) for i in range(12)]
        )
        tree = RTree(db, fanout=fanout)
        centre = db.all_points()[int(rng.integers(db.total_points))]
        box = BoundingBox(
            centre[0] - 20, centre[0] + 20,
            centre[1] - 20, centre[1] + 20,
            centre[2] - 10, centre[2] + 10,
        )
        assert tree.candidate_trajectories(box) == brute_force_candidates(db, box)
