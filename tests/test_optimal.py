"""Tests for the exact DP simplifiers — and, through them, the heuristics.

The optimal solvers double as oracles: no budget-respecting heuristic may
achieve a lower trajectory error than :func:`optimal_min_error`, and no
tolerance-respecting simplifier may keep fewer points than
:func:`optimal_min_size`.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    bottom_up,
    error_bounded_simplify,
    optimal_min_error,
    optimal_min_error_database,
    optimal_min_size,
    top_down,
)
from repro.data import Trajectory
from repro.errors import trajectory_error
from tests.conftest import make_trajectory

MEASURES = ("sed", "ped", "dad", "sad")


def brute_force_min_error(traj: Trajectory, budget: int, measure: str) -> float:
    """Exhaustive minimum over all simplifications with exactly <= budget points."""
    n = len(traj)
    interior = range(1, n - 1)
    best = float("inf")
    for m in range(0, budget - 1):
        for combo in itertools.combinations(interior, m):
            idx = [0, *combo, n - 1]
            err = trajectory_error(traj, idx, measure=measure)
            best = min(best, err)
    return best


class TestOptimalMinError:
    @pytest.mark.parametrize("measure", MEASURES)
    def test_matches_brute_force(self, measure):
        traj = make_trajectory(n=9, seed=3)
        for budget in (2, 3, 4, 5):
            result = optimal_min_error(traj, budget, measure)
            expected = brute_force_min_error(traj, budget, measure)
            assert result.error == pytest.approx(expected, abs=1e-9)

    def test_budget_two_keeps_endpoints_only(self, random_trajectory):
        result = optimal_min_error(random_trajectory, 2)
        assert result.indices == (0, len(random_trajectory) - 1)

    def test_full_budget_is_lossless(self, random_trajectory):
        n = len(random_trajectory)
        result = optimal_min_error(random_trajectory, n)
        assert result.indices == tuple(range(n))
        assert result.error == 0.0

    def test_budget_above_length_clamps(self, random_trajectory):
        result = optimal_min_error(random_trajectory, 10_000)
        assert result.error == 0.0

    def test_error_decreases_with_budget(self):
        traj = make_trajectory(n=20, seed=7)
        errors = [optimal_min_error(traj, b).error for b in range(2, 12)]
        assert all(a >= b - 1e-12 for a, b in zip(errors, errors[1:]))

    def test_straight_line_is_free(self, straight_line_trajectory):
        result = optimal_min_error(straight_line_trajectory, 2)
        assert result.error == pytest.approx(0.0, abs=1e-9)

    def test_indices_sorted_with_endpoints(self):
        traj = make_trajectory(n=15, seed=1)
        result = optimal_min_error(traj, 5)
        idx = result.indices
        assert idx[0] == 0 and idx[-1] == len(traj) - 1
        assert list(idx) == sorted(set(idx))
        assert len(idx) <= 5

    def test_reported_error_matches_recomputation(self):
        traj = make_trajectory(n=18, seed=9)
        for measure in MEASURES:
            result = optimal_min_error(traj, 5, measure)
            recomputed = trajectory_error(
                traj, result.indices, measure=measure
            )
            assert result.error == pytest.approx(recomputed, abs=1e-9)

    def test_rejects_tiny_budget(self, random_trajectory):
        with pytest.raises(ValueError):
            optimal_min_error(random_trajectory, 1)

    def test_accepts_raw_array(self):
        traj = make_trajectory(n=10, seed=2)
        from_array = optimal_min_error(traj.points, 4)
        from_traj = optimal_min_error(traj, 4)
        assert from_array == from_traj


class TestHeuristicsNeverBeatOptimal:
    @pytest.mark.parametrize("measure", ("sed", "ped"))
    @pytest.mark.parametrize("seed", range(5))
    def test_top_down_and_bottom_up(self, measure, seed):
        traj = make_trajectory(n=16, seed=seed)
        budget = 5
        optimal = optimal_min_error(traj, budget, measure).error
        for heuristic in (top_down, bottom_up):
            idx = heuristic(traj, budget, measure=measure)
            err = trajectory_error(traj, idx, measure=measure)
            assert err >= optimal - 1e-9

    @given(seed=st.integers(0, 10_000), budget=st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_property_top_down_dominated(self, seed, budget):
        traj = make_trajectory(n=12, seed=seed)
        optimal = optimal_min_error(traj, budget, "sed").error
        idx = top_down(traj, budget, measure="sed")
        err = trajectory_error(traj, idx, measure="sed")
        assert err >= optimal - 1e-9


class TestOptimalMinSize:
    def test_zero_tolerance_on_noisy_data_keeps_everything(self):
        traj = make_trajectory(n=12, seed=4)
        result = optimal_min_size(traj, 0.0)
        assert result.indices == tuple(range(len(traj)))

    def test_straight_line_collapses_to_endpoints(self, straight_line_trajectory):
        result = optimal_min_size(straight_line_trajectory, 1e-9)
        assert result.indices == (0, len(straight_line_trajectory) - 1)

    def test_result_respects_tolerance(self):
        traj = make_trajectory(n=25, seed=6)
        for tol in (0.5, 2.0, 10.0, 100.0):
            result = optimal_min_size(traj, tol)
            assert result.error <= tol + 1e-9

    def test_size_decreases_with_tolerance(self):
        traj = make_trajectory(n=25, seed=8)
        sizes = [len(optimal_min_size(traj, tol).indices) for tol in (0.1, 1, 10, 1e4)]
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] == 2

    def test_greedy_error_bounded_never_smaller(self):
        for seed in range(5):
            traj = make_trajectory(n=20, seed=seed)
            for tol in (1.0, 5.0, 20.0):
                greedy = error_bounded_simplify(traj, tol, measure="sed")
                exact = optimal_min_size(traj, tol, "sed")
                assert len(greedy) >= len(exact.indices)

    def test_duality_with_min_error(self):
        """min_error at the optimal size cannot exceed the tolerance used."""
        traj = make_trajectory(n=15, seed=10)
        tol = 3.0
        size = len(optimal_min_size(traj, tol).indices)
        err = optimal_min_error(traj, size).error
        assert err <= tol + 1e-9

    def test_rejects_negative_tolerance(self, random_trajectory):
        with pytest.raises(ValueError):
            optimal_min_size(random_trajectory, -1.0)

    @given(tol=st.floats(0.01, 50.0), seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_property_minimality_via_min_error(self, tol, seed):
        """One fewer point than the optimum must violate the tolerance."""
        traj = make_trajectory(n=14, seed=seed)
        exact = optimal_min_size(traj, tol, "sed")
        m = len(exact.indices)
        if m > 2:
            err_smaller = optimal_min_error(traj, m - 1, "sed").error
            assert err_smaller > tol


class TestOptimalDatabase:
    def test_ratio_and_structure(self, small_db):
        simplified = optimal_min_error_database(small_db, 0.4)
        assert len(simplified) == len(small_db)
        assert simplified.total_points <= small_db.total_points
        for orig, simp in zip(small_db, simplified):
            assert len(simp) <= max(2, int(round(0.4 * len(orig))))
            assert np.array_equal(simp.points[0], orig.points[0])
            assert np.array_equal(simp.points[-1], orig.points[-1])

    def test_ratio_one_is_identity(self, small_db):
        simplified = optimal_min_error_database(small_db, 1.0)
        assert simplified.total_points == small_db.total_points

    def test_rejects_bad_ratio(self, small_db):
        with pytest.raises(ValueError):
            optimal_min_error_database(small_db, 0.0)

    def test_beats_every_heuristic_per_trajectory(self, small_db):
        from repro.baselines import simplify_database, get_baseline

        ratio = 0.3
        optimal = optimal_min_error_database(small_db, ratio, "sed")
        spec = get_baseline("Top-Down(E,SED)")
        heuristic = simplify_database(small_db, ratio, spec)
        from repro.errors.segment import _recover_indices

        for orig, opt, heur in zip(small_db, optimal, heuristic):
            e_opt = trajectory_error(orig, _recover_indices(orig, opt), measure="sed")
            e_heur = trajectory_error(orig, _recover_indices(orig, heur), measure="sed")
            assert e_opt <= e_heur + 1e-9
