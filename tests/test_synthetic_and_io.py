"""Tests for the synthetic dataset generators, statistics, and persistence."""

import numpy as np
import pytest

from repro.data import (
    DATASET_PROFILES,
    dataset_statistics,
    load_database,
    save_database,
    synthetic_database,
)
from repro.data.stats import spatial_scale


class TestProfiles:
    def test_all_four_paper_datasets_present(self):
        assert set(DATASET_PROFILES) == {"geolife", "tdrive", "chengdu", "osm"}

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            synthetic_database("porto", n_trajectories=3)

    def test_zero_trajectories_rejected(self):
        with pytest.raises(ValueError):
            synthetic_database("geolife", n_trajectories=0)


class TestGeneration:
    def test_deterministic_across_processes_and_calls(self):
        a = synthetic_database("geolife", n_trajectories=5, seed=3)
        b = synthetic_database("geolife", n_trajectories=5, seed=3)
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.points, tb.points)

    def test_different_seeds_differ(self):
        a = synthetic_database("geolife", n_trajectories=5, seed=3)
        b = synthetic_database("geolife", n_trajectories=5, seed=4)
        assert not np.array_equal(a[0].points, b[0].points)

    def test_points_scale_controls_length(self):
        small = synthetic_database("chengdu", n_trajectories=20, points_scale=0.2, seed=1)
        large = synthetic_database("chengdu", n_trajectories=20, points_scale=1.0, seed=1)
        assert large.total_points > 2 * small.total_points

    @pytest.mark.parametrize("name", sorted(DATASET_PROFILES))
    def test_statistics_match_profile(self, name):
        profile = DATASET_PROFILES[name]
        db = synthetic_database(name, n_trajectories=30, points_scale=0.15, seed=2)
        stats = dataset_statistics(db)
        lo, hi = profile.sampling_interval
        # Mean sampling interval stays within the profile's declared range
        # (15% tolerance for the per-step jitter).
        assert lo * 0.85 <= stats.mean_sampling_interval <= hi * 1.15
        # Mean segment length lands near the profile (stay points pull the
        # geolife mean down, so the band is generous).
        assert (
            0.3 * profile.mean_segment_length
            <= stats.mean_segment_length
            <= 2.0 * profile.mean_segment_length
        )

    def test_trajectories_stay_in_extent(self):
        profile = DATASET_PROFILES["chengdu"]
        db = synthetic_database("chengdu", n_trajectories=10, seed=5)
        box = db.bounding_box
        assert box.xmin >= 0.0 and box.xmax <= profile.extent
        assert box.ymin >= 0.0 and box.ymax <= profile.extent

    def test_trajectories_are_directed_not_diffusive(self):
        """Trip structure: diameter should be a sizable fraction of path length."""
        db = synthetic_database("chengdu", n_trajectories=20, points_scale=0.5, seed=8)
        ratios = []
        for t in db:
            box = t.bounding_box
            diameter = max(box.xmax - box.xmin, box.ymax - box.ymin)
            ratios.append(diameter / max(t.path_length(), 1e-9))
        assert np.median(ratios) > 0.15

    def test_heterogeneous_sampling_rates(self):
        """Different trajectories get different base sampling intervals."""
        db = synthetic_database("geolife", n_trajectories=30, seed=9)
        means = [float(t.sampling_intervals().mean()) for t in db]
        assert max(means) > 2.0 * min(means)


class TestStatistics:
    def test_table1_row_keys(self, small_db):
        row = dataset_statistics(small_db).as_row()
        assert "# of trajectories" in row
        assert "Total # of points" in row
        assert row["# of trajectories"] == len(small_db)

    def test_spatial_scale_positive(self, geolife_db):
        assert spatial_scale(geolife_db) > 0.0

    def test_spatial_scale_is_median_diameter(self, small_db):
        diameters = []
        for t in small_db:
            box = t.bounding_box
            diameters.append(max(box.xmax - box.xmin, box.ymax - box.ymin))
        assert spatial_scale(small_db) == pytest.approx(np.median(diameters))


class TestIO:
    def test_npz_roundtrip(self, small_db, tmp_path):
        path = tmp_path / "db.npz"
        save_database(small_db, path)
        loaded = load_database(path)
        assert len(loaded) == len(small_db)
        for a, b in zip(loaded, small_db):
            assert np.array_equal(a.points, b.points)

    def test_csv_roundtrip(self, small_db, tmp_path):
        path = tmp_path / "db.csv"
        save_database(small_db, path)
        loaded = load_database(path)
        assert len(loaded) == len(small_db)
        for a, b in zip(loaded, small_db):
            assert np.allclose(a.points, b.points)

    def test_unknown_suffix_rejected(self, small_db, tmp_path):
        with pytest.raises(ValueError):
            save_database(small_db, tmp_path / "db.parquet")
        with pytest.raises(ValueError):
            load_database(tmp_path / "db.parquet")
