"""Tests for the online simplifiers (SQUISH, dead reckoning) and transforms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import dead_reckoning, squish
from repro.data import (
    Trajectory,
    add_gps_noise,
    drop_points_randomly,
    resample_regular,
)
from repro.errors import trajectory_error
from tests.conftest import make_trajectory


class TestSquish:
    def test_budget_respected(self, random_trajectory):
        for budget in (2, 5, 12):
            kept = squish(random_trajectory, budget)
            assert len(kept) == budget
            assert kept[0] == 0 and kept[-1] == len(random_trajectory) - 1

    def test_budget_above_length_keeps_all(self, random_trajectory):
        assert squish(random_trajectory, 999) == list(
            range(len(random_trajectory))
        )

    def test_tiny_budget_rejected(self, random_trajectory):
        with pytest.raises(ValueError):
            squish(random_trajectory, 1)

    def test_straight_line_zero_error(self, straight_line_trajectory):
        kept = squish(straight_line_trajectory, 4)
        assert trajectory_error(
            straight_line_trajectory, kept, "sed"
        ) == pytest.approx(0.0, abs=1e-9)

    def test_keeps_prominent_corner(self):
        pts = np.array(
            [[0, 0, 0], [1, 0, 1], [2, 0, 2], [3, 50, 3], [4, 0, 4], [5, 0, 5]],
            dtype=float,
        )
        kept = squish(pts, 4)
        assert 3 in kept

    def test_streaming_quality_close_to_batch(self, random_trajectory):
        """SQUISH can't beat offline Bottom-Up, but stays in its ballpark."""
        from repro.baselines import bottom_up

        budget = 8
        online_err = trajectory_error(
            random_trajectory, squish(random_trajectory, budget), "sed"
        )
        batch_err = trajectory_error(
            random_trajectory, bottom_up(random_trajectory, budget, "sed"), "sed"
        )
        assert online_err <= 5.0 * batch_err + 1e-9


class TestDeadReckoning:
    def test_endpoints_always_kept(self, random_trajectory):
        kept = dead_reckoning(random_trajectory, 1e12)
        assert kept == [0, len(random_trajectory) - 1]

    def test_zero_threshold_keeps_deviating_points(self, zigzag_trajectory):
        kept = dead_reckoning(zigzag_trajectory, 0.0)
        assert len(kept) > len(zigzag_trajectory) // 2

    def test_constant_velocity_collapses(self, straight_line_trajectory):
        kept = dead_reckoning(straight_line_trajectory, 0.1)
        assert kept == [0, len(straight_line_trajectory) - 1]

    def test_threshold_monotone(self, random_trajectory):
        loose = dead_reckoning(random_trajectory, 50.0)
        tight = dead_reckoning(random_trajectory, 5.0)
        assert len(loose) <= len(tight)

    def test_negative_threshold_rejected(self, random_trajectory):
        with pytest.raises(ValueError):
            dead_reckoning(random_trajectory, -1.0)


class TestTransforms:
    def test_noise_changes_positions_not_times(self, small_db):
        noisy = add_gps_noise(small_db, sigma=5.0, seed=0)
        assert len(noisy) == len(small_db)
        for clean, dirty in zip(small_db, noisy):
            assert np.array_equal(clean.times, dirty.times)
            assert not np.allclose(clean.xy, dirty.xy)

    def test_zero_sigma_identity(self, small_db):
        noisy = add_gps_noise(small_db, sigma=0.0, seed=0)
        for clean, dirty in zip(small_db, noisy):
            assert np.allclose(clean.points, dirty.points)

    def test_negative_sigma_rejected(self, small_db):
        with pytest.raises(ValueError):
            add_gps_noise(small_db, sigma=-1.0)

    def test_resample_regular_grid(self):
        t = Trajectory([[0, 0, 0], [10, 0, 10]])
        resampled = resample_regular(t, 2.0)
        assert np.allclose(np.diff(resampled.times), 2.0)
        # Interpolated positions sit on the segment.
        assert np.allclose(resampled.points[:, 1], 0.0)
        assert np.allclose(resampled.points[:, 0], resampled.times)

    def test_resample_preserves_span(self, random_trajectory):
        resampled = resample_regular(random_trajectory, 3.0)
        assert resampled.times[0] == random_trajectory.times[0]
        assert resampled.times[-1] == random_trajectory.times[-1]

    def test_resample_bad_interval(self, random_trajectory):
        with pytest.raises(ValueError):
            resample_regular(random_trajectory, 0.0)

    def test_drop_points_randomly(self, small_db):
        dropped = drop_points_randomly(small_db, 0.5, seed=1)
        assert dropped.total_points < small_db.total_points
        # Endpoints always survive.
        for orig, new in zip(small_db, dropped):
            assert np.array_equal(new.points[0], orig.points[0])
            assert np.array_equal(new.points[-1], orig.points[-1])

    def test_drop_fraction_validated(self, small_db):
        with pytest.raises(ValueError):
            drop_points_randomly(small_db, 1.0)
        with pytest.raises(ValueError):
            drop_points_randomly(small_db, -0.1)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 200), budget=st.integers(2, 15))
def test_squish_always_valid(seed, budget):
    traj = make_trajectory(n=20, seed=seed)
    kept = squish(traj, budget)
    assert kept[0] == 0 and kept[-1] == 19
    assert kept == sorted(set(kept))
    assert len(kept) == min(budget, 20)
