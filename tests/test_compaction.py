"""Tests for the pluggable compaction layer of the shard runtimes.

Three contracts:

* **Exactness** — the default :class:`ExactCompaction` is invisible:
  every query kind under every {heap, shm} x {serial, process} cell is
  bit-identical to a fresh single-engine evaluation, with ingest batches
  (and the compactions they trigger) interleaved between queries.
* **Budget** — :class:`SimplifyingCompaction` respects the per-trajectory
  error budget for every simplifier, monotonically in the budget, and
  degenerates to exact at budget zero.
* **Serving accuracy** — a service compacting under a budget still passes
  the paper's query-accuracy harness end to end, and its stats account
  for what the policy dropped.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.client import ServiceClient
from repro.data.codec import storage_report
from repro.data.stats import spatial_scale
from repro.data.store import shared_memory_available
from repro.errors import trajectory_error
from repro.eval.harness import QueryAccuracyEvaluator, QuerySuiteConfig
from repro.service import QueryService
from repro.service._deprecation import reset_fired
from repro.service.compaction import (
    COMPACTION_POLICIES,
    CompactionPolicy,
    ExactCompaction,
    SimplifyingCompaction,
    make_compaction,
    refine_to_budget,
)
from repro.workloads import RangeQueryWorkload
from tests.conftest import make_trajectory
from tests.test_service import knn_suite
from tests.test_service_streaming import assert_state_parity, initial_db

SIMPLIFIER_NAMES = [name for name in COMPACTION_POLICIES if name != "exact"]


# ---------------------------------------------------------------------------
# Exact policy: bit-identity across the full service matrix
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("store", ["heap", "shm"])
@pytest.mark.parametrize("executor", ["serial", "process"])
def test_exact_compaction_bit_identical_under_interleaved_ingest(store, executor):
    """compaction="exact" == fresh engine for all five kinds, every cell."""
    if store == "shm" and not shared_memory_available():
        pytest.skip("no shared memory on this platform")
    seed = 23
    db = initial_db(seed, n=9)
    workload = RangeQueryWorkload.from_data_distribution(db, 6, seed=seed)
    queries, windows = knn_suite(db, n_queries=2, seed=seed)
    eps = 0.10 * spatial_scale(db)
    delta = 0.15 * spatial_scale(db)
    current = db
    next_seed = 7000
    with QueryService(
        db,
        n_shards=3,
        executor=executor,
        store=store,
        compaction="exact",
        # tiny compaction bound so the policy actually runs mid-test
        min_compact_points=24,
        compact_threshold=0.1,
    ) as service:
        assert service.describe()["compaction"] == {"policy": "exact"}
        assert_state_parity(service, current, workload, queries, windows, eps, delta)
        for batch_size in (2, 3):
            batch = [
                make_trajectory(n=6, seed=next_seed + i) for i in range(batch_size)
            ]
            next_seed += batch_size
            service.ingest(batch)
            current = current.extended(batch)
            assert_state_parity(
                service, current, workload, queries, windows, eps, delta
            )
        # the exact policy reports passes but never drops a point
        assert service.stats.points_dropped == 0


def test_default_policy_is_exact():
    db = initial_db(1)
    with QueryService(db, n_shards=2) as service:
        assert service.compaction.name == "exact"
        assert service.compaction.is_exact
        assert service.describe()["compaction"] == {"policy": "exact"}
        for info in service._executor.broadcast("info", {}):
            assert info["compaction"] == "exact"


def test_exact_compact_returns_same_database_object():
    db = initial_db(4)
    result = ExactCompaction().compact(db)
    assert result.database is db
    assert result.points_dropped == 0
    assert result.max_error == 0.0
    assert all(mask.all() for mask in result.keep_masks)
    # raw accounting by default; the codec pass only when asked for
    assert result.bytes_before == 24 * db.total_points
    measured = ExactCompaction(measure_bytes=True).compact(db)
    assert measured.bytes_after == storage_report(db).encoded_bytes


# ---------------------------------------------------------------------------
# Satellite: empty-pending compact() is a no-op
# ---------------------------------------------------------------------------

def test_empty_pending_compact_is_noop():
    """No pending tier -> no policy pass, no epoch bump, no segment churn."""
    db = initial_db(9)
    with QueryService(
        db, n_shards=2, min_compact_points=4, compact_threshold=0.0
    ) as service:
        runtimes = service._executor.runtimes
        # never compacted yet: still a no-op, nothing published
        for r in runtimes:
            r.compact()
            assert r.compactions == 0
            assert r._published == []
            assert r.last_compaction is None
            assert r.take_compactions() == []
        # after a real fold: the published epoch handles must not churn
        service.ingest([make_trajectory(n=6, seed=321)])
        assert any(r.compactions == 1 for r in runtimes)
        for r in runtimes:
            epochs = r.compactions
            published = list(r._published)
            base_points = r._base_points
            r.compact()
            assert r.compactions == epochs
            assert r._published == published  # same handle objects
            assert r._base_points == base_points
            assert r.take_compactions() == []


# ---------------------------------------------------------------------------
# Budget refinement (unit level)
# ---------------------------------------------------------------------------

class TestRefineToBudget:
    def test_zero_budget_keeps_everything(self):
        t = make_trajectory(n=20, seed=3)
        assert refine_to_budget(t.points, [0, 19], 0.0) == list(range(20))

    def test_unknown_measure_rejected(self):
        t = make_trajectory(n=6, seed=1)
        with pytest.raises(ValueError, match="unknown measure"):
            refine_to_budget(t.points, [0, 5], 1.0, measure="nope")

    @pytest.mark.parametrize("measure", ["sed", "ped", "dad", "sad"])
    def test_every_segment_within_budget(self, measure):
        t = make_trajectory(n=40, seed=7)
        budget = 0.02 * spatial_scale(initial_db(7))
        kept = refine_to_budget(t.points, [0, 39], budget, measure=measure)
        assert kept[0] == 0 and kept[-1] == 39
        assert trajectory_error(t, kept, measure) <= budget + 1e-9

    def test_monotone_in_budget(self):
        t = make_trajectory(n=40, seed=11)
        loose = set(refine_to_budget(t.points, [0, 39], 5.0))
        tight = set(refine_to_budget(t.points, [0, 39], 0.5))
        assert tight >= loose


# ---------------------------------------------------------------------------
# Simplifying policy: budget bound holds for every simplifier
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def cold_db(geolife_db):
    return geolife_db


@pytest.mark.parametrize("simplifier", SIMPLIFIER_NAMES)
def test_budget_bound_holds(simplifier, cold_db):
    """Independently recomputed per-trajectory errors stay within budget."""
    budget = 0.05 * spatial_scale(cold_db)
    policy = make_compaction(simplifier, error_budget=budget, ratio=0.25)
    assert isinstance(policy, SimplifyingCompaction)
    assert policy.name == simplifier
    result = policy.compact(cold_db)
    assert result.points_after == result.database.total_points
    assert result.points_after < result.points_before
    worst = 0.0
    for t, mask in zip(cold_db.trajectories, result.keep_masks):
        assert mask[0] and mask[-1]  # endpoints always survive
        kept = [int(i) for i in np.flatnonzero(mask)]
        assert len(kept) == sum(mask)
        if len(kept) < len(t):
            err = trajectory_error(t, kept, "sed")
            assert err <= budget + 1e-9
            worst = max(worst, err)
    assert result.max_error == pytest.approx(worst)
    assert result.bytes_after < result.bytes_before


@pytest.mark.parametrize("simplifier", SIMPLIFIER_NAMES)
def test_zero_budget_degenerates_to_exact(simplifier, cold_db):
    result = make_compaction(simplifier, error_budget=0.0).compact(cold_db)
    assert result.points_dropped == 0
    assert result.max_error == 0.0
    assert np.array_equal(
        result.database.point_matrix(), cold_db.point_matrix()
    )


def test_none_budget_accepts_ratio_proposal(cold_db):
    result = make_compaction("uniform", error_budget=None, ratio=0.25).compact(
        cold_db
    )
    assert result.error_budget is None
    # uniform keeps max(2, ratio * n) per trajectory, nothing re-inserted
    expected = sum(max(2, int(0.25 * len(t))) for t in cold_db.trajectories)
    assert result.points_after == expected
    assert result.max_error > 0.0


def test_budget_monotonicity(cold_db):
    """A smaller budget keeps a superset of a larger budget's points."""
    scale = spatial_scale(cold_db)
    tight = make_compaction("uniform", error_budget=0.01 * scale).compact(cold_db)
    loose = make_compaction("uniform", error_budget=0.10 * scale).compact(cold_db)
    assert tight.points_after >= loose.points_after
    for small, big in zip(tight.keep_masks, loose.keep_masks):
        assert np.all(small | ~big)  # big kept => small kept
    assert tight.max_error <= loose.max_error + 1e-9


# ---------------------------------------------------------------------------
# Policy construction and pickling (process-executor transport)
# ---------------------------------------------------------------------------

class TestMakeCompaction:
    def test_none_and_exact_spellings(self):
        assert isinstance(make_compaction(None), ExactCompaction)
        assert isinstance(make_compaction("exact"), ExactCompaction)

    def test_instance_passthrough(self):
        policy = SimplifyingCompaction("uniform", error_budget=1.0)
        assert make_compaction(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_compaction("fourier")
        with pytest.raises(ValueError):
            make_compaction(42)

    def test_invalid_ratio_and_measure_rejected(self):
        with pytest.raises(ValueError, match="ratio"):
            SimplifyingCompaction("uniform", ratio=0.0)
        with pytest.raises(ValueError, match="measure"):
            SimplifyingCompaction("uniform", measure="nope")

    def test_spec_round_trips_configuration(self):
        policy = make_compaction(
            "greedy", error_budget=2.5, ratio=0.5, measure="ped"
        )
        assert policy.spec() == {
            "policy": "greedy",
            "error_budget": 2.5,
            "ratio": 0.5,
            "measure": "ped",
        }

    @pytest.mark.parametrize("name", COMPACTION_POLICIES)
    def test_every_policy_pickles(self, name):
        policy = make_compaction(name, error_budget=None if name == "exact" else 1.0)
        clone = pickle.loads(pickle.dumps(policy))
        assert isinstance(clone, CompactionPolicy)
        assert clone.name == policy.name
        assert clone.spec() == policy.spec()

    def test_rl_policy_with_saved_model_pickles_as_path(self, tmp_path):
        from repro.core import RL4QDTS

        path = tmp_path / "policy.npz"
        RL4QDTS().save(path)
        policy = make_compaction("rl", model=str(path), error_budget=1.0)
        clone = pickle.loads(pickle.dumps(policy))
        # the pickled state carries the path, never the agent parameters
        assert clone.simplifier._model is None
        assert clone.simplifier._path == str(path)
        db = initial_db(2, n=4)
        result = clone.compact(db)  # lazily re-loads on the "worker" side
        assert result.points_after <= db.total_points


# ---------------------------------------------------------------------------
# Service integration: stats, describe, and the accuracy gate
# ---------------------------------------------------------------------------

def test_simplifying_service_accounts_for_dropped_points():
    db = initial_db(13, n=10)
    budget = 0.1 * spatial_scale(db)
    with QueryService(
        db,
        n_shards=2,
        compaction="uniform",
        error_budget=budget,
        min_compact_points=24,
        compact_threshold=0.1,
    ) as service:
        # the initial cold tier was compacted once per shard at construction
        assert service.stats.compactions == 2
        assert service.stats.points_dropped > 0
        assert service.stats.bytes_base < service.stats.bytes_base_before
        spec = service.describe()["compaction"]
        assert spec["policy"] == "uniform"
        assert spec["error_budget"] == pytest.approx(budget)
        summary = service.stats.summary()
        assert summary["compactions"] == 2
        assert summary["points_dropped"] == service.stats.points_dropped
        assert summary["bytes_base"] == service.stats.bytes_base
        assert summary["compaction_mean_latency_ms"] >= 0.0
        # logical membership is untouched: simplification drops points,
        # never trajectories
        assert service.describe()["trajectories"] == len(db)
        before = service.stats.compactions
        # an ingest-triggered fold drains its counters through the executor
        service.ingest([make_trajectory(n=40, seed=77)])
        assert service.stats.compactions > before


@pytest.mark.parametrize("executor", ["serial", "process"])
def test_simplifying_service_queries_run_end_to_end(executor):
    """A compacting service keeps serving all kinds (answers approximate)."""
    db = initial_db(5, n=10)
    workload = RangeQueryWorkload.from_data_distribution(db, 5, seed=5)
    queries, windows = knn_suite(db, n_queries=2, seed=5)
    with QueryService(
        db,
        n_shards=2,
        executor=executor,
        compaction=SimplifyingCompaction("uniform", error_budget=None, ratio=0.5),
        min_compact_points=24,
        compact_threshold=0.1,
    ) as service:
        assert service.stats.compactions >= 2  # initial pass on both shards
        assert service.stats.points_dropped > 0
        service.ingest([make_trajectory(n=30, seed=99)])
        response = service.range(workload)
        assert len(response.result_sets) == len(workload)
        assert len(service.count(workload.boxes).counts) == len(workload)
        assert service.histogram(8).histogram.shape == (8, 8)
        assert len(service.knn(queries, 2, windows).neighbors) == 2
        assert len(service.similarity(queries, 1.0).result_sets) == 2


def test_accuracy_gate_through_the_client(geolife_db):
    """The harness scores a compacting service; budget 0 is indistinguishable
    from exact and a real budget still yields valid (imperfect) scores."""
    config = QuerySuiteConfig(
        n_range_queries=12,
        n_knn_queries=2,
        k=2,
        n_similarity_queries=3,
        clustering_subset=6,
        seed=11,
    )
    evaluator = QueryAccuracyEvaluator(geolife_db, config)
    tasks = ("range", "knn_edr", "similarity")

    with ServiceClient.for_database(
        geolife_db, n_shards=2, compaction="uniform", error_budget=0.0
    ) as client:
        scores = evaluator.evaluate(geolife_db, tasks=tasks, client=client)
        assert all(scores[t] == 1.0 for t in tasks)

    budget = 0.05 * spatial_scale(geolife_db)
    with ServiceClient.for_database(
        geolife_db, n_shards=2, compaction="uniform", error_budget=budget
    ) as client:
        assert client.service.stats.points_dropped > 0
        scores = evaluator.evaluate(geolife_db, tasks=tasks, client=client)
        assert all(0.0 <= scores[t] <= 1.0 for t in tasks)
        # a 5%-of-scale budget must not wreck range accuracy
        assert scores["range"] > 0.5


# ---------------------------------------------------------------------------
# Satellite: deprecation shim for the renamed runtime internals
# ---------------------------------------------------------------------------

def test_republish_base_alias_warns_once():
    db = initial_db(6)
    with QueryService(db, n_shards=2) as service:
        runtime = service._executor.runtimes[0]
        reset_fired()
        with pytest.deprecated_call(match="rebuild_base"):
            runtime._republish_base()
        # warn-once: the second call is silent
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            runtime._republish_base()
        reset_fired()


def test_package_exports_compaction_surface():
    import repro

    assert repro.ExactCompaction is ExactCompaction
    assert repro.SimplifyingCompaction is SimplifyingCompaction
    assert repro.CompactionPolicy is CompactionPolicy
    assert repro.make_compaction is make_compaction
