"""Tests for the uniform / mixture workloads and workload serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import RangeQueryWorkload


class TestUniformWorkload:
    def test_generate_dispatch(self, small_db):
        wl = RangeQueryWorkload.generate("uniform", small_db, 12, seed=0)
        assert len(wl) == 12
        assert wl.distribution == "uniform"

    def test_centres_inside_region(self, small_db):
        wl = RangeQueryWorkload.from_uniform(small_db, 30, seed=1)
        box = small_db.bounding_box
        for query in wl:
            cx, cy, ct = query.box.center
            assert box.xmin <= cx <= box.xmax
            assert box.ymin <= cy <= box.ymax
            assert box.tmin <= ct <= box.tmax

    def test_seeded_determinism(self, small_db):
        a = RangeQueryWorkload.from_uniform(small_db, 10, seed=3)
        b = RangeQueryWorkload.from_uniform(small_db, 10, seed=3)
        assert a.boxes == b.boxes

    def test_covers_region_more_evenly_than_data(self, small_db):
        """Uniform centres spread over the box; data centres follow points."""
        uniform = RangeQueryWorkload.from_uniform(small_db, 200, seed=5)
        box = small_db.bounding_box
        xs = np.array([q.box.center[0] for q in uniform])
        # Mean near the box centre and good spread across the x-range.
        assert abs(xs.mean() - box.center[0]) < 0.1 * (box.xmax - box.xmin)


class TestMixtureWorkload:
    def test_counts_sum_exactly(self, small_db):
        wl = RangeQueryWorkload.from_mixture(
            small_db, 10, {"data": 0.7, "uniform": 0.3}, seed=0
        )
        assert len(wl) == 10
        assert wl.distribution == "mixture"

    def test_single_component(self, small_db):
        wl = RangeQueryWorkload.from_mixture(small_db, 7, {"data": 1.0}, seed=0)
        assert len(wl) == 7

    def test_component_params_forwarded(self, small_db):
        wl = RangeQueryWorkload.from_mixture(
            small_db,
            8,
            {"gaussian": 1.0},
            seed=0,
            component_params={"gaussian": {"mu": 0.9, "sigma": 0.05}},
        )
        box = small_db.bounding_box
        xs = np.array([q.box.center[0] for q in wl])
        rel = (xs - box.xmin) / (box.xmax - box.xmin)
        assert rel.mean() > 0.7  # concentrated near the top of the range

    def test_zero_weight_component_skipped(self, small_db):
        wl = RangeQueryWorkload.from_mixture(
            small_db, 6, {"data": 1.0, "uniform": 0.0}, seed=0
        )
        assert len(wl) == 6

    def test_rejects_empty_and_negative(self, small_db):
        with pytest.raises(ValueError):
            RangeQueryWorkload.from_mixture(small_db, 5, {})
        with pytest.raises(ValueError):
            RangeQueryWorkload.from_mixture(small_db, 5, {"data": -1.0})

    @pytest.mark.parametrize("n", [1, 3, 11, 50])
    def test_exact_count_across_roundings(self, small_db, n):
        wl = RangeQueryWorkload.from_mixture(
            small_db, n, {"data": 1.0, "uniform": 1.0, "gaussian": 1.0}, seed=2
        )
        assert len(wl) == n


class TestWorkloadSerialization:
    def test_json_roundtrip(self, small_db):
        wl = RangeQueryWorkload.from_gaussian(small_db, 9, mu=0.4, seed=7)
        restored = RangeQueryWorkload.from_json(wl.to_json())
        assert restored.distribution == wl.distribution
        assert restored.boxes == wl.boxes
        assert restored.params["mu"] == 0.4

    def test_file_roundtrip(self, small_db, tmp_path):
        wl = RangeQueryWorkload.from_data_distribution(small_db, 5, seed=1)
        path = tmp_path / "wl.json"
        wl.save(path)
        restored = RangeQueryWorkload.load(path)
        assert restored.boxes == wl.boxes

    def test_restored_workload_evaluates_identically(self, small_db):
        wl = RangeQueryWorkload.from_data_distribution(small_db, 8, seed=2)
        restored = RangeQueryWorkload.from_json(wl.to_json())
        assert wl.evaluate(small_db) == restored.evaluate(small_db)

    def test_mixture_params_survive(self, small_db):
        wl = RangeQueryWorkload.from_mixture(
            small_db, 4, {"data": 1.0}, seed=3
        )
        restored = RangeQueryWorkload.from_json(wl.to_json())
        assert restored.params["components"] == {"data": 1.0}
