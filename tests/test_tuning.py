"""Tests for the hyper-parameter grid search."""

from __future__ import annotations

import pytest

from repro.core import RL4QDTSConfig, TrialResult, grid_search
from repro.workloads import RangeQueryWorkload

_FAST = RL4QDTSConfig(
    start_level=2,
    end_level=4,
    delta=10,
    n_training_queries=10,
    n_inference_queries=20,
    episodes=1,
    n_train_databases=1,
    train_db_size=8,
)


class TestGridSearch:
    @pytest.fixture(scope="class")
    def class_db(self):
        from repro.data import TrajectoryDatabase
        from tests.conftest import make_trajectory

        return TrajectoryDatabase(
            [make_trajectory(n=10 + 2 * i, seed=i, traj_id=i) for i in range(12)]
        )

    @pytest.fixture(scope="class")
    def results(self, class_db):
        return grid_search(
            class_db,
            {"k_candidates": [1, 2], "delta": [5, 10]},
            base_config=_FAST,
            budget_ratio=0.4,
            n_test_queries=20,
            seed=0,
        )

    def test_all_combinations_run(self, results):
        assert len(results) == 4
        seen = {tuple(sorted(r.overrides.items())) for r in results}
        assert len(seen) == 4

    def test_sorted_best_first(self, results):
        f1s = [r.f1 for r in results]
        assert f1s == sorted(f1s, reverse=True)

    def test_result_fields(self, results):
        for r in results:
            assert isinstance(r, TrialResult)
            assert 0.0 <= r.f1 <= 1.0
            assert r.train_seconds > 0
            assert r.simplify_seconds > 0
            assert set(r.overrides) == {"k_candidates", "delta"}

    def test_str_contains_params(self, results):
        assert "k_candidates" in str(results[0])

    def test_deterministic(self, class_db, results):
        again = grid_search(
            class_db,
            {"k_candidates": [1, 2], "delta": [5, 10]},
            base_config=_FAST,
            budget_ratio=0.4,
            n_test_queries=20,
            seed=0,
        )
        assert [r.f1 for r in again] == [r.f1 for r in results]

    def test_explicit_test_workload(self, small_db):
        workload = RangeQueryWorkload.from_data_distribution(small_db, 10, seed=1)
        results = grid_search(
            small_db,
            {"delta": [10]},
            base_config=_FAST,
            budget_ratio=0.4,
            test_workload=workload,
            seed=0,
        )
        assert len(results) == 1

    def test_rejects_empty_grid(self, small_db):
        with pytest.raises(ValueError):
            grid_search(small_db, {})

    def test_rejects_unknown_field(self, small_db):
        with pytest.raises(ValueError):
            grid_search(small_db, {"not_a_field": [1]})
