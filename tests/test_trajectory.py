"""Unit tests for the Trajectory data model."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.data import Trajectory
from tests.conftest import make_trajectory


class TestConstruction:
    def test_valid(self):
        t = Trajectory([[0, 0, 0], [1, 1, 1], [2, 0, 2]])
        assert len(t) == 3
        assert t.traj_id == -1

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            Trajectory([[0, 0, 0]])

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            Trajectory([[0, 0], [1, 1]])

    def test_non_increasing_time_rejected(self):
        with pytest.raises(ValueError):
            Trajectory([[0, 0, 1], [1, 1, 1]])
        with pytest.raises(ValueError):
            Trajectory([[0, 0, 2], [1, 1, 1]])

    def test_points_are_immutable(self):
        t = make_trajectory()
        with pytest.raises(ValueError):
            t.points[0, 0] = 99.0

    def test_equality_and_hash(self):
        a = Trajectory([[0, 0, 0], [1, 1, 1]], traj_id=3)
        b = Trajectory([[0, 0, 0], [1, 1, 1]], traj_id=3)
        c = Trajectory([[0, 0, 0], [1, 2, 1]], traj_id=3)
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestProjections:
    def test_xy_times_shapes(self):
        t = make_trajectory(n=7)
        assert t.xy.shape == (7, 2)
        assert t.times.shape == (7,)

    def test_duration(self):
        t = Trajectory([[0, 0, 2.0], [1, 1, 7.5]])
        assert t.duration == pytest.approx(5.5)

    def test_segment_and_path_lengths(self, straight_line_trajectory):
        lengths = straight_line_trajectory.segment_lengths()
        assert len(lengths) == 9
        assert np.allclose(lengths, np.sqrt(2.0))
        assert straight_line_trajectory.path_length() == pytest.approx(9 * np.sqrt(2))

    def test_sampling_intervals(self):
        t = Trajectory([[0, 0, 0], [1, 1, 2], [2, 2, 3]])
        assert np.allclose(t.sampling_intervals(), [2.0, 1.0])

    def test_bounding_box_cached_and_correct(self, random_trajectory):
        box = random_trajectory.bounding_box
        assert box is random_trajectory.bounding_box  # cached object
        assert box.contains_points(random_trajectory.points).all()


class TestSubsample:
    def test_keeps_selected_points(self, random_trajectory):
        simp = random_trajectory.subsample([0, 5, 10, 29])
        assert len(simp) == 4
        assert np.array_equal(simp.points[1], random_trajectory.points[5])

    def test_duplicates_collapsed(self, random_trajectory):
        simp = random_trajectory.subsample([0, 5, 5, 29])
        assert len(simp) == 3

    def test_endpoints_required(self, random_trajectory):
        with pytest.raises(ValueError):
            random_trajectory.subsample([1, 5, 29])
        with pytest.raises(ValueError):
            random_trajectory.subsample([0, 5, 28])

    def test_preserves_traj_id(self):
        t = make_trajectory(traj_id=9)
        assert t.subsample([0, len(t) - 1]).traj_id == 9


class TestInterpolation:
    def test_position_at_sample_times(self, straight_line_trajectory):
        t = straight_line_trajectory
        for i in range(len(t)):
            assert np.allclose(t.position_at(t.times[i]), t.points[i, :2])

    def test_position_at_midpoint(self):
        t = Trajectory([[0, 0, 0], [10, 20, 10]])
        assert np.allclose(t.position_at(5.0), [5.0, 10.0])

    def test_position_clamps_outside_span(self):
        t = Trajectory([[0, 0, 0], [10, 20, 10]])
        assert np.allclose(t.position_at(-5.0), [0.0, 0.0])
        assert np.allclose(t.position_at(50.0), [10.0, 20.0])

    def test_positions_at_matches_scalar(self, random_trajectory):
        ts = np.linspace(
            random_trajectory.times[0] - 1, random_trajectory.times[-1] + 1, 40
        )
        batch = random_trajectory.positions_at(ts)
        for i, time in enumerate(ts):
            assert np.allclose(batch[i], random_trajectory.position_at(time))

    def test_slice_time(self, straight_line_trajectory):
        sliced = straight_line_trajectory.slice_time(2.0, 5.0)
        assert len(sliced) == 4
        assert sliced[0, 2] == 2.0 and sliced[-1, 2] == 5.0

    def test_slice_time_empty(self, straight_line_trajectory):
        assert len(straight_line_trajectory.slice_time(100.0, 200.0)) == 0


@given(n=st.integers(2, 50), seed=st.integers(0, 1000))
def test_subsample_endpoints_always_valid(n, seed):
    t = make_trajectory(n=n, seed=seed)
    simp = t.subsample([0, n - 1])
    assert len(simp) == 2
    assert np.array_equal(simp.points[0], t.points[0])
    assert np.array_equal(simp.points[-1], t.points[-1])


def test_reversed_spatially(straight_line_trajectory):
    rev = straight_line_trajectory.reversed_spatially()
    assert np.allclose(rev.xy, straight_line_trajectory.xy[::-1])
    assert np.array_equal(rev.times, straight_line_trajectory.times)
