"""Shared fixtures for the test suite.

Fixtures are deliberately small (tens of trajectories, hundreds of points)
so the full suite stays fast; the benchmark harness exercises realistic
scales.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import Trajectory, TrajectoryDatabase, synthetic_database
from repro.workloads import RangeQueryWorkload


def repro_shm_segments() -> list[str]:
    """Names of live ``repro_*`` shared-memory segments (POSIX only)."""
    try:
        return sorted(f for f in os.listdir("/dev/shm") if f.startswith("repro_"))
    except FileNotFoundError:  # non-POSIX or shm-less container
        return []


@pytest.fixture(scope="session", autouse=True)
def no_shm_leaks():
    """Fail the run if any test leaks a ``repro_*`` shared-memory segment.

    Runs once around the whole session: every store/service/executor test
    is expected to unlink its segments on close (including exception
    paths, killed workers, AND replicas the watchdog restarted — a
    restarted worker publishes under a fresh store tag, so both its
    predecessor's orphaned segments and its own must fall to the family
    owner's close sweep).
    """
    before = repro_shm_segments()
    yield
    leaked = [name for name in repro_shm_segments() if name not in before]
    assert not leaked, f"leaked shared-memory segments: {leaked}"


def make_trajectory(n: int = 10, seed: int = 0, traj_id: int = 0) -> Trajectory:
    """A random but valid trajectory of ``n`` points."""
    rng = np.random.default_rng(seed)
    xy = rng.uniform(0.0, 100.0, size=(n, 2))
    t = np.cumsum(rng.uniform(1.0, 5.0, size=n))
    return Trajectory(np.column_stack([xy, t]), traj_id=traj_id)


@pytest.fixture
def straight_line_trajectory() -> Trajectory:
    """Ten collinear, regularly sampled points along y = x."""
    xs = np.arange(10.0)
    points = np.column_stack([xs, xs, xs])
    return Trajectory(points)


@pytest.fixture
def zigzag_trajectory() -> Trajectory:
    """A trajectory with alternating sharp detours (hard to simplify)."""
    n = 20
    xs = np.arange(float(n))
    ys = np.where(np.arange(n) % 2 == 0, 0.0, 10.0)
    return Trajectory(np.column_stack([xs, ys, xs]))


@pytest.fixture
def random_trajectory() -> Trajectory:
    return make_trajectory(n=30, seed=42)


@pytest.fixture
def small_db() -> TrajectoryDatabase:
    """A deterministic 12-trajectory database."""
    return TrajectoryDatabase(
        [make_trajectory(n=10 + 2 * i, seed=i, traj_id=i) for i in range(12)]
    )


@pytest.fixture(scope="session")
def geolife_db() -> TrajectoryDatabase:
    """A session-wide synthetic Geolife-profile database."""
    return synthetic_database("geolife", n_trajectories=25, points_scale=0.04, seed=11)


@pytest.fixture(scope="session")
def chengdu_db() -> TrajectoryDatabase:
    """A session-wide synthetic Chengdu-profile database."""
    return synthetic_database("chengdu", n_trajectories=40, points_scale=0.4, seed=13)


@pytest.fixture
def small_workload(small_db) -> RangeQueryWorkload:
    return RangeQueryWorkload.from_data_distribution(small_db, 15, seed=5)
