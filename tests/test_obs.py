"""The observability layer: histograms, tracing, provenance, wire metrics.

Three contracts anchor this file:

* **Quantile accuracy** — a log-bucketed histogram's p50/p95/p99 must sit
  within one bucket width of the exact order statistic
  (``np.quantile(..., method="inverted_cdf")``), and merging per-shard
  histograms must be order-independent (commutative/associative on the
  integer state).
* **Backward compatibility** — ``ServiceStats.summary()`` replaced its
  mean/max float arithmetic with histogram-backed values; every legacy
  key must stay bit-identical to the running-total computation.
* **End-to-end trace identity** — a trace id minted in
  :class:`~repro.client.RemoteClient` must appear *verbatim* in the
  server-side span export after crossing the socket, the asyncio server,
  the service, and the executor.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.client import LocalClient, RemoteClient, ServiceClient
from repro.data import synthetic_database
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    build_provenance,
    compare_runs,
    latest_run,
    load_runs,
    log_run,
    mint_trace_id,
    validate_run,
)
from repro.service import QueryService, serve_in_thread
from repro.service.service import ServiceStats
from repro.workloads import RangeQueryWorkload


def small_db(n: int = 12, seed: int = 5):
    return synthetic_database(
        "geolife", n_trajectories=n, points_scale=0.05, seed=seed
    )


# ------------------------------------------------------------------ histogram
class TestHistogram:
    def test_bucket_edges(self):
        h = Histogram(min_value=1.0, growth=2.0, n_buckets=4)
        assert h.bucket_index(0.0) == 0
        assert h.bucket_index(1.0) == 0  # <= min_value is underflow
        assert h.bucket_index(1.5) == 1
        assert h.bucket_index(2.0) == 1  # exact upper edge stays in-bucket
        assert h.bucket_index(2.0000001) == 2
        assert h.bucket_index(16.0) == 4
        assert h.bucket_index(1e9) == 5  # overflow
        assert h.upper_edge(0) == 1.0
        assert h.lower_edge(1) == 1.0
        assert h.upper_edge(4) == 16.0

    def test_rejects_bad_values(self):
        h = Histogram()
        for bad in (-1e-9, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                h.record(bad)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_quantiles_within_one_bucket_of_exact(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.lognormal(mean=-6.0, sigma=1.5, size=2000)
        h = Histogram()
        h.record_many(samples)
        for q in (0.5, 0.9, 0.95, 0.99, 1.0):
            exact = float(np.quantile(samples, q, method="inverted_cdf"))
            idx = h.bucket_index(exact)
            width = h.upper_edge(idx) - h.lower_edge(idx)
            assert abs(h.quantile(q) - exact) <= width

    def test_mean_max_track_exact_running_totals(self):
        values = [0.001, 0.5, 0.02, 0.0, 3.7]
        h = Histogram()
        total = 0.0
        for v in values:
            h.record(v)
            total += v
        assert h.sum == total  # bit-identical accumulation order
        assert h.max == 3.7
        assert h.count == len(values)
        assert h.mean == total / len(values)

    def test_merge_commutative_and_associative(self):
        rng = np.random.default_rng(42)
        parts = []
        for _ in range(3):
            h = Histogram()
            h.record_many(rng.lognormal(-5.0, 2.0, size=257))
            parts.append(h)
        a, b, c = parts
        ab, ba = a.merged(b), b.merged(a)
        assert ab == ba  # integer state: exactly commutative
        assert np.isclose(ab.sum, ba.sum, rtol=0, atol=0)  # same two addends
        left = a.merged(b).merged(c)
        right = a.merged(b.merged(c))
        assert left == right
        assert np.isclose(left.sum, right.sum)  # float sum: to rounding

    def test_merge_equals_recording_together(self):
        rng = np.random.default_rng(3)
        all_values = rng.lognormal(-5.0, 1.0, size=300)
        together = Histogram()
        together.record_many(all_values)
        merged = Histogram()
        for chunk in np.array_split(all_values, 7):
            part = Histogram()
            part.record_many(chunk)
            merged.merge(part)
        assert merged == together
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == together.quantile(q)

    def test_merge_rejects_layout_mismatch(self):
        with pytest.raises(ValueError, match="layout"):
            Histogram().merge(Histogram(min_value=1e-3))

    def test_json_round_trip(self):
        h = Histogram()
        h.record_many([1e-7, 0.004, 0.004, 1.25, 500.0])
        back = Histogram.from_json(h.to_json())
        assert back == h
        assert back.sum == h.sum
        assert back.max == h.max
        assert json.dumps(h.to_json())  # JSON-safe

    def test_empty_histogram(self):
        h = Histogram()
        assert h.quantile(0.99) == 0.0
        assert h.mean == 0.0
        assert Histogram.from_json(h.to_json()) == h


# ------------------------------------------------------------------- registry
class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)
        g = Gauge()
        g.set(9)
        g.set(2)
        assert g.value == 2

    def test_snapshot_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("requests").inc(3)
        a.gauge("level").set(1)
        a.histogram("lat").record(0.01)
        b.counter("requests").inc(2)
        b.gauge("level").set(7)
        b.histogram("lat").record(0.02)
        b.histogram("other").record(0.5)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["requests"] == 5
        assert snap["gauges"]["level"] == 7  # latest wins
        assert snap["histograms"]["lat"]["count"] == 2
        assert "other" in snap["histograms"]
        assert json.dumps(snap)  # crosses wire/pipes as-is


# -------------------------------------------------------------------- tracing
class TestTracer:
    def test_none_trace_id_is_dropped(self):
        tracer = Tracer()
        tracer.record(None, "queue", 0.1)
        assert len(tracer) == 0
        assert tracer.recorded == 0

    def test_ring_buffer_capacity(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.record("t", f"span{i}", 0.0)
        assert len(tracer) == 4
        assert tracer.recorded == 10  # lifetime counter survives eviction
        assert [s.name for s in tracer.spans()] == [
            "span6", "span7", "span8", "span9"
        ]

    def test_span_context_manager_and_export(self):
        tracer = Tracer()
        with tracer.span("abc", "work", kind="range") as attrs:
            attrs["extra"] = 1
        tracer.record("other", "noise", 0.0)
        lines = tracer.export_jsonl("abc").splitlines()
        assert len(lines) == 1
        span = json.loads(lines[0])
        assert span["trace"] == "abc"
        assert span["name"] == "work"
        assert span["duration_s"] >= 0.0
        assert span["attrs"] == {"kind": "range", "extra": 1}
        assert len(tracer.export_jsonl().splitlines()) == 2

    def test_mint_trace_id_unique(self):
        ids = {mint_trace_id() for _ in range(64)}
        assert len(ids) == 64


# ----------------------------------------------------------------- provenance
class TestProvenance:
    def test_build_provenance_keys(self):
        prov = build_provenance()
        for key in ("python", "numpy", "platform", "timestamp"):
            assert prov[key]

    def _run(self, seed=7, p50=1.0):
        h = Histogram()
        h.record(p50 / 1000.0)
        return {
            "config": {
                "seed": seed,
                "qps": 50,
                "provenance": build_provenance(),
                "workload_digest": "d" * 64,
            },
            "latency": {
                "p50_ms": p50,
                "p95_ms": p50,
                "p99_ms": p50,
                "histogram": h.to_json(),
            },
            "throughput_qps": 49.0,
            "server_metrics": {"summary": {}},
        }

    def test_log_and_load_runs(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        log_run(path, "bench_x", self._run(seed=1))
        log_run(path, "bench_x", self._run(seed=2))
        runs = load_runs(path)
        assert [r["config"]["seed"] for r in runs] == [1, 2]
        assert latest_run(path)["config"]["seed"] == 2
        with pytest.raises(ValueError):
            log_run(path, "bench_other", self._run())

    def test_validate_run(self):
        assert validate_run(self._run()) == []
        broken = self._run()
        del broken["latency"]["p95_ms"]
        del broken["config"]["workload_digest"]
        problems = validate_run(broken)
        assert any("p95_ms" in p for p in problems)
        assert any("workload_digest" in p for p in problems)

    def test_compare_runs(self):
        base, new = self._run(p50=2.0), self._run(p50=3.0)
        deltas = compare_runs(base, new, ["latency.p50_ms", "missing.key"])
        assert deltas["latency.p50_ms"] == pytest.approx(0.5)
        assert deltas["missing.key"] is None


# --------------------------------------------------- ServiceStats compat layer
class TestServiceStatsCompat:
    def test_summary_mean_max_bit_identical_to_running_totals(self):
        rng = np.random.default_rng(11)
        stats = ServiceStats()
        total = 0.0
        observed = []
        for latency in rng.lognormal(-6.0, 1.0, size=40):
            stats.record("range", cached=False, latency_s=float(latency))
            total += float(latency)
            observed.append(float(latency))
        summary = stats.summary()
        # The legacy keys: computed exactly as the old float fields did.
        assert summary["range_mean_latency_ms"] == 1000.0 * total / 40
        assert summary["range_max_latency_ms"] == 1000.0 * max(observed)
        assert stats.total_latency_s["range"] == total
        assert stats.max_latency_s["range"] == max(observed)
        # The new quantile keys derive from the same histogram.
        hist = stats.latency_histogram("range")
        for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            assert summary[f"range_{key}_latency_ms"] == pytest.approx(
                1000.0 * hist.quantile(q)
            )

    def test_compaction_latency_compat(self):
        stats = ServiceStats()
        stats.record_compaction(
            {"points_dropped": 10, "bytes_before": 200, "bytes_after": 100,
             "elapsed_s": 0.25}
        )
        stats.record_compaction(
            {"points_dropped": 5, "bytes_before": 100, "bytes_after": 80,
             "elapsed_s": 0.05}
        )
        assert stats.compaction_latency_s == pytest.approx(0.30)
        assert stats.max_compaction_latency_s == 0.25
        summary = stats.summary()
        assert summary["compaction_mean_latency_ms"] == pytest.approx(150.0)
        assert "compaction_p95_latency_ms" in summary
        assert "compaction" in stats.histograms()


# ----------------------------------------------------------- service-level obs
class TestServiceMetricsReport:
    def test_report_summary_bit_consistent_with_stats(self):
        db = small_db()
        workload = RangeQueryWorkload.from_data_distribution(db, 5, seed=1)
        service = QueryService(db, n_shards=2)
        try:
            with ServiceClient(service) as client:
                client.range(workload)
                client.range(workload)  # cache hit
                client.histogram(8)
            report = service.metrics_report()
            assert report["summary"] == service.stats.summary()
            assert report["summary"]["requests"] == 3
            assert report["summary"]["range_cache_hits"] == 1
            assert set(report["histograms"]) == {"range", "histogram"}
            # Per-shard registries merged service-side: every shard timed
            # its own share of the two uncached ops.
            shard_hists = report["shards"]["histograms"]
            assert shard_hists["op.range"]["count"] == 2  # 1 miss x 2 shards
            assert shard_hists["op.histogram"]["count"] == 2
            assert json.dumps(report)  # the wire `metrics` op ships this
        finally:
            service.close()

    def test_process_executor_ships_shard_histograms_and_transport(self):
        db = small_db(8, seed=9)
        workload = RangeQueryWorkload.from_data_distribution(db, 4, seed=2)
        service = QueryService(db, n_shards=2, executor="process")
        try:
            with ServiceClient(service) as client:
                client.range(workload)
            report = service.metrics_report()
            # Histograms recorded inside worker processes came back over
            # the pipes and merged into one service-wide view.
            assert report["shards"]["histograms"]["op.range"]["count"] == 2
            transport = report["transport"]
            assert transport["n_workers"] == 2
            assert transport["messages_sent"] >= 2
            assert transport["pipe_bytes_sent"] > 0
            assert transport["pipe_bytes_received"] > 0
        finally:
            service.close()

    def test_local_client_metrics_shape(self):
        db = small_db(8)
        with LocalClient(db) as client:
            client.histogram(8)
            report = client.metrics()
        assert report["summary"]["requests"] == 1
        assert "histogram" in report["histograms"]
        assert report["n_shards"] == 1


class TestServiceTracing:
    def test_dispatch_spans_cover_the_request_lifecycle(self):
        db = small_db()
        workload = RangeQueryWorkload.from_data_distribution(db, 4, seed=3)
        service = QueryService(db, n_shards=2)
        try:
            trace = mint_trace_id()
            service.execute(workload_request(workload), trace_id=trace)
            names = [s.name for s in service.tracer.spans(trace)]
            assert names.count("shard_exec") == 2  # one per shard
            for expected in ("cache_lookup", "merge", "request"):
                assert expected in names
            # A cached replay touches only the cache, never the shards.
            trace2 = mint_trace_id()
            service.execute(workload_request(workload), trace_id=trace2)
            names2 = [s.name for s in service.tracer.spans(trace2)]
            assert names2 == ["cache_lookup", "request"]
            exported = service.trace_export(trace)
            assert all(json.loads(l)["trace"] == trace
                       for l in exported.splitlines())
        finally:
            service.close()

    def test_untraced_requests_record_nothing(self):
        db = small_db()
        workload = RangeQueryWorkload.from_data_distribution(db, 3, seed=4)
        service = QueryService(db, n_shards=2)
        try:
            service.execute(workload_request(workload))
            assert len(service.tracer) == 0
        finally:
            service.close()


def workload_request(workload):
    from repro.service.requests import RangeRequest

    return RangeRequest.from_workload(workload)


# ------------------------------------------------------------ over the socket
class TestRemoteTracing:
    def test_client_trace_id_appears_verbatim_in_server_spans(self):
        db = small_db(10, seed=21)
        workload = RangeQueryWorkload.from_data_distribution(db, 4, seed=1)
        handle = serve_in_thread(QueryService(db, n_shards=2), close_service=True)
        try:
            with RemoteClient(handle.host, handle.port) as client:
                client.range(workload)
                trace = client.last_trace_id
            assert trace  # the client minted one per request
            exported = handle.service.trace_export(trace)
            spans = [json.loads(line) for line in exported.splitlines()]
            assert spans, "trace id never reached the server's span buffer"
            assert {s["trace"] for s in spans} == {trace}
            names = {s["name"] for s in spans}
            # The socket path adds the queue span to the service lifecycle.
            assert {"queue", "cache_lookup", "request"} <= names
        finally:
            handle.stop()

    def test_remote_metrics_op_bit_consistent_with_server_stats(self):
        db = small_db(10, seed=22)
        workload = RangeQueryWorkload.from_data_distribution(db, 4, seed=2)
        handle = serve_in_thread(QueryService(db, n_shards=2), close_service=True)
        try:
            with RemoteClient(handle.host, handle.port) as client:
                client.range(workload)
                client.range(workload)
                report = client.metrics()
            # JSON round-trips floats exactly: the wire report must equal
            # the in-process summary bit for bit.
            assert report["summary"] == handle.service.stats.summary()
            assert report["summary"]["range_cache_hits"] == 1
        finally:
            handle.stop()

    def test_explicit_trace_id_is_forwarded_not_replaced(self):
        db = small_db(8, seed=23)
        workload = RangeQueryWorkload.from_data_distribution(db, 3, seed=3)
        handle = serve_in_thread(QueryService(db, n_shards=2), close_service=True)
        try:
            with RemoteClient(handle.host, handle.port) as client:
                response = client.execute(
                    workload_request(workload), trace_id="caller-chosen-id"
                )
                assert client.last_trace_id == "caller-chosen-id"
            assert response.trace_id == "caller-chosen-id"
            assert handle.service.trace_export("caller-chosen-id")
        finally:
            handle.stop()


# ------------------------------------------------------- clock-source hygiene
class TestClockHygiene:
    LATENCY_MODULES = (
        "service/service.py",
        "service/server.py",
        "service/runtime.py",
        "service/executors.py",
        "service/requests.py",
    )

    def test_no_wall_clock_latency_measurement(self):
        # All latency deltas come from time.perf_counter(); time.time() is
        # reserved for wall-clock *stamps* (tracing.py, provenance.py).
        import repro

        root = __import__("pathlib").Path(repro.__file__).parent
        for rel in self.LATENCY_MODULES:
            source = (root / rel).read_text()
            assert "time.time(" not in source, (
                f"{rel} measures with the wall clock; use time.perf_counter()"
            )

    def test_latencies_survive_wall_clock_regression(self, monkeypatch):
        # A backwards-stepping wall clock (NTP correction) must never
        # produce a negative latency anywhere in the serving path.
        import time as time_module

        going_back = iter(range(10**9, 0, -3600))
        monkeypatch.setattr(time_module, "time", lambda: float(next(going_back)))
        db = small_db(8, seed=31)
        workload = RangeQueryWorkload.from_data_distribution(db, 3, seed=1)
        with LocalClient(db) as client:
            response = client.range(workload)
            assert response.latency_s >= 0.0
            hist = client.stats.latency_histogram("range")
            assert hist.count == 1
            assert hist.sum >= 0.0
            for span in client.tracer.spans():
                assert span.duration_s >= 0.0
