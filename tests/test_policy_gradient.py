"""Tests for the REINFORCE learner and the Double-DQN target variant."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import RL4QDTS, RL4QDTSConfig
from repro.rl import (
    DQNAgent,
    DQNConfig,
    REINFORCEAgent,
    REINFORCEConfig,
    Transition,
    masked_softmax,
)


class TestMaskedSoftmax:
    def test_sums_to_one_over_valid(self):
        logits = np.array([1.0, 2.0, 3.0, 4.0])
        mask = np.array([True, False, True, True])
        probs = masked_softmax(logits, mask)
        assert probs[1] == 0.0
        assert probs.sum() == pytest.approx(1.0)

    def test_single_valid_action_gets_all_mass(self):
        probs = masked_softmax(np.zeros(5), np.eye(5, dtype=bool)[2])
        assert probs[2] == pytest.approx(1.0)

    def test_batch_shape(self):
        logits = np.zeros((4, 3))
        mask = np.ones((4, 3), dtype=bool)
        probs = masked_softmax(logits, mask)
        assert probs.shape == (4, 3)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_extreme_logits_stable(self):
        probs = masked_softmax(
            np.array([1e5, -1e5, 0.0]), np.ones(3, dtype=bool)
        )
        assert np.isfinite(probs).all()
        assert probs[0] == pytest.approx(1.0)

    @given(
        logits=arrays(
            float, 6, elements=st.floats(-50, 50, allow_nan=False)
        ),
        mask_bits=st.integers(1, 63),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_valid_distribution(self, logits, mask_bits):
        mask = np.array([(mask_bits >> i) & 1 == 1 for i in range(6)])
        probs = masked_softmax(logits, mask)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs[~mask] == 0.0).all()
        assert (probs >= 0.0).all()


def _make_bandit_transitions(agent, rng, n=64, good_action=1, n_actions=3):
    """Contextual-free bandit: action `good_action` always pays 1, others 0."""
    out = []
    for _ in range(n):
        state = rng.normal(size=agent.state_dim)
        action = agent.act(state, np.ones(n_actions, dtype=bool))
        reward = 1.0 if action == good_action else 0.0
        out.append(
            Transition(
                state, action, reward, state,
                np.ones(n_actions, dtype=bool), True,
                np.ones(n_actions, dtype=bool),
            )
        )
    return out


class TestREINFORCEAgent:
    def test_act_respects_mask(self):
        agent = REINFORCEAgent(4, 3, seed=0)
        mask = np.array([False, True, False])
        for _ in range(20):
            assert agent.act(np.zeros(4), mask) == 1

    def test_act_raises_on_empty_mask(self):
        agent = REINFORCEAgent(4, 3, seed=0)
        with pytest.raises(ValueError):
            agent.act(np.zeros(4), np.zeros(3, dtype=bool))

    def test_greedy_act_deterministic(self):
        agent = REINFORCEAgent(4, 3, seed=0)
        state = np.arange(4.0)
        actions = {agent.act(state, greedy=True) for _ in range(10)}
        assert len(actions) == 1

    def test_learn_defers_below_min_batch(self):
        agent = REINFORCEAgent(4, 3, REINFORCEConfig(min_batch=8), seed=0)
        agent.remember(
            Transition(np.zeros(4), 0, 1.0, np.zeros(4), np.ones(3, bool), True)
        )
        assert agent.learn() is None

    def test_learns_a_bandit(self):
        """The policy should concentrate on the rewarded action."""
        rng = np.random.default_rng(1)
        agent = REINFORCEAgent(
            4, 3, REINFORCEConfig(lr=0.05, entropy_weight=0.0), seed=1
        )
        for _ in range(60):
            for tr in _make_bandit_transitions(agent, rng, n=16):
                agent.remember(tr)
            agent.learn()
        picks = [
            agent.act(rng.normal(size=4), greedy=True) for _ in range(20)
        ]
        assert np.mean([p == 1 for p in picks]) >= 0.9

    def test_accepts_dqn_config(self):
        agent = REINFORCEAgent(4, 3, DQNConfig(hidden=10, lr=0.005), seed=0)
        assert agent.config.hidden == 10
        assert agent.config.lr == 0.005

    def test_parameters_roundtrip(self):
        a = REINFORCEAgent(4, 3, seed=0)
        b = REINFORCEAgent(4, 3, seed=99)
        b.set_parameters(a.get_parameters())
        state = np.arange(4.0)
        assert np.allclose(
            a.policy_net.predict(state), b.policy_net.predict(state)
        )

    def test_transitions_without_mask_default_to_full(self):
        agent = REINFORCEAgent(2, 2, REINFORCEConfig(min_batch=4), seed=0)
        for i in range(4):
            agent.remember(
                Transition(
                    np.zeros(2), i % 2, 1.0, np.zeros(2), np.ones(2, bool), True
                )
            )
        assert agent.learn() is not None

    def test_decay_epsilon_is_noop(self):
        agent = REINFORCEAgent(4, 3, seed=0)
        agent.decay_epsilon()
        assert agent.epsilon == 0.0


class TestDoubleDQN:
    def test_flag_changes_learning_but_stays_finite(self):
        rng = np.random.default_rng(0)

        def run(double):
            agent = DQNAgent(
                4, 3,
                DQNConfig(batch_size=8, learn_start=8, double_dqn=double),
                seed=0,
            )
            for tr in _make_bandit_transitions(agent, rng, n=32):
                agent.remember(tr)
            losses = [agent.learn() for _ in range(20)]
            return [loss for loss in losses if loss is not None]

        losses_single = run(False)
        losses_double = run(True)
        assert losses_single and losses_double
        assert all(np.isfinite(losses_single))
        assert all(np.isfinite(losses_double))

    def test_double_dqn_solves_bandit(self):
        rng = np.random.default_rng(3)
        agent = DQNAgent(
            4, 3,
            DQNConfig(batch_size=16, learn_start=16, double_dqn=True,
                      epsilon_decay=0.9),
            seed=3,
        )
        for _ in range(40):
            for tr in _make_bandit_transitions(agent, rng, n=8):
                agent.remember(tr)
            agent.learn()
            agent.decay_epsilon()
        picks = [
            agent.act(rng.normal(size=4), greedy=True) for _ in range(20)
        ]
        assert np.mean([p == 1 for p in picks]) >= 0.9


class TestRL4QDTSWithREINFORCE:
    @pytest.fixture(scope="class")
    def tiny_config(self):
        return RL4QDTSConfig(
            learner="reinforce",
            start_level=2,
            end_level=4,
            delta=10,
            n_training_queries=10,
            n_inference_queries=20,
            episodes=1,
            n_train_databases=1,
            train_db_size=8,
        )

    def test_end_to_end(self, small_db, tiny_config):
        model = RL4QDTS.train(small_db, config=tiny_config)
        simplified = model.simplify(small_db, budget_ratio=0.5)
        assert simplified.total_points <= small_db.budget_for_ratio(0.5)

    def test_save_load_roundtrip(self, small_db, tiny_config, tmp_path):
        model = RL4QDTS.train(small_db, config=tiny_config)
        path = tmp_path / "reinforce.npz"
        model.save(path)
        loaded = RL4QDTS.load(path)
        assert isinstance(loaded.cube_agent, REINFORCEAgent)
        a = model.simplify(small_db, budget_ratio=0.5, seed=7)
        b = loaded.simplify(small_db, budget_ratio=0.5, seed=7)
        assert a.total_points == b.total_points

    def test_config_rejects_unknown_learner(self):
        with pytest.raises(ValueError):
            RL4QDTSConfig(learner="ppo")
