"""Closed-box boundary semantics and out-of-extent query regressions.

Boxes are closed on every face: a point exactly on ``xmax`` / ``ymax`` /
``tmax`` is inside. These tests pin that convention consistently across
:meth:`BoundingBox.contains_points`, :func:`range_query` (naive, grid, and
engine paths), :class:`GridIndex` candidate pruning, and
:func:`density_histogram` binning — and, for every pluggable index backend,
that candidate sets stay supersets of the exact answer on boundary boxes
and the engine's final results never depend on the backend.
"""

import numpy as np
import pytest

from repro.data import BoundingBox, Trajectory, TrajectoryDatabase
from repro.index import BACKENDS, GridIndex
from repro.queries import QueryEngine, RangeQuery, density_histogram, range_query
from repro.workloads import RangeQueryWorkload


@pytest.fixture
def edge_db() -> TrajectoryDatabase:
    """Two trajectories; trajectory 1 ends exactly at the extent's max corner."""
    inner = Trajectory(
        np.array([[1.0, 1.0, 0.0], [2.0, 2.0, 1.0], [3.0, 3.0, 2.0]]), traj_id=0
    )
    edge = Trajectory(
        np.array([[5.0, 5.0, 5.0], [10.0, 10.0, 10.0]]), traj_id=1
    )
    return TrajectoryDatabase([inner, edge])


#: A box whose max faces pass exactly through the extent corner (10, 10, 10).
CORNER_BOX = BoundingBox(9.5, 10.0, 9.5, 10.0, 9.5, 10.0)


class TestClosedBoxBoundaries:
    def test_contains_points_includes_max_faces(self):
        box = BoundingBox(0.0, 1.0, 0.0, 1.0, 0.0, 1.0)
        on_faces = np.array(
            [[1.0, 0.5, 0.5], [0.5, 1.0, 0.5], [0.5, 0.5, 1.0], [1.0, 1.0, 1.0]]
        )
        beyond = np.array([[1.0 + 1e-9, 0.5, 0.5]])
        assert box.contains_points(on_faces).all()
        assert not box.contains_points(beyond).any()

    def test_range_query_includes_boundary_point_on_all_paths(self, edge_db):
        query = RangeQuery(CORNER_BOX)
        grid = GridIndex(edge_db)
        naive = range_query(edge_db, query)
        with_grid = range_query(edge_db, query, grid)
        engine = QueryEngine(edge_db).evaluate([query])[0]
        assert naive == with_grid == engine == {1}

    def test_grid_candidates_include_boundary_point(self, edge_db):
        grid = GridIndex(edge_db)
        assert 1 in grid.candidate_trajectories(CORNER_BOX)

    def test_density_histogram_counts_max_edge_points(self, edge_db):
        hist = density_histogram(edge_db, grid=4)
        # Every point is binned — including (10, 10), exactly on xmax/ymax,
        # which lands in the last cell instead of falling off the raster.
        assert hist.sum() == edge_db.total_points
        assert hist[-1, -1] >= 1


class TestOutOfExtentQueries:
    def test_grid_disjoint_box_has_no_candidates(self):
        """Regression: clipped corners used to snap onto border cells.

        A box fully disjoint from unit-cube data — e.g. (10..11)^3 — returned
        the border-cell occupants (typically ``{0}``) instead of nothing.
        """
        rng = np.random.default_rng(0)
        trajs = [
            Trajectory(
                np.column_stack(
                    [rng.random(6), rng.random(6), np.sort(rng.random(6))]
                ),
                traj_id=i,
            )
            for i in range(4)
        ]
        db = TrajectoryDatabase(trajs)
        grid = GridIndex(db)
        far = BoundingBox(10.0, 11.0, 10.0, 11.0, 10.0, 11.0)
        assert grid.candidate_trajectories(far) == set()
        assert range_query(db, RangeQuery(far), grid) == set()

    def test_partially_overlapping_box_still_prunes_correctly(self, edge_db):
        # Sticking out beyond the extent on every max face must not lose the
        # boundary trajectory.
        box = BoundingBox(9.5, 20.0, 9.5, 20.0, 9.5, 20.0)
        grid = GridIndex(edge_db)
        assert range_query(edge_db, RangeQuery(box), grid) == {1}

    def test_engine_matches_naive_for_straddling_workload(self, edge_db):
        box = edge_db.bounding_box
        centres = np.array(
            [
                [box.xmax, box.ymax, box.tmax],  # straddles the max corner
                [box.xmax + 100.0, box.ymax + 100.0, box.tmax + 100.0],  # far out
                [box.xmin, box.ymin, box.tmin],  # straddles the min corner
            ]
        )
        workload = RangeQueryWorkload.from_centres(
            centres, spatial_extent=2.0, temporal_extent=2.0
        )
        engine_results = QueryEngine(edge_db).evaluate(workload)
        naive = [range_query(edge_db, q) for q in workload]
        assert engine_results == naive
        assert engine_results[1] == set()


def random_db(seed: int, n_traj: int = 6) -> TrajectoryDatabase:
    rng = np.random.default_rng(seed)
    trajs = []
    for i in range(n_traj):
        n = int(rng.integers(2, 12))
        xy = rng.uniform(0.0, 50.0, size=(n, 2))
        t = np.sort(rng.uniform(0.0, 20.0, size=n)) + np.arange(n) * 1e-3
        trajs.append(Trajectory(np.column_stack([xy, t]), traj_id=i))
    return TrajectoryDatabase(trajs)


def tricky_boxes(db: TrajectoryDatabase, seed: int) -> list[BoundingBox]:
    """Random boxes plus the adversarial shapes of this module: boxes whose
    faces pass exactly through data points, extent-corner straddlers,
    fully disjoint boxes, and zero-extent point probes."""
    rng = np.random.default_rng(seed)
    ext = db.bounding_box
    boxes = []
    for _ in range(6):
        lo = rng.uniform([ext.xmin, ext.ymin, ext.tmin], [ext.xmax, ext.ymax, ext.tmax])
        hi = lo + rng.uniform(0.0, 15.0, size=3)
        boxes.append(BoundingBox(lo[0], hi[0], lo[1], hi[1], lo[2], hi[2]))
    p = db[0].points[-1]  # max faces exactly on a data point
    boxes.append(BoundingBox(p[0] - 1.0, p[0], p[1] - 1.0, p[1], p[2] - 1.0, p[2]))
    boxes.append(BoundingBox(p[0], p[0], p[1], p[1], p[2], p[2]))  # zero-extent hit
    boxes.append(  # straddles the extent's max corner
        BoundingBox(ext.xmax - 1.0, ext.xmax + 5.0, ext.ymax - 1.0,
                    ext.ymax + 5.0, ext.tmax - 1.0, ext.tmax + 5.0)
    )
    boxes.append(  # fully disjoint from the extent
        BoundingBox(ext.xmax + 10.0, ext.xmax + 20.0, ext.ymax + 10.0,
                    ext.ymax + 20.0, ext.tmax + 10.0, ext.tmax + 20.0)
    )
    return boxes


class TestCrossIndexCandidateCompleteness:
    """Every backend's candidates form a superset of the exact answer, and
    the engine's verified results are identical across all five backends."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_candidates_superset_of_exact_answer(self, seed, name):
        db = random_db(seed)
        boxes = tricky_boxes(db, seed + 100)
        backend = BACKENDS[name](db)
        lo = np.array([[b.xmin, b.ymin, b.tmin] for b in boxes])
        hi = np.array([[b.xmax, b.ymax, b.tmax] for b in boxes])
        candidate_lists = backend.candidate_ids(lo, hi)
        for box, cand in zip(boxes, candidate_lists):
            exact = range_query(db, RangeQuery(box))
            assert exact <= set(int(t) for t in cand), (name, box)
            # sorted unique int64 ids — the protocol's output contract
            assert cand.dtype == np.int64
            assert np.all(np.diff(cand) > 0)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_engine_results_identical_across_backends(self, seed):
        db = random_db(seed)
        boxes = tricky_boxes(db, seed + 200)
        naive = [range_query(db, RangeQuery(b)) for b in boxes]
        counts = None
        for name in sorted(BACKENDS):
            engine = QueryEngine(db, backend=BACKENDS[name](db))
            assert engine.evaluate(boxes) == naive, name
            c = engine.count(boxes)
            if counts is None:
                counts = c
            else:
                assert np.array_equal(c, counts), name


class TestDegenerateKnnQuery:
    def test_degenerate_query_window_returns_empty(self, small_db):
        from repro.queries import knn_query

        query = small_db[0]
        # A window strictly before the query's first sample leaves < 2 points.
        t0 = float(query.times[0])
        result = knn_query(
            small_db, query, k=3, time_window=(t0 - 100.0, t0 - 50.0)
        )
        assert result == []

    def test_healthy_window_still_ranks(self, small_db):
        from repro.queries import knn_query

        result = knn_query(small_db, small_db[0], k=3, eps=10.0)
        assert len(result) == 3
