"""Tests for the extension quality metrics (Jaccard, Kendall tau, ARI)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries import (
    adjusted_rand_index,
    f1_score,
    jaccard,
    kendall_tau,
)


class TestJaccard:
    def test_identical(self):
        assert jaccard({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_disjoint(self):
        assert jaccard({1, 2}, {3, 4}) == 0.0

    def test_partial(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_one_empty(self):
        assert jaccard({1}, set()) == 0.0

    @given(
        a=st.sets(st.integers(0, 30), max_size=15),
        b=st.sets(st.integers(0, 30), max_size=15),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_bounds_and_f1_relation(self, a, b):
        j = jaccard(a, b)
        assert 0.0 <= j <= 1.0
        # F1 = 2J / (1 + J), so F1 and Jaccard are monotone-equivalent.
        assert f1_score(a, b) == pytest.approx(2 * j / (1 + j))

    def test_symmetry(self):
        assert jaccard({1, 2}, {2, 3}) == jaccard({2, 3}, {1, 2})


class TestKendallTau:
    def test_identical_rankings(self):
        assert kendall_tau([1, 2, 3, 4], [1, 2, 3, 4]) == 1.0

    def test_reversed_rankings(self):
        assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == -1.0

    def test_one_swap(self):
        # 1 discordant of 6 pairs: (6-2*1)/6.
        assert kendall_tau([1, 2, 3, 4], [2, 1, 3, 4]) == pytest.approx(4 / 6)

    def test_partial_overlap_ignores_missing(self):
        tau = kendall_tau([1, 2, 3, 99], [1, 2, 3, 42])
        assert tau == 1.0

    def test_too_small_overlap_scores_zero(self):
        assert kendall_tau([1, 2], [3, 4]) == 0.0
        assert kendall_tau([1, 2], [1, 5]) == 0.0

    @given(perm_seed=st.integers(0, 1000), n=st.integers(2, 12))
    @settings(max_examples=40, deadline=None)
    def test_property_bounds_and_antisymmetry(self, perm_seed, n):
        rng = np.random.default_rng(perm_seed)
        truth = list(range(n))
        pred = list(rng.permutation(n))
        tau = kendall_tau(truth, pred)
        assert -1.0 <= tau <= 1.0
        assert kendall_tau(truth, pred[::-1]) == pytest.approx(-tau)


class TestAdjustedRandIndex:
    def test_identical_partitions(self):
        clusters = [[1, 2, 3], [4, 5], [6]]
        assert adjusted_rand_index(clusters, clusters) == 1.0

    def test_label_permutation_invariant(self):
        a = [[1, 2], [3, 4]]
        b = [[3, 4], [1, 2]]
        assert adjusted_rand_index(a, b) == 1.0

    def test_total_disagreement_is_low(self):
        a = [[1, 2], [3, 4]]
        b = [[1, 3], [2, 4]]
        assert adjusted_rand_index(a, b) < 0.01

    def test_near_zero_for_random_partitions(self):
        rng = np.random.default_rng(0)
        values = []
        for _ in range(30):
            labels_a = rng.integers(0, 3, size=60)
            labels_b = rng.integers(0, 3, size=60)
            a = [list(np.flatnonzero(labels_a == k)) for k in range(3)]
            b = [list(np.flatnonzero(labels_b == k)) for k in range(3)]
            values.append(adjusted_rand_index(a, b))
        assert abs(float(np.mean(values))) < 0.05

    def test_ignores_items_missing_from_one_side(self):
        a = [[1, 2, 3]]
        b = [[1, 2], [99]]
        # Shared items {1, 2} are co-clustered in both.
        assert adjusted_rand_index(a, b) == 1.0

    def test_degenerate_overlap(self):
        assert adjusted_rand_index([[1]], [[1]]) == 1.0
        assert adjusted_rand_index([[1]], [[2]]) == 1.0  # no shared pairs

    def test_single_cluster_everywhere(self):
        a = [[1, 2, 3, 4]]
        assert adjusted_rand_index(a, a) == 1.0

    @given(seed=st.integers(0, 500), n=st.integers(4, 20))
    @settings(max_examples=30, deadline=None)
    def test_property_self_similarity(self, seed, n):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 4, size=n)
        clusters = [
            list(np.flatnonzero(labels == k))
            for k in range(4)
            if (labels == k).any()
        ]
        assert adjusted_rand_index(clusters, clusters) == pytest.approx(1.0)
