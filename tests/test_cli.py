"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.data import load_database


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.npz"
    code = main(
        [
            "generate",
            "--profile", "chengdu",
            "-n", "10",
            "--points-scale", "0.2",
            "--seed", "3",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_creates_loadable_database(self, db_file):
        db = load_database(db_file)
        assert len(db) == 10

    def test_csv_output(self, tmp_path):
        path = tmp_path / "db.csv"
        assert main(["generate", "-n", "3", "--out", str(path)]) == 0
        assert len(load_database(path)) == 3


class TestStats:
    def test_prints_statistics(self, db_file, capsys):
        assert main(["stats", "--db", str(db_file)]) == 0
        out = capsys.readouterr().out
        assert "# of trajectories" in out
        assert "10" in out


class TestBaselines:
    def test_lists_25(self, capsys):
        assert main(["baselines"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 25
        assert "Span-Search" in lines


class TestSimplify:
    def test_baseline_method(self, db_file, tmp_path):
        out = tmp_path / "small.npz"
        code = main(
            [
                "simplify",
                "--db", str(db_file),
                "--ratio", "0.3",
                "--method", "Bottom-Up(E,SED)",
                "--out", str(out),
            ]
        )
        assert code == 0
        original = load_database(db_file)
        simplified = load_database(out)
        assert simplified.total_points < original.total_points

    def test_unknown_method_raises(self, db_file, tmp_path):
        with pytest.raises(KeyError):
            main(
                [
                    "simplify",
                    "--db", str(db_file),
                    "--ratio", "0.3",
                    "--method", "Middle-Out",
                    "--out", str(tmp_path / "x.npz"),
                ]
            )


class TestServe:
    def test_help_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--shards" in out and "--executor" in out

    def test_serves_request_file_with_ingest(self, db_file, tmp_path, capsys):
        # a second database streamed in mid-session
        extra = tmp_path / "extra.npz"
        main(["generate", "-n", "4", "--seed", "9", "--out", str(extra)])
        workload = tmp_path / "w.json"
        main(
            [
                "workload", "--db", str(db_file), "-n", "5",
                "--seed", "2", "--out", str(workload),
            ]
        )
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "\n".join(
                [
                    json.dumps({"op": "range", "workload": str(workload)}),
                    json.dumps({"op": "count", "workload": str(workload)}),
                    json.dumps({"op": "histogram", "grid": 8}),
                    json.dumps({"op": "knn", "ids": [0, 1], "k": 2}),
                    json.dumps({"op": "ingest", "db": str(extra)}),
                    json.dumps({"op": "range", "workload": str(workload)}),
                ]
            )
        )
        capsys.readouterr()
        code = main(
            [
                "serve", "--db", str(db_file), "--shards", "2",
                "--requests", str(requests), "--stats",
            ]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        responses = [json.loads(x) for x in lines if x.startswith("{")]
        assert [r["op"] for r in responses] == [
            "range", "count", "histogram", "knn", "ingest", "range",
        ]
        assert responses[4]["added"] == 4
        assert responses[5]["epoch"] == 1
        assert "requests" in "".join(lines)  # stats block printed

    def test_bad_request_line_keeps_serving(self, db_file, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "\n".join(
                [
                    json.dumps({"op": "histogram", "grid": 4}),
                    json.dumps({"op": "knn", "ids": [9999], "k": 2}),  # bad id
                    json.dumps({"op": "histogram", "grid": 4}),
                ]
            )
        )
        code = main(
            ["serve", "--db", str(db_file), "--requests", str(requests)]
        )
        assert code == 1  # failures are reported in the exit code...
        lines = [
            json.loads(x)
            for x in capsys.readouterr().out.strip().splitlines()
            if x.startswith("{")
        ]
        # ...but every request got a response line, good ones included
        assert len(lines) == 3
        assert "error" in lines[1] and "9999" in lines[1]["error"]
        assert lines[0]["op"] == "histogram" and lines[2]["op"] == "histogram"
        assert lines[2]["cached"]  # the service kept serving (and caching)

    def test_responses_out_file(self, db_file, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(json.dumps({"op": "histogram", "grid": 4}))
        out = tmp_path / "responses.jsonl"
        code = main(
            [
                "serve", "--db", str(db_file),
                "--requests", str(requests), "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text().strip())
        assert payload["total"] == load_database(db_file).total_points


class TestQuery:
    def test_range_query_matches_engine(self, db_file, tmp_path, capsys):
        workload_path = tmp_path / "w.json"
        main(
            [
                "workload", "--db", str(db_file), "-n", "6",
                "--seed", "4", "--out", str(workload_path),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "query", "--db", str(db_file), "--shards", "3",
                "--type", "range", "--workload", str(workload_path),
            ]
        )
        assert code == 0
        response = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        from repro.queries import QueryEngine
        from repro.workloads import RangeQueryWorkload

        db = load_database(db_file)
        expected = QueryEngine(db).evaluate(
            RangeQueryWorkload.load(workload_path)
        )
        assert [set(ids) for ids in response["results"]] == expected

    def test_knn_and_similarity_types(self, db_file, capsys):
        assert (
            main(
                [
                    "query", "--db", str(db_file), "--type", "knn",
                    "--ids", "0", "--k", "2", "--eps", "50",
                ]
            )
            == 0
        )
        knn_out = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert "neighbors" in knn_out
        assert (
            main(
                [
                    "query", "--db", str(db_file), "--type", "similarity",
                    "--ids", "0", "--delta", "10.0",
                ]
            )
            == 0
        )
        sim_out = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert "results" in sim_out

    @pytest.mark.parametrize("index", ["grid", "octree", "kdtree", "rtree", "auto"])
    def test_index_backend_round_trip(self, db_file, tmp_path, capsys, index):
        """--index changes only pruning cost: every backend answers alike."""
        workload_path = tmp_path / "w.json"
        main(
            [
                "workload", "--db", str(db_file), "-n", "6",
                "--seed", "4", "--out", str(workload_path),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "query", "--db", str(db_file), "--shards", "3",
                "--type", "range", "--workload", str(workload_path),
                "--index", index,
            ]
        )
        assert code == 0
        response = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        from repro.queries import QueryEngine
        from repro.workloads import RangeQueryWorkload

        db = load_database(db_file)
        expected = QueryEngine(db).evaluate(RangeQueryWorkload.load(workload_path))
        assert [set(ids) for ids in response["results"]] == expected

    def test_serve_accepts_index_backend(self, db_file, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            json.dumps({"op": "knn", "ids": [0], "k": 2, "eps": 50.0})
        )
        code = main(
            [
                "serve", "--db", str(db_file), "--index", "kdtree",
                "--requests", str(requests), "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kdtree index" in out
        assert "knn_shards_dispatched" in out

    def test_unknown_index_backend_exits(self, db_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "query", "--db", str(db_file), "--type", "histogram",
                    "--index", "btree",
                ]
            )

    def test_missing_required_params_exit(self, db_file):
        with pytest.raises(SystemExit):
            main(["query", "--db", str(db_file), "--type", "range"])
        with pytest.raises(SystemExit):
            main(["query", "--db", str(db_file), "--type", "similarity",
                  "--ids", "0"])


class TestEvaluate:
    def test_scores_tasks(self, db_file, tmp_path, capsys):
        out = tmp_path / "small.npz"
        main(
            [
                "simplify",
                "--db", str(db_file),
                "--ratio", "0.5",
                "--method", "Top-Down(E,SED)",
                "--out", str(out),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "evaluate",
                "--original", str(db_file),
                "--simplified", str(out),
                "--n-queries", "10",
                "--tasks", "range", "similarity",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "range" in text and "similarity" in text
        assert "F1" in text


class TestQueryErrors:
    def test_bad_id_yields_json_error_and_exit_1(self, db_file, capsys):
        code = main(
            ["query", "--db", str(db_file), "--type", "knn", "--ids", "9999"]
        )
        assert code == 1
        out = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        assert "error" in out and "9999" in out["error"]
