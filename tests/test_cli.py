"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data import load_database


@pytest.fixture
def db_file(tmp_path):
    path = tmp_path / "db.npz"
    code = main(
        [
            "generate",
            "--profile", "chengdu",
            "-n", "10",
            "--points-scale", "0.2",
            "--seed", "3",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_creates_loadable_database(self, db_file):
        db = load_database(db_file)
        assert len(db) == 10

    def test_csv_output(self, tmp_path):
        path = tmp_path / "db.csv"
        assert main(["generate", "-n", "3", "--out", str(path)]) == 0
        assert len(load_database(path)) == 3


class TestStats:
    def test_prints_statistics(self, db_file, capsys):
        assert main(["stats", "--db", str(db_file)]) == 0
        out = capsys.readouterr().out
        assert "# of trajectories" in out
        assert "10" in out


class TestBaselines:
    def test_lists_25(self, capsys):
        assert main(["baselines"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 25
        assert "Span-Search" in lines


class TestSimplify:
    def test_baseline_method(self, db_file, tmp_path):
        out = tmp_path / "small.npz"
        code = main(
            [
                "simplify",
                "--db", str(db_file),
                "--ratio", "0.3",
                "--method", "Bottom-Up(E,SED)",
                "--out", str(out),
            ]
        )
        assert code == 0
        original = load_database(db_file)
        simplified = load_database(out)
        assert simplified.total_points < original.total_points

    def test_unknown_method_raises(self, db_file, tmp_path):
        with pytest.raises(KeyError):
            main(
                [
                    "simplify",
                    "--db", str(db_file),
                    "--ratio", "0.3",
                    "--method", "Middle-Out",
                    "--out", str(tmp_path / "x.npz"),
                ]
            )


class TestEvaluate:
    def test_scores_tasks(self, db_file, tmp_path, capsys):
        out = tmp_path / "small.npz"
        main(
            [
                "simplify",
                "--db", str(db_file),
                "--ratio", "0.5",
                "--method", "Top-Down(E,SED)",
                "--out", str(out),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "evaluate",
                "--original", str(db_file),
                "--simplified", str(out),
                "--n-queries", "10",
                "--tasks", "range", "similarity",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "range" in text and "similarity" in text
        assert "F1" in text
