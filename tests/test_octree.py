"""Unit tests for the spatio-temporal octree and grid index."""

import numpy as np
import pytest

from repro.index import GridIndex, Octree


class TestOctreeBuild:
    def test_root_is_level_one(self, small_db):
        tree = Octree(small_db)
        assert tree.root.level == 1

    def test_invalid_params_rejected(self, small_db):
        with pytest.raises(ValueError):
            Octree(small_db, max_depth=0)
        with pytest.raises(ValueError):
            Octree(small_db, leaf_capacity=0)

    def test_all_points_indexed_once(self, small_db):
        tree = Octree(small_db, max_depth=6, leaf_capacity=4)
        entries = tree.collect_points(tree.root)
        assert len(entries) == small_db.total_points
        assert len(set(entries)) == small_db.total_points

    def test_point_counts_consistent(self, small_db):
        tree = Octree(small_db, max_depth=6, leaf_capacity=4)
        for node in tree.iter_nodes():
            assert node.n_points == len(tree.collect_points(node))
            if node.children is not None:
                child_sum = sum(
                    c.n_points for c in node.children if c is not None
                )
                assert child_sum == node.n_points

    def test_trajectory_counts(self, small_db):
        tree = Octree(small_db, max_depth=6, leaf_capacity=4)
        for node in tree.iter_nodes():
            owners = {tid for tid, _ in tree.collect_points(node)}
            assert node.n_trajectories == len(owners)

    def test_max_depth_respected(self, small_db):
        tree = Octree(small_db, max_depth=3, leaf_capacity=1)
        assert tree.depth() <= 3

    def test_leaf_capacity_respected(self, small_db):
        tree = Octree(small_db, max_depth=12, leaf_capacity=8)
        for node in tree.iter_nodes():
            if node.is_leaf and node.level < 12:
                assert node.n_points <= 8

    def test_points_inside_node_boxes(self, small_db):
        tree = Octree(small_db, max_depth=5, leaf_capacity=4)
        for node in tree.iter_nodes():
            if node.is_leaf:
                for tid, idx in node.entries:
                    x, y, t = small_db[tid].points[idx]
                    assert node.box.contains_point(x, y, t)


class TestLevels:
    def test_nodes_at_level_tile_all_points(self, small_db):
        tree = Octree(small_db, max_depth=6, leaf_capacity=4)
        for level in (2, 3, 4):
            nodes = tree.nodes_at_level(level)
            total = sum(n.n_points for n in nodes)
            assert total == small_db.total_points

    def test_nodes_at_level_memoized(self, small_db):
        tree = Octree(small_db)
        assert tree.nodes_at_level(3) is tree.nodes_at_level(3)

    def test_child_accessors(self, small_db):
        tree = Octree(small_db, max_depth=4, leaf_capacity=4)
        root = tree.root
        assert set(root.nonempty_children()) == {
            k for k in range(8) if root.child(k) is not None
        }


class TestQueryAnnotation:
    def test_annotate_counts_intersections(self, small_db, small_workload):
        tree = Octree(small_db, max_depth=5, leaf_capacity=4)
        tree.annotate_queries(small_workload.boxes)
        assert tree.root.n_queries == len(small_workload)
        for node in tree.iter_nodes():
            expected = sum(
                1 for b in small_workload.boxes if node.box.intersects(b)
            )
            assert node.n_queries == expected

    def test_reannotation_resets(self, small_db, small_workload):
        tree = Octree(small_db, max_depth=5)
        tree.annotate_queries(small_workload.boxes)
        tree.annotate_queries([])
        assert all(n.n_queries == 0 for n in tree.iter_nodes())

    def test_child_fractions_shape_and_range(self, small_db, small_workload):
        tree = Octree(small_db, max_depth=5, leaf_capacity=4)
        tree.annotate_queries(small_workload.boxes)
        state = tree.child_fractions(tree.root)
        assert state.shape == (16,)
        assert (state >= 0.0).all()
        # Query fractions can exceed... no: each child's count <= parent's.
        assert (state <= 1.0 + 1e-12).all()

    def test_child_fractions_leaf_zero(self, small_db):
        tree = Octree(small_db, max_depth=2, leaf_capacity=10**9)
        assert np.allclose(tree.child_fractions(tree.root), 0.0)


class TestStartSampling:
    def test_sampling_prefers_query_mass(self, small_db, small_workload):
        tree = Octree(small_db, max_depth=5, leaf_capacity=4)
        tree.annotate_queries(small_workload.boxes)
        rng = np.random.default_rng(0)
        nodes = [tree.sample_node_at_level(3, rng) for _ in range(100)]
        assert all(n.n_points > 0 for n in nodes)

    def test_sampling_without_annotation_falls_back_to_points(self, small_db):
        tree = Octree(small_db, max_depth=5, leaf_capacity=4)
        rng = np.random.default_rng(0)
        node = tree.sample_node_at_level(3, rng, by="queries")
        assert node.n_points > 0

    def test_sampling_by_points(self, small_db):
        tree = Octree(small_db, max_depth=5, leaf_capacity=4)
        rng = np.random.default_rng(0)
        node = tree.sample_node_at_level(2, rng, by="points")
        assert node.level <= 2

    def test_unknown_weighting_rejected(self, small_db):
        tree = Octree(small_db)
        with pytest.raises(ValueError):
            tree.sample_node_at_level(2, np.random.default_rng(0), by="area")

    def test_level_beyond_depth_clamped(self, small_db):
        tree = Octree(small_db, max_depth=3, leaf_capacity=2)
        node = tree.sample_node_at_level(99, np.random.default_rng(0))
        assert node.level <= 3


class TestGridIndex:
    def test_bad_resolution_rejected(self, small_db):
        with pytest.raises(ValueError):
            GridIndex(small_db, resolution=(0, 4, 4))

    def test_candidates_superset_of_exact(self, small_db, small_workload):
        grid = GridIndex(small_db, resolution=(8, 8, 8))
        from repro.queries import range_query

        for query in small_workload:
            exact = range_query(small_db, query)
            candidates = grid.candidate_trajectories(query.box)
            assert exact <= candidates

    def test_grid_accelerated_query_equals_exact(self, small_db, small_workload):
        from repro.queries import range_query

        grid = GridIndex(small_db, resolution=(8, 8, 8))
        for query in small_workload:
            assert range_query(small_db, query, grid) == range_query(
                small_db, query
            )

    def test_cells_clip_out_of_range(self, small_db):
        grid = GridIndex(small_db, resolution=(4, 4, 4))
        far = np.array([[1e12, 1e12, 1e12]])
        assert (grid.cells_of(far) == 3).all()

    def test_len_counts_occupied_cells(self, small_db):
        grid = GridIndex(small_db, resolution=(4, 4, 4))
        assert len(grid) == len(grid.occupied_cells()) > 0
