"""The open-loop load harness: determinism, provenance, stored quantiles.

The harness's whole value is replayability: the same ``--seed`` must
offer the byte-identical request schedule (proved by the sha256 digest
stored with every run), and every appended run must carry enough
provenance that a latency regression can be attributed. The end-to-end
test actually drives a subprocess ``repro serve --listen`` server twice
and checks both appended records, including that the stored p50/p95/p99
are exactly the quantiles derivable from the stored histogram buckets.
"""

from __future__ import annotations

import argparse
import json

import numpy as np
import pytest

from benchmarks import bench_load
from repro.data import synthetic_database
from repro.obs.metrics import Histogram
from repro.obs.provenance import load_runs, validate_run


def harness_args(**overrides) -> argparse.Namespace:
    base = dict(
        qps=40.0, seed=7, requests=20, clients=2, ingest_ratio=0.1,
        zipf_a=1.5, trajectories=16, shards=2, partitioner="hash",
        executor="serial", index="grid", store="heap",
    )
    base.update(overrides)
    return argparse.Namespace(**base)


def small_db(args):
    return synthetic_database(
        "geolife",
        n_trajectories=args.trajectories,
        points_scale=0.08,
        seed=args.seed,
    )


class TestSchedule:
    def test_same_seed_same_schedule_and_digest(self):
        args = harness_args()
        db = small_db(args)
        s1, p1, d1 = bench_load.build_schedule(db, args)
        s2, p2, d2 = bench_load.build_schedule(db, args)
        assert s1 == s2
        assert p1 == p2
        assert d1 == d2

    def test_different_seed_different_digest(self):
        a1 = harness_args(seed=7)
        a2 = harness_args(seed=8)
        _, _, d1 = bench_load.build_schedule(small_db(a1), a1)
        _, _, d2 = bench_load.build_schedule(small_db(a2), a2)
        assert d1 != d2

    def test_schedule_shape(self):
        args = harness_args(requests=60, ingest_ratio=0.2)
        schedule, pools, digest = bench_load.build_schedule(small_db(args), args)
        assert len(schedule) == 60
        assert len(digest) == 64
        ops = {entry["op"] for entry in schedule}
        assert "ingest" in ops  # 20% of 60 slots: overwhelmingly likely
        assert ops <= {"range", "count", "histogram", "knn",
                       "similarity", "ingest"}
        assert json.dumps({"pools": pools, "schedule": schedule})  # JSON-safe

    def test_zero_ingest_ratio_schedules_no_ingest(self):
        args = harness_args(requests=40, ingest_ratio=0.0)
        schedule, _, _ = bench_load.build_schedule(small_db(args), args)
        assert all(entry["op"] != "ingest" for entry in schedule)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def two_runs(self, tmp_path_factory):
        """Drive the live-server harness twice into one provenance log."""
        out = tmp_path_factory.mktemp("bench") / "BENCH_load.json"
        argv = [
            "--qps", "40", "--seed", "7", "--requests", "12",
            "--trajectories", "16", "--clients", "2",
            "--ingest-ratio", "0.1", "--out", str(out),
        ]
        assert bench_load.main(argv) == 0
        assert bench_load.main(argv) == 0
        return out

    def test_two_runs_appended_with_identical_digest(self, two_runs):
        runs = load_runs(two_runs)
        assert len(runs) == 2
        digests = [r["config"]["workload_digest"] for r in runs]
        assert digests[0] == digests[1]  # identical workload sequence
        for run in runs:
            assert validate_run(run) == []
            assert run["completed"] == 12
            assert run["errors"] == []
            assert run["throughput_qps"] > 0
            assert run["config"]["provenance"]["python"]

    def test_stored_quantiles_derive_from_stored_buckets(self, two_runs):
        for run in load_runs(two_runs):
            hist = Histogram.from_json(run["latency"]["histogram"])
            assert hist.count == run["completed"]
            for q, key in ((0.5, "p50_ms"), (0.95, "p95_ms"), (0.99, "p99_ms")):
                assert run["latency"][key] == pytest.approx(
                    1000.0 * hist.quantile(q), rel=1e-12
                )

    def test_server_metrics_recorded_with_run(self, two_runs):
        run = load_runs(two_runs)[-1]
        summary = run["server_metrics"]["summary"]
        assert summary["requests"] > 0
        assert "histograms" in run["server_metrics"]
        # Per-kind client-side histograms cover every op that completed.
        per_kind_total = sum(
            h["count"] for h in run["latency"]["per_kind"].values()
        )
        assert per_kind_total == run["completed"]

    def test_validate_mode_accepts_the_log(self, two_runs, capsys):
        assert bench_load.validate_file(two_runs) == 0
        broken = json.loads(two_runs.read_text())
        broken["runs"][0]["latency"]["p50_ms"] += 1.0
        bad = two_runs.parent / "broken.json"
        bad.write_text(json.dumps(broken))
        assert bench_load.validate_file(bad) == 1
