"""The open-loop load harness: determinism, provenance, stored quantiles.

The harness's whole value is replayability: the same ``--seed`` must
offer the byte-identical request schedule (proved by the sha256 digest
stored with every run), and every appended run must carry enough
provenance that a latency regression can be attributed. The end-to-end
test actually drives a subprocess ``repro serve --listen`` server twice
and checks both appended records, including that the stored p50/p95/p99
are exactly the quantiles derivable from the stored histogram buckets.
"""

from __future__ import annotations

import argparse
import json

import numpy as np
import pytest

from benchmarks import bench_load
from repro.data import synthetic_database
from repro.obs.metrics import Histogram
from repro.obs.provenance import load_runs, validate_run


def harness_args(**overrides) -> argparse.Namespace:
    base = dict(
        qps=40.0, seed=7, requests=20, clients=2, ingest_ratio=0.1,
        zipf_a=1.5, trajectories=16, shards=2, partitioner="hash",
        executor="serial", index="grid", store="heap", workers=None,
        server_max_inflight=None,
        rate_profile="constant", rate_amplitude=0.6, rate_period=None,
    )
    base.update(overrides)
    return argparse.Namespace(**base)


def small_db(args):
    return synthetic_database(
        "geolife",
        n_trajectories=args.trajectories,
        points_scale=0.08,
        seed=args.seed,
    )


class TestSchedule:
    def test_same_seed_same_schedule_and_digest(self):
        args = harness_args()
        db = small_db(args)
        s1, p1, d1 = bench_load.build_schedule(db, args)
        s2, p2, d2 = bench_load.build_schedule(db, args)
        assert s1 == s2
        assert p1 == p2
        assert d1 == d2

    def test_different_seed_different_digest(self):
        a1 = harness_args(seed=7)
        a2 = harness_args(seed=8)
        _, _, d1 = bench_load.build_schedule(small_db(a1), a1)
        _, _, d2 = bench_load.build_schedule(small_db(a2), a2)
        assert d1 != d2

    def test_schedule_shape(self):
        args = harness_args(requests=60, ingest_ratio=0.2)
        schedule, pools, digest = bench_load.build_schedule(small_db(args), args)
        assert len(schedule) == 60
        assert len(digest) == 64
        ops = {entry["op"] for entry in schedule}
        assert "ingest" in ops  # 20% of 60 slots: overwhelmingly likely
        assert ops <= {"range", "count", "histogram", "knn",
                       "similarity", "ingest"}
        assert json.dumps({"pools": pools, "schedule": schedule})  # JSON-safe

    def test_zero_ingest_ratio_schedules_no_ingest(self):
        args = harness_args(requests=40, ingest_ratio=0.0)
        schedule, _, _ = bench_load.build_schedule(small_db(args), args)
        assert all(entry["op"] != "ingest" for entry in schedule)


class TestRateProfile:
    def test_constant_offsets_are_the_qps_grid(self):
        args = harness_args(qps=40.0, requests=8)
        offsets = bench_load.arrival_offsets(args, 8)
        assert offsets == [i / 40.0 for i in range(8)]

    def test_diurnal_offsets_deterministic_and_increasing(self):
        args = harness_args(rate_profile="diurnal", requests=50)
        o1 = bench_load.arrival_offsets(args, 50)
        o2 = bench_load.arrival_offsets(args, 50)
        assert o1 == o2
        assert all(b > a for a, b in zip(o1, o1[1:]))

    def test_diurnal_actually_modulates_the_gaps(self):
        args = harness_args(rate_profile="diurnal", rate_amplitude=0.6,
                            qps=40.0, requests=60)
        gaps = np.diff(bench_load.arrival_offsets(args, 60))
        # Peak rate ~ qps*(1+A), trough ~ qps*(1-A): the gap spread must
        # reflect that, not collapse to the constant 1/qps grid.
        assert gaps.min() < 1.0 / (40.0 * 1.3)
        assert gaps.max() > 1.0 / (40.0 * 0.7)

    def test_extreme_amplitude_is_clamped(self):
        args = harness_args(rate_profile="diurnal", rate_amplitude=5.0,
                            requests=40)
        offsets = bench_load.arrival_offsets(args, 40)
        assert all(b > a for a, b in zip(offsets, offsets[1:]))
        assert np.isfinite(offsets).all()

    def test_rate_profile_enters_the_digest(self):
        constant = harness_args()
        diurnal = harness_args(rate_profile="diurnal")
        db = small_db(constant)
        s1, _, d1 = bench_load.build_schedule(db, constant)
        s2, _, d2 = bench_load.build_schedule(db, diurnal)
        assert s1 == s2      # the slot sequence itself is rate-agnostic...
        assert d1 != d2      # ...but the digest covers the arrival process

    def test_unknown_profile_raises(self):
        args = harness_args(rate_profile="square-wave")
        with pytest.raises(ValueError, match="square-wave"):
            bench_load.arrival_offsets(args, 4)


def _fake_run(mode="open-loop", throughput=100.0, scaling=3.0, **config):
    base = {
        "mode": mode, "seed": 7, "qps": 40.0, "requests": 20,
        "clients": 2, "workers": None, "ingest_ratio": 0.1, "zipf_a": 1.5,
        "trajectories": 16, "shards": 2, "partitioner": "hash",
        "executor": "serial", "index": "grid", "store": "heap",
        "max_inflight": None, "rate_profile": "constant", "rate_amplitude": 0.6,
        "rate_period": None, "workload_digest": "d" * 64,
    }
    base.update(config)
    run = {"config": base, "throughput_qps": throughput}
    if mode == "sweep":
        run["sweep"] = {"scaling_vs_single": scaling}
    return run


class TestGate:
    def _log(self, path, *runs):
        for run in runs:
            bench_load.log_run(path, "bench_load", run)
        return path

    def test_gate_passes_on_equal_runs(self, tmp_path):
        base = self._log(tmp_path / "base.json", _fake_run())
        new = self._log(tmp_path / "new.json", _fake_run())
        assert bench_load.gate_files(new, base, 0.30) == 0

    def test_gate_fails_on_throughput_regression(self, tmp_path):
        base = self._log(tmp_path / "base.json", _fake_run(throughput=100.0))
        new = self._log(tmp_path / "new.json", _fake_run(throughput=60.0))
        assert bench_load.gate_files(new, base, 0.30) == 1

    def test_gate_tolerates_drop_within_threshold(self, tmp_path):
        base = self._log(tmp_path / "base.json", _fake_run(throughput=100.0))
        new = self._log(tmp_path / "new.json", _fake_run(throughput=80.0))
        assert bench_load.gate_files(new, base, 0.30) == 0

    def test_sweep_runs_gate_on_scaling_not_qps(self, tmp_path):
        # Absolute qps halves (slower machine) but scaling holds: pass.
        base = self._log(
            tmp_path / "base.json",
            _fake_run(mode="sweep", throughput=1000.0, scaling=3.0),
        )
        new = self._log(
            tmp_path / "new.json",
            _fake_run(mode="sweep", throughput=500.0, scaling=2.9),
        )
        assert bench_load.gate_files(new, base, 0.30) == 0
        # Scaling collapse fails even with identical absolute qps.
        collapsed = self._log(
            tmp_path / "collapsed.json",
            _fake_run(mode="sweep", throughput=1000.0, scaling=1.1),
        )
        assert bench_load.gate_files(collapsed, base, 0.30) == 1

    def test_gate_matches_last_baseline_with_same_profile(self, tmp_path):
        base = self._log(
            tmp_path / "base.json",
            _fake_run(throughput=500.0),     # stale fast run
            _fake_run(throughput=100.0),     # latest baseline wins
            _fake_run(throughput=900.0, seed=8),  # different profile
        )
        new = self._log(tmp_path / "new.json", _fake_run(throughput=90.0))
        assert bench_load.gate_files(new, base, 0.30) == 0

    def test_gate_fails_without_matching_baseline(self, tmp_path):
        base = self._log(tmp_path / "base.json", _fake_run(seed=8))
        new = self._log(tmp_path / "new.json", _fake_run(seed=7))
        assert bench_load.gate_files(new, base, 0.30) == 1

    def test_digest_mismatch_warns_but_compares(self, tmp_path, capsys):
        base = self._log(tmp_path / "base.json", _fake_run())
        new = self._log(
            tmp_path / "new.json", _fake_run(workload_digest="e" * 64)
        )
        assert bench_load.gate_files(new, base, 0.30) == 0
        assert "digest differs" in capsys.readouterr().out


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def two_runs(self, tmp_path_factory):
        """Drive the live-server harness twice into one provenance log."""
        out = tmp_path_factory.mktemp("bench") / "BENCH_load.json"
        argv = [
            "--qps", "40", "--seed", "7", "--requests", "12",
            "--trajectories", "16", "--clients", "2",
            "--ingest-ratio", "0.1", "--out", str(out),
        ]
        assert bench_load.main(argv) == 0
        assert bench_load.main(argv) == 0
        return out

    def test_two_runs_appended_with_identical_digest(self, two_runs):
        runs = load_runs(two_runs)
        assert len(runs) == 2
        digests = [r["config"]["workload_digest"] for r in runs]
        assert digests[0] == digests[1]  # identical workload sequence
        for run in runs:
            assert validate_run(run) == []
            assert run["completed"] == 12
            assert run["errors"] == []
            assert run["throughput_qps"] > 0
            assert run["config"]["provenance"]["python"]

    def test_stored_quantiles_derive_from_stored_buckets(self, two_runs):
        for run in load_runs(two_runs):
            hist = Histogram.from_json(run["latency"]["histogram"])
            assert hist.count == run["completed"]
            for q, key in ((0.5, "p50_ms"), (0.95, "p95_ms"), (0.99, "p99_ms")):
                assert run["latency"][key] == pytest.approx(
                    1000.0 * hist.quantile(q), rel=1e-12
                )

    def test_server_metrics_recorded_with_run(self, two_runs):
        run = load_runs(two_runs)[-1]
        summary = run["server_metrics"]["summary"]
        assert summary["requests"] > 0
        assert "histograms" in run["server_metrics"]
        # Per-kind client-side histograms cover every op that completed.
        per_kind_total = sum(
            h["count"] for h in run["latency"]["per_kind"].values()
        )
        assert per_kind_total == run["completed"]

    def test_validate_mode_accepts_the_log(self, two_runs, capsys):
        assert bench_load.validate_file(two_runs) == 0
        broken = json.loads(two_runs.read_text())
        broken["runs"][0]["latency"]["p50_ms"] += 1.0
        bad = two_runs.parent / "broken.json"
        bad.write_text(json.dumps(broken))
        assert bench_load.validate_file(bad) == 1
