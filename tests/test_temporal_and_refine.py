"""Tests for the temporal interval index and progressive refinement."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import uniform_simplify_database
from repro.core import RL4QDTS, RL4QDTSConfig
from repro.data import Trajectory, TrajectoryDatabase
from repro.index import TemporalIndex
from repro.queries import similarity_query
from tests.conftest import make_trajectory


def staggered_db(n=10, lifespan=10.0, step=5.0):
    """Trajectories with lifespans [i*step, i*step + lifespan]."""
    trajs = []
    for i in range(n):
        t = np.linspace(i * step, i * step + lifespan, 6)
        xy = np.full((6, 2), float(i))
        trajs.append(Trajectory(np.column_stack([xy, t]), traj_id=i))
    return TrajectoryDatabase(trajs)


class TestTemporalIndex:
    def test_overlap_matches_brute_force(self, small_db):
        index = TemporalIndex(small_db)
        rng = np.random.default_rng(0)
        lo, hi = index.span()
        for _ in range(25):
            a, b = sorted(rng.uniform(lo - 5, hi + 5, size=2))
            expected = {
                t.traj_id
                for t in small_db
                if t.times[0] <= b and t.times[-1] >= a
            }
            assert index.overlapping(a, b) == expected

    def test_staggered_windows(self):
        db = staggered_db(n=10, lifespan=10.0, step=5.0)
        index = TemporalIndex(db)
        # Window [12, 13] overlaps lifespans [5,15], [10,20] only... and [0,10]? no: 10 < 12.
        assert index.overlapping(12.0, 13.0) == {1, 2}

    def test_alive_at(self):
        db = staggered_db(n=4, lifespan=10.0, step=5.0)
        index = TemporalIndex(db)
        assert index.alive_at(0.0) == {0}
        assert index.alive_at(7.0) == {0, 1}

    def test_whole_span_returns_everything(self, small_db):
        index = TemporalIndex(small_db)
        assert index.overlapping(*index.span()) == set(range(len(small_db)))

    def test_disjoint_window_returns_nothing(self, small_db):
        index = TemporalIndex(small_db)
        _, hi = index.span()
        assert index.overlapping(hi + 1, hi + 2) == set()

    def test_empty_window_raises(self, small_db):
        with pytest.raises(ValueError):
            TemporalIndex(small_db).overlapping(2.0, 1.0)

    def test_len(self, small_db):
        assert len(TemporalIndex(small_db)) == len(small_db)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_property_equals_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        db = TrajectoryDatabase(
            [make_trajectory(n=8, seed=seed + i, traj_id=i) for i in range(8)]
        )
        index = TemporalIndex(db)
        lo, hi = index.span()
        a, b = sorted(rng.uniform(lo, hi, size=2))
        expected = {
            t.traj_id for t in db if t.times[0] <= b and t.times[-1] >= a
        }
        assert index.overlapping(a, b) == expected

    def test_similarity_query_with_index_identical(self, small_db):
        index = TemporalIndex(small_db)
        query = small_db[0]
        window = (float(query.times[2]), float(query.times[-2]))
        without = similarity_query(small_db, query, delta=80.0, time_window=window)
        with_index = similarity_query(
            small_db, query, delta=80.0, time_window=window,
            temporal_index=index,
        )
        assert without == with_index


class TestProgressiveRefinement:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.data import TrajectoryDatabase
        from tests.conftest import make_trajectory

        db = TrajectoryDatabase(
            [make_trajectory(n=14 + 2 * i, seed=i, traj_id=i) for i in range(10)]
        )
        config = RL4QDTSConfig(
            start_level=2,
            end_level=4,
            delta=10,
            n_training_queries=10,
            n_inference_queries=20,
            episodes=1,
            n_train_databases=1,
            train_db_size=8,
        )
        model = RL4QDTS.train(db, config=config)
        return db, model

    def test_refine_grows_to_budget(self, setup):
        db, model = setup
        coarse = model.simplify(db, budget_ratio=0.3, seed=1)
        refined = model.refine(db, coarse, budget_ratio=0.6, seed=2)
        assert refined.total_points == db.budget_for_ratio(0.6)

    def test_refine_retains_existing_points(self, setup):
        db, model = setup
        coarse = model.simplify(db, budget_ratio=0.3, seed=1)
        refined = model.refine(db, coarse, budget_ratio=0.6, seed=2)
        for orig, small, big in zip(db, coarse, refined):
            small_rows = {tuple(r) for r in small.points}
            big_rows = {tuple(r) for r in big.points}
            assert small_rows <= big_rows
            orig_rows = {tuple(r) for r in orig.points}
            assert big_rows <= orig_rows

    def test_refine_from_foreign_simplifier(self, setup):
        """Refinement works from any subsequence simplification."""
        db, model = setup
        coarse = uniform_simplify_database(db, 0.25)
        refined = model.refine(db, coarse, budget_ratio=0.5, seed=3)
        assert refined.total_points == db.budget_for_ratio(0.5)

    def test_refine_rejects_shrinking_budget(self, setup):
        db, model = setup
        coarse = model.simplify(db, budget_ratio=0.5, seed=1)
        with pytest.raises(ValueError):
            model.refine(db, coarse, budget_ratio=0.2)

    def test_refine_requires_single_budget_argument(self, setup):
        db, model = setup
        coarse = model.simplify(db, budget_ratio=0.3, seed=1)
        with pytest.raises(ValueError):
            model.refine(db, coarse)
        with pytest.raises(ValueError):
            model.refine(db, coarse, budget_ratio=0.5, budget=100)

    def test_refined_at_least_as_accurate(self, setup):
        """More budget on top of the same base cannot hurt range accuracy."""
        from repro.workloads import RangeQueryWorkload
        from repro.queries import f1_score

        db, model = setup
        workload = RangeQueryWorkload.from_data_distribution(db, 20, seed=9)
        coarse = model.simplify(db, budget_ratio=0.3, seed=1)
        refined = model.refine(db, coarse, budget_ratio=0.7, seed=2)
        truths = workload.evaluate(db)

        def score(simplified):
            results = workload.evaluate(simplified)
            return sum(
                f1_score(t, r) for t, r in zip(truths, results)
            ) / len(workload)

        assert score(refined) >= score(coarse) - 0.05


class TestEnvLoadKept:
    def test_load_kept_restores_state(self, small_db):
        from repro.core import QDTSEnvironment
        from repro.workloads import RangeQueryWorkload

        config = RL4QDTSConfig(start_level=2, end_level=4)
        workload = RangeQueryWorkload.from_data_distribution(small_db, 10, seed=0)
        env = QDTSEnvironment(
            small_db, workload, config, np.random.default_rng(0)
        )
        kept = [[0, len(t) // 2, len(t) - 1] for t in small_db]
        env.load_kept(kept)
        assert env.state.total_kept == 3 * len(small_db)
        for tid, lst in enumerate(kept):
            for idx in lst:
                assert env.state.is_kept(tid, idx)

    def test_load_kept_validates_length(self, small_db):
        from repro.core import QDTSEnvironment
        from repro.workloads import RangeQueryWorkload

        config = RL4QDTSConfig(start_level=2, end_level=4)
        workload = RangeQueryWorkload.from_data_distribution(small_db, 5, seed=0)
        env = QDTSEnvironment(
            small_db, workload, config, np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            env.load_kept([[0, 1]])
