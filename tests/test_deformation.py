"""Tests for the mean-SED deformation measure (Figure 7's quantity)."""

import numpy as np
import pytest

from repro.data import Trajectory
from repro.eval import mean_sed_deformation


def test_identity_zero():
    t = Trajectory([[0, 0, 0], [1, 1, 1], [2, 0, 2], [3, 1, 3]])
    assert mean_sed_deformation(t, t) == 0.0


def test_endpoints_only_known_value():
    # Straight in time, detour of 2 at the middle point: SED of the single
    # dropped point is 2; averaged over 3 original points -> 2/3.
    t = Trajectory([[0, 0, 0], [1, 2, 1], [2, 0, 2]])
    simplified = t.subsample([0, 2])
    assert mean_sed_deformation(t, simplified) == pytest.approx(2.0 / 3.0)


def test_mean_not_max():
    # One large and one small detour: the mean is pulled below the max.
    t = Trajectory([[0, 0, 0], [1, 4, 1], [2, 0, 2], [3, 1, 3], [4, 0, 4]])
    simplified = t.subsample([0, 4])
    deformation = mean_sed_deformation(t, simplified)
    assert deformation < 4.0
    assert deformation > 0.0


def test_keeping_more_points_reduces_average():
    rng = np.random.default_rng(0)
    pts = np.column_stack(
        [rng.uniform(0, 10, 20), rng.uniform(0, 10, 20), np.arange(20.0)]
    )
    t = Trajectory(pts)
    coarse = mean_sed_deformation(t, t.subsample([0, 19]))
    fine = mean_sed_deformation(t, t.subsample([0, 5, 10, 15, 19]))
    # Not guaranteed pointwise, but holds overwhelmingly; the fixture is
    # seeded so this is deterministic.
    assert fine <= coarse


def test_non_subsequence_rejected():
    t = Trajectory([[0, 0, 0], [1, 1, 1], [2, 0, 2]])
    other = Trajectory([[0, 0, 0.5], [2, 0, 2.5]])
    with pytest.raises(ValueError):
        mean_sed_deformation(t, other)
