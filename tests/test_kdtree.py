"""Tests for the kd-tree index and the tree-index invariants both trees share."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RL4QDTS, RL4QDTSConfig
from repro.data import Trajectory, TrajectoryDatabase
from repro.index import KDTree, Octree, TREE_INDEXES
from repro.workloads import RangeQueryWorkload
from tests.conftest import make_trajectory


@pytest.fixture(params=["octree", "kdtree"])
def tree(request, small_db):
    return TREE_INDEXES[request.param](small_db, max_depth=6, leaf_capacity=8)


class TestSharedTreeInvariants:
    def test_root_counts(self, tree, small_db):
        assert tree.root.n_points == small_db.total_points
        assert tree.root.n_trajectories == len(small_db)
        assert tree.root.level == 1

    def test_collect_points_is_complete(self, tree, small_db):
        entries = tree.collect_points(tree.root)
        assert len(entries) == small_db.total_points
        assert len(set(entries)) == len(entries)
        for tid, idx in entries:
            assert 0 <= idx < len(small_db[tid])

    def test_children_partition_parent(self, tree):
        for node in tree.iter_nodes():
            if node.is_leaf:
                continue
            child_points = sum(
                c.n_points for c in node.children if c is not None
            )
            assert child_points == node.n_points

    def test_child_boxes_tile_parent(self, tree):
        for node in tree.iter_nodes():
            if node.is_leaf:
                continue
            volume = sum(
                c.box.volume for c in node.children if c is not None
            )
            assert volume <= node.box.volume + 1e-6 * node.box.volume
            for child in node.children:
                if child is not None:
                    assert node.box.contains_box(child.box)

    def test_points_inside_their_node_box(self, tree, small_db):
        for node in tree.iter_nodes():
            if not node.is_leaf:
                continue
            for tid, idx in node.entries:
                x, y, t = small_db[tid].points[idx]
                assert node.box.contains_point(x, y, t)

    def test_level_listing_tiles_data(self, tree, small_db):
        for level in (1, 2, 3, 4):
            total = sum(n.n_points for n in tree.nodes_at_level(level))
            assert total == small_db.total_points

    def test_max_depth_respected(self, tree):
        assert tree.depth() <= tree.max_depth

    def test_annotate_queries_root_counts_all(self, tree, small_db):
        workload = RangeQueryWorkload.from_data_distribution(small_db, 9, seed=3)
        tree.annotate_queries(workload.boxes)
        # Every query centre is a data point, so every box intersects the root.
        assert tree.root.n_queries == 9

    def test_annotate_queries_child_monotone(self, tree, small_db):
        workload = RangeQueryWorkload.from_data_distribution(small_db, 9, seed=3)
        tree.annotate_queries(workload.boxes)
        for node in tree.iter_nodes():
            if node.is_leaf:
                continue
            for child in node.children:
                if child is not None:
                    assert child.n_queries <= node.n_queries

    def test_child_fractions_shape_and_range(self, tree):
        for node in tree.iter_nodes():
            state = tree.child_fractions(node)
            assert state.shape == (16,)
            assert (state >= 0.0).all() and (state <= 1.0).all()

    def test_sample_node_levels(self, tree):
        rng = np.random.default_rng(0)
        for by in ("queries", "points"):
            node = tree.sample_node_at_level(3, rng, by=by)
            assert node.level <= 3

    def test_sample_rejects_unknown_weight(self, tree):
        with pytest.raises(ValueError):
            tree.sample_node_at_level(2, np.random.default_rng(0), by="mass")

    def test_invalid_parameters(self, small_db):
        for cls in TREE_INDEXES.values():
            with pytest.raises(ValueError):
                cls(small_db, max_depth=0)
            with pytest.raises(ValueError):
                cls(small_db, leaf_capacity=0)


class TestKDTreeSpecifics:
    def test_balanced_split_on_skewed_data(self):
        """Median splits keep sibling point masses comparable on skewed data."""
        rng = np.random.default_rng(7)
        # 95% of points in a tiny corner hotspot, 5% spread out.
        hot = rng.normal(0.05, 0.01, size=(950, 2))
        cold = rng.uniform(0.0, 1.0, size=(50, 2))
        xy = np.vstack([hot, cold])
        t = np.arange(1000.0)
        trajs = [
            Trajectory(np.column_stack([xy[i : i + 100], t[i : i + 100]]))
            for i in range(0, 1000, 100)
        ]
        db = TrajectoryDatabase(trajs)
        kd = KDTree(db, max_depth=3, leaf_capacity=8)
        oct_ = Octree(db, max_depth=3, leaf_capacity=8)

        def imbalance(tree):
            node = tree.root
            counts = [c.n_points for c in node.children if c is not None]
            return max(counts) / max(1, min(counts)) if len(counts) > 1 else np.inf

        assert imbalance(kd) <= imbalance(oct_)

    def test_kdtree_boxes_differ_from_octree(self, small_db):
        kd = KDTree(small_db, max_depth=4, leaf_capacity=4)
        oct_ = Octree(small_db, max_depth=4, leaf_capacity=4)
        kd_boxes = {n.box for n in kd.iter_nodes() if n.level == 2}
        oct_boxes = {n.box for n in oct_.iter_nodes() if n.level == 2}
        assert kd_boxes != oct_boxes

    def test_identical_points_terminate(self):
        """Fully duplicated coordinates must not recurse forever."""
        points = np.column_stack(
            [np.full(50, 1.0), np.full(50, 2.0), np.arange(50.0)]
        )
        db = TrajectoryDatabase([Trajectory(points)])
        kd = KDTree(db, max_depth=5, leaf_capacity=4)
        assert kd.depth() <= 5
        assert len(kd.collect_points(kd.root)) == 50

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_property_partition(self, seed):
        db = TrajectoryDatabase(
            [make_trajectory(n=20, seed=seed + i, traj_id=i) for i in range(4)]
        )
        kd = KDTree(db, max_depth=5, leaf_capacity=4)
        entries = kd.collect_points(kd.root)
        assert len(entries) == db.total_points
        assert len(set(entries)) == len(entries)


class TestRL4QDTSWithKDTree:
    def test_end_to_end_simplification(self, small_db):
        config = RL4QDTSConfig(
            index="kdtree",
            start_level=2,
            end_level=4,
            delta=10,
            n_training_queries=10,
            n_inference_queries=20,
            episodes=1,
            n_train_databases=1,
            train_db_size=8,
        )
        model = RL4QDTS.train(small_db, config=config)
        simplified = model.simplify(small_db, budget_ratio=0.5)
        assert simplified.total_points <= small_db.budget_for_ratio(0.5)
        assert len(simplified) == len(small_db)

    def test_config_rejects_unknown_index(self):
        with pytest.raises(ValueError):
            RL4QDTSConfig(index="rtree")
