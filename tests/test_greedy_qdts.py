"""Tests for the non-learning greedy QDTS baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import greedy_qdts, greedy_qdts_ratio
from repro.data import Trajectory, TrajectoryDatabase
from repro.queries import f1_score
from repro.workloads import RangeQueryWorkload
from tests.conftest import make_trajectory


def workload_f1(db, simplified, workload) -> float:
    truths = workload.evaluate(db)
    results = workload.evaluate(simplified)
    return sum(f1_score(t, r) for t, r in zip(truths, results)) / len(workload)


class TestGreedyQDTS:
    def test_budget_respected(self, small_db, small_workload):
        budget = small_db.budget_for_ratio(0.4)
        simplified = greedy_qdts(small_db, budget, small_workload)
        assert simplified.total_points == budget

    def test_rejects_infeasible_budget(self, small_db, small_workload):
        with pytest.raises(ValueError):
            greedy_qdts(small_db, 2 * len(small_db) - 1, small_workload)

    def test_perfect_on_training_workload_with_enough_budget(
        self, small_db, small_workload
    ):
        """Enough budget for coverage ⇒ training queries answer exactly."""
        simplified = greedy_qdts_ratio(small_db, 0.6, small_workload)
        assert workload_f1(small_db, simplified, small_workload) == 1.0

    def test_beats_uniform_on_training_workload(self, small_db, small_workload):
        from repro.baselines import uniform_simplify_database

        ratio = 0.25
        greedy = greedy_qdts_ratio(small_db, ratio, small_workload)
        uniform = uniform_simplify_database(small_db, ratio)
        assert workload_f1(small_db, greedy, small_workload) >= workload_f1(
            small_db, uniform, small_workload
        )

    def test_spends_leftover_budget(self, small_db):
        """A workload that needs few points still honours the full budget."""
        # One tiny query around a single known point.
        centre = small_db[0].points[1]
        workload = RangeQueryWorkload.from_centres(
            centre[None, :], 1.0, 1.0
        )
        budget = small_db.budget_for_ratio(0.5)
        simplified = greedy_qdts(small_db, budget, workload)
        assert simplified.total_points == budget

    def test_prefers_point_covering_more_queries(self):
        """One point inside two query boxes beats two single-box points."""
        # Trajectory passing through (0,0) .. (10,10); queries overlap at (5,5).
        t = np.arange(5.0)
        points = np.column_stack([t * 2.5, t * 2.5, t])
        db = TrajectoryDatabase([Trajectory(points)])
        shared = points[2]  # (5, 5, 2)
        workload = RangeQueryWorkload.from_centres(
            np.stack([shared, shared]), 2.0, 2.0
        )
        simplified = greedy_qdts(db, 3, workload)
        kept_rows = {tuple(r) for r in simplified[0].points}
        assert tuple(shared) in kept_rows

    def test_deterministic_given_rng(self, small_db, small_workload):
        a = greedy_qdts_ratio(
            small_db, 0.3, small_workload, rng=np.random.default_rng(1)
        )
        b = greedy_qdts_ratio(
            small_db, 0.3, small_workload, rng=np.random.default_rng(1)
        )
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.points, tb.points)

    def test_endpoints_always_present(self, small_db, small_workload):
        simplified = greedy_qdts_ratio(small_db, 0.3, small_workload)
        for orig, simp in zip(small_db, simplified):
            assert np.array_equal(simp.points[0], orig.points[0])
            assert np.array_equal(simp.points[-1], orig.points[-1])

    def test_matches_exhaustive_single_insertion(self):
        """With budget for exactly one extra point, greedy picks the point
        whose insertion maximizes workload F1 (verified exhaustively)."""
        db = TrajectoryDatabase(
            [make_trajectory(n=8, seed=s, traj_id=s) for s in range(3)]
        )
        workload = RangeQueryWorkload.from_data_distribution(db, 6, seed=4)
        budget = 2 * len(db) + 1
        greedy = greedy_qdts(db, budget, workload, rng=np.random.default_rng(0))
        greedy_score = workload_f1(db, greedy, workload)

        best = 0.0
        for traj in db:
            for idx in range(1, len(traj) - 1):
                candidate = TrajectoryDatabase(
                    [
                        t.subsample(
                            [0, idx, len(t) - 1]
                            if t.traj_id == traj.traj_id
                            else [0, len(t) - 1]
                        )
                        for t in db
                    ]
                )
                best = max(best, workload_f1(db, candidate, workload))
        assert greedy_score >= best - 1e-9
