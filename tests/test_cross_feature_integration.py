"""Cross-feature integration tests.

Each test chains several subsystems the way a downstream user would —
configurations that no single-module unit test exercises together.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RL4QDTS, RL4QDTSConfig
from repro.data import (
    CodecConfig,
    TrajectoryDatabase,
    decode_database,
    encode_database,
    load_database,
    save_database,
)
from repro.workloads import RangeQueryWorkload
from tests.conftest import make_trajectory

_FAST = dict(
    start_level=2,
    end_level=4,
    delta=10,
    n_training_queries=10,
    n_inference_queries=20,
    episodes=1,
    n_train_databases=1,
    train_db_size=8,
)


@pytest.fixture(scope="module")
def db():
    return TrajectoryDatabase(
        [make_trajectory(n=14 + 2 * i, seed=i, traj_id=i) for i in range(10)]
    )


class TestKDTreeWithREINFORCE:
    def test_both_alternatives_compose(self, db):
        """The future-work index and the alternative learner work together."""
        config = RL4QDTSConfig(index="kdtree", learner="reinforce", **_FAST)
        model = RL4QDTS.train(db, config=config)
        simplified = model.simplify(db, budget_ratio=0.5)
        assert simplified.total_points <= db.budget_for_ratio(0.5)

    def test_save_load_preserves_both_choices(self, db, tmp_path):
        config = RL4QDTSConfig(index="kdtree", learner="reinforce", **_FAST)
        model = RL4QDTS.train(db, config=config)
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = RL4QDTS.load(path)
        assert loaded.config.index == "kdtree"
        assert loaded.config.learner == "reinforce"
        a = model.simplify(db, budget_ratio=0.5, seed=3)
        b = loaded.simplify(db, budget_ratio=0.5, seed=3)
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.points, tb.points)


class TestSimplifyEncodePersistPipeline:
    def test_full_archive_pipeline(self, db, tmp_path):
        """simplify -> codec -> disk -> decode -> GeoJSON, losslessly enough."""
        config = RL4QDTSConfig(**_FAST)
        model = RL4QDTS.train(db, config=config)
        simplified = model.simplify(db, budget_ratio=0.5, seed=1)

        codec = CodecConfig(quantum_xy=1e-4, quantum_t=1e-4)
        blob_path = tmp_path / "archive.bin"
        blob_path.write_bytes(encode_database(simplified, codec))
        decoded = decode_database(blob_path.read_bytes())
        assert decoded.total_points == simplified.total_points

        geo_path = tmp_path / "archive.geojson"
        save_database(decoded, geo_path)
        final = load_database(geo_path)
        for orig, back in zip(simplified, final):
            assert np.abs(orig.points - back.points).max() < 1e-3

    def test_refine_then_reencode_shrinkage(self, db, tmp_path):
        """Refined (larger) archives encode to more bytes, coarser to fewer."""
        config = RL4QDTSConfig(**_FAST)
        model = RL4QDTS.train(db, config=config)
        coarse = model.simplify(db, budget_ratio=0.3, seed=1)
        fine = model.refine(db, coarse, budget_ratio=0.7, seed=2)
        codec = CodecConfig(quantum_xy=0.01, quantum_t=0.01)
        assert len(encode_database(coarse, codec)) < len(
            encode_database(fine, codec)
        )


class TestWorkloadDrivenPipeline:
    def test_persisted_workload_reuse(self, db, tmp_path):
        """A JSON workload drives training annotation and later evaluation."""
        workload = RangeQueryWorkload.from_mixture(
            db, 15, {"data": 0.5, "uniform": 0.5}, seed=2
        )
        path = tmp_path / "wl.json"
        workload.save(path)
        restored = RangeQueryWorkload.load(path)

        config = RL4QDTSConfig(**_FAST)
        model = RL4QDTS.train(db, workload=restored, config=config)
        simplified = model.simplify(
            db, budget_ratio=0.5, workload=restored, seed=1
        )
        truths = restored.evaluate(db)
        results = restored.evaluate(simplified)
        from repro.queries import f1_score

        mean_f1 = sum(
            f1_score(t, r) for t, r in zip(truths, results)
        ) / len(restored)
        assert 0.0 <= mean_f1 <= 1.0

    def test_temporal_index_consistency_on_simplified(self, db):
        """Temporal pruning gives identical kNN results on a simplified DB."""
        from repro.index import TemporalIndex
        from repro.queries import knn_query

        config = RL4QDTSConfig(**_FAST)
        model = RL4QDTS.train(db, config=config)
        simplified = model.simplify(db, budget_ratio=0.5, seed=1)
        index = TemporalIndex(simplified)
        query = db[0]
        window = (float(query.times[1]), float(query.times[-2]))
        plain = knn_query(simplified, query, 3, window, "edr", eps=30.0)
        pruned = knn_query(
            simplified, query, 3, window, "edr", eps=30.0,
            temporal_index=index,
        )
        assert plain == pruned


class TestOracleAgainstCollectiveMethods:
    def test_w_adaptation_never_beats_per_trajectory_optimum_total(self, db):
        """Summed per-trajectory optimal errors lower-bound any W method
        given each trajectory's realized budget."""
        from repro.baselines import optimal_min_error, squish_database
        from repro.errors import trajectory_error

        kept = squish_database(db, db.budget_for_ratio(0.4))
        for traj in db:
            idxs = kept[traj.traj_id]
            realized = trajectory_error(traj, idxs, measure="sed")
            best = optimal_min_error(traj, len(idxs), "sed").error
            assert realized >= best - 1e-9
