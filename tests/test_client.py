"""Tests for the unified client API (:mod:`repro.client`) and wire schema.

Covers the canonical codecs (``to_json``/``from_json`` for every request
and response, decode-time :class:`RequestError` validation), the
:class:`LocalClient` / :class:`ServiceClient` transports (bit-identical,
same cache/epoch semantics), the cache-stat accounting of uncacheable
requests, the epoch-keyed histogram invalidation after extent-growing
ingest, and the once-per-entry-point deprecation shims. The socket
transport has its own suite in ``tests/test_server.py``.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.client import (
    Client,
    IngestResult,
    LocalClient,
    RequestError,
    ServiceClient,
)
from repro.data import Trajectory, TrajectoryDatabase, synthetic_database
from repro.eval.harness import QueryAccuracyEvaluator
from repro.queries import QueryEngine, knn_query_batch
from repro.service import (
    PROTOCOL_VERSION,
    CountRequest,
    HistogramRequest,
    KnnRequest,
    QueryService,
    RangeRequest,
    SimilarityRequest,
    request_from_json,
    request_to_json,
    response_from_json,
    response_to_json,
)
from repro.service._deprecation import reset_fired
from repro.service.requests import box_from_json, trajectory_from_json
from repro.workloads import RangeQueryWorkload
from tests.conftest import make_trajectory


def client_db(n: int = 18, seed: int = 5) -> TrajectoryDatabase:
    return synthetic_database(
        "geolife", n_trajectories=n, points_scale=0.05, seed=seed
    )


def shifted_batch(db, n: int = 4, seed: int = 0, shift=(30.0, -20.0)):
    """Ingestable trajectories derived from (but outside) the database."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        base = db[int(rng.integers(len(db)))].points
        out.append(Trajectory(base + np.array([shift[0], shift[1], 0.0])))
    return out


@pytest.fixture(scope="module")
def cdb():
    return client_db()


@pytest.fixture(scope="module")
def cworkload(cdb):
    return RangeQueryWorkload.from_data_distribution(cdb, 15, seed=3)


def knn_suite(db, n=3, seed=1):
    rng = np.random.default_rng(seed)
    qids = [int(i) for i in rng.choice(len(db), size=n, replace=False)]
    queries = [db[q] for q in qids]
    windows = [QueryAccuracyEvaluator._central_window(q) for q in queries]
    return queries, windows


# --------------------------------------------------------------------- codecs
class TestRequestCodecs:
    def test_range_round_trip(self, cworkload):
        request = RangeRequest.from_workload(cworkload)
        assert request_from_json(request_to_json(request)) == request

    def test_count_round_trip(self, cworkload):
        request = CountRequest.from_workload(cworkload.boxes)
        assert request_from_json(request_to_json(request)) == request

    def test_histogram_round_trip(self, cdb):
        request = HistogramRequest(17, cdb.bounding_box, normalize=True)
        assert request_from_json(request_to_json(request)) == request
        assert request_from_json(HistogramRequest().to_json()) == HistogramRequest()

    def test_knn_round_trip(self, cdb):
        queries, windows = knn_suite(cdb)
        request = KnnRequest(tuple(queries), 3, tuple(windows), "edr", 123.25)
        decoded = request_from_json(request_to_json(request))
        assert decoded == request
        # Point payloads are bit-identical through JSON.
        for mine, theirs in zip(request.queries, decoded.queries):
            assert np.array_equal(mine.points, theirs.points)

    def test_similarity_round_trip(self, cdb):
        queries, windows = knn_suite(cdb)
        request = SimilarityRequest(tuple(queries), 55.5, (None,) * len(queries), 16)
        assert request_from_json(request_to_json(request)) == request

    def test_box_codec_is_bit_exact(self):
        rng = np.random.default_rng(0)
        lo = rng.uniform(-1e7, 1e7, size=3)
        hi = lo + rng.uniform(0.0, 1e3, size=3)
        from repro.data.bbox import BoundingBox
        from repro.service.requests import box_to_json

        box = BoundingBox(lo[0], hi[0], lo[1], hi[1], lo[2], hi[2])
        import json

        assert box_from_json(json.loads(json.dumps(box_to_json(box)))) == box


class TestRequestValidation:
    def test_unknown_kind(self):
        with pytest.raises(RequestError, match="unknown request kind"):
            request_from_json({"v": PROTOCOL_VERSION, "kind": "teleport"})

    def test_version_mismatch(self):
        with pytest.raises(RequestError, match="protocol version"):
            request_from_json({"v": 999, "kind": "range", "boxes": []})
        with pytest.raises(RequestError, match="protocol version"):
            request_from_json({"kind": "range", "boxes": []})

    def test_non_object_request(self):
        with pytest.raises(RequestError, match="JSON object"):
            request_from_json(["range"])

    def test_bad_box_bounds(self):
        req = {
            "v": PROTOCOL_VERSION,
            "kind": "range",
            "boxes": [[5.0, 1.0, 0.0, 1.0, 0.0, 1.0]],  # xmin > xmax
        }
        with pytest.raises(RequestError, match="bad box bounds"):
            request_from_json(req)

    def test_non_numeric_box_entry(self):
        req = {
            "v": PROTOCOL_VERSION,
            "kind": "count",
            "boxes": [[0.0, "ten", 0.0, 1.0, 0.0, 1.0]],
        }
        with pytest.raises(RequestError, match="must be a number"):
            request_from_json(req)

    def test_wrong_box_arity(self):
        with pytest.raises(RequestError, match="6-element"):
            box_from_json([0.0, 1.0, 2.0])

    def test_non_numeric_window(self, cdb):
        queries, _ = knn_suite(cdb, n=1)
        obj = KnnRequest(tuple(queries), 2).to_json()
        obj["time_windows"] = [["soon", "later"]]
        with pytest.raises(RequestError, match="must be a number"):
            request_from_json(obj)

    def test_window_count_mismatch(self, cdb):
        queries, windows = knn_suite(cdb, n=2)
        obj = KnnRequest(tuple(queries), 2, tuple(windows)).to_json()
        obj["time_windows"] = obj["time_windows"][:1]
        with pytest.raises(RequestError, match="entries for"):
            request_from_json(obj)

    def test_bad_k_and_grid_and_delta(self, cdb):
        queries, _ = knn_suite(cdb, n=1)
        obj = KnnRequest(tuple(queries), 2).to_json()
        obj["k"] = 0
        with pytest.raises(RequestError, match="k must be >= 1"):
            request_from_json(obj)
        obj["k"] = 2.5
        with pytest.raises(RequestError, match="k must be an integer"):
            request_from_json(obj)
        with pytest.raises(RequestError, match="grid must be >= 1"):
            request_from_json(
                {"v": PROTOCOL_VERSION, "kind": "histogram", "grid": 0}
            )
        sim = SimilarityRequest(tuple(queries), 5.0).to_json()
        sim["delta"] = -1.0
        with pytest.raises(RequestError, match="delta must be non-negative"):
            request_from_json(sim)

    def test_t2vec_rejected_with_request_error(self, cdb):
        queries, _ = knn_suite(cdb, n=1)
        obj = KnnRequest(tuple(queries), 2).to_json()
        obj["measure"] = "t2vec"
        with pytest.raises(RequestError, match="t2vec"):
            request_from_json(obj)

    def test_callable_measure_not_wire_encodable(self, cdb):
        queries, _ = knn_suite(cdb, n=1)
        request = KnnRequest(tuple(queries), 2, measure=lambda a, b: 0.0)
        with pytest.raises(RequestError, match="wire"):
            request.to_json()

    def test_bad_trajectory_payloads(self):
        with pytest.raises(RequestError, match="points"):
            trajectory_from_json({"id": 1})
        with pytest.raises(RequestError, match=r"\[x, y, t\]"):
            trajectory_from_json({"points": [[0.0, 0.0], [1.0, 1.0]]})
        with pytest.raises(RequestError, match="bad trajectory"):
            trajectory_from_json({"points": [[0.0, 0.0, 1.0], [1.0, 1.0, 0.5]]})

    def test_empty_query_list_rejected(self):
        with pytest.raises(RequestError, match="non-empty"):
            request_from_json(
                {"v": PROTOCOL_VERSION, "kind": "knn", "queries": [], "k": 1}
            )


class TestResponseCodecs:
    @pytest.fixture(scope="class")
    def local(self, cdb):
        return LocalClient(cdb)

    def test_range_and_similarity_round_trip(self, local, cworkload, cdb):
        queries, _ = knn_suite(cdb)
        for response in (
            local.range(cworkload),
            local.similarity(queries, 40.0),
        ):
            decoded = response_from_json(response_to_json(response))
            assert decoded.result_sets == response.result_sets
            assert decoded.epoch == response.epoch
            assert decoded.cached == response.cached
            assert decoded.n_shards == response.n_shards

    def test_count_round_trip_preserves_dtype(self, local, cworkload):
        response = local.count(cworkload.boxes)
        decoded = response_from_json(response_to_json(response))
        assert decoded.counts.dtype == np.int64
        assert np.array_equal(decoded.counts, response.counts)

    def test_histogram_round_trip_is_bit_exact(self, local):
        response = local.histogram(9, normalize=True)
        decoded = response_from_json(response_to_json(response))
        assert decoded.histogram.shape == (9, 9)
        # Exact equality, not allclose: doubles survive JSON verbatim.
        assert np.array_equal(decoded.histogram, response.histogram)

    def test_knn_round_trip_rederives_neighbors(self, local, cdb):
        queries, windows = knn_suite(cdb)
        response = local.knn(queries, 3, windows, eps=200.0)
        decoded = response_from_json(response_to_json(response))
        assert decoded.neighbors == response.neighbors
        assert decoded.pairs == [
            [tuple(p) for p in pairs] for pairs in response.pairs
        ]

    def test_malformed_response_raises(self):
        with pytest.raises(RequestError, match="unknown response kind"):
            response_from_json({"v": PROTOCOL_VERSION, "kind": "nope"})
        with pytest.raises(RequestError, match="malformed"):
            response_from_json({"v": PROTOCOL_VERSION, "kind": "count"})


# ------------------------------------------------------------------- clients
class TestLocalClient:
    def test_matches_engine_on_every_kind(self, cdb, cworkload):
        client = LocalClient(cdb)
        engine = QueryEngine.for_database(cdb)
        queries, windows = knn_suite(cdb)
        assert client.range(cworkload).result_sets == engine.evaluate(cworkload)
        assert np.array_equal(
            client.count(cworkload.boxes).counts, engine.count(cworkload.boxes)
        )
        assert np.array_equal(
            client.histogram(12).histogram, engine.histogram(12)
        )
        assert client.knn(queries, 3, windows, eps=150.0).neighbors == (
            knn_query_batch(cdb, queries, 3, windows, "edr", eps=150.0)
        )
        assert client.similarity(queries, 60.0).result_sets == (
            engine.similarity(queries, 60.0)
        )

    def test_repeat_request_is_cached_and_ingest_invalidates(self, cworkload):
        db = client_db(12, seed=9)
        client = LocalClient(db)
        first = client.range(cworkload)
        again = client.range(cworkload)
        assert not first.cached and again.cached
        assert again.result_sets == first.result_sets

        batch = shifted_batch(db, 3, seed=2)
        result = client.ingest(batch)
        assert result == IngestResult(added=3, epoch=1)
        post = client.range(cworkload)
        assert not post.cached and post.epoch == 1
        fresh = QueryEngine.for_database(db.extended(batch)).evaluate(cworkload)
        assert post.result_sets == fresh

    def test_empty_ingest_keeps_epoch(self, cdb):
        client = LocalClient(cdb)
        assert client.ingest([]) == IngestResult(added=0, epoch=0)

    def test_ingest_rejects_non_trajectories(self, cdb):
        client = LocalClient(cdb)
        with pytest.raises(TypeError, match="Trajectory"):
            client.ingest([np.zeros((3, 3))])

    def test_describe_and_close(self, cdb):
        client = LocalClient(cdb)
        info = client.describe()
        assert info["trajectories"] == len(cdb)
        assert info["n_shards"] == 1 and info["epoch"] == 0
        client.close()
        with pytest.raises(RuntimeError, match="closed"):
            client.range([cdb.bounding_box])

    def test_uncacheable_callable_measure_stats(self, cdb):
        client = LocalClient(cdb)
        queries, windows = knn_suite(cdb, n=2)

        def measure(a, b):
            return abs(len(a) - len(b))

        for _ in range(2):
            response = client.knn(queries, 2, windows, measure=measure)
            assert not response.cached
        assert len(client._cache) == 0
        assert client.stats.requests["knn"] == 2
        assert client.stats.cache_hits.get("knn", 0) == 0
        assert client.stats.uncacheable["knn"] == 2
        assert client.stats.cache_misses("knn") == 0


class TestServiceClientParity:
    @pytest.mark.parametrize("partitioner", ["hash", "spatial"])
    def test_all_kinds_match_local_under_interleaved_ingest(
        self, partitioner, cworkload
    ):
        db = client_db(16, seed=21)
        queries, windows = knn_suite(db)
        local = LocalClient(db)
        service = ServiceClient.for_database(
            db, n_shards=3, partitioner=partitioner
        )
        with local, service:
            for round_no in range(3):
                assert (
                    service.range(cworkload).result_sets
                    == local.range(cworkload).result_sets
                )
                assert np.array_equal(
                    service.count(cworkload.boxes).counts,
                    local.count(cworkload.boxes).counts,
                )
                assert np.array_equal(
                    service.histogram(10).histogram,
                    local.histogram(10).histogram,
                )
                assert (
                    service.knn(queries, 3, windows, eps=180.0).pairs
                    == local.knn(queries, 3, windows, eps=180.0).pairs
                )
                assert (
                    service.similarity(queries, 70.0).result_sets
                    == local.similarity(queries, 70.0).result_sets
                )
                batch = shifted_batch(db, 2, seed=round_no)
                assert service.ingest(batch) == local.ingest(batch)

    def test_execute_accepts_decoded_wire_requests(self, cdb, cworkload):
        """A request that traveled through JSON serves identically."""
        request = RangeRequest.from_workload(cworkload)
        decoded = request_from_json(request_to_json(request))
        with ServiceClient.for_database(cdb, n_shards=2) as client:
            assert (
                client.execute(decoded).result_sets
                == client.execute(request).result_sets
            )

    def test_context_manager_owns_service(self, cdb):
        client = ServiceClient.for_database(cdb, n_shards=2)
        service = client.service
        with client:
            pass
        with pytest.raises(RuntimeError, match="closed"):
            service.execute(HistogramRequest())


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 50), n_shards=st.integers(1, 4))
def test_property_local_service_bit_identical(seed, n_shards):
    db = client_db(10, seed=seed)
    workload = RangeQueryWorkload.from_data_distribution(db, 8, seed=seed)
    queries, windows = knn_suite(db, n=2, seed=seed)
    with LocalClient(db) as local, ServiceClient.for_database(
        db, n_shards=n_shards
    ) as service:
        assert local.range(workload).result_sets == service.range(workload).result_sets
        assert local.knn(queries, 2, windows, eps=250.0).pairs == (
            service.knn(queries, 2, windows, eps=250.0).pairs
        )
        batch = shifted_batch(db, 2, seed=seed)
        local.ingest(batch)
        service.ingest(batch)
        assert local.range(workload).result_sets == service.range(workload).result_sets


# --------------------------------------------------------------- satellites
class TestUncacheableAccounting:
    """Satellite: callable-measure kNN is neither cached nor miscounted."""

    def test_service_never_caches_callable_measures(self, cdb):
        queries, windows = knn_suite(cdb, n=2)

        def measure(a, b):
            return abs(len(a) - len(b))

        with QueryService(cdb, n_shards=2) as service:
            request = KnnRequest(tuple(queries), 2, tuple(windows), measure)
            first = service.execute(request)
            second = service.execute(request)
            assert not first.cached and not second.cached
            assert first.neighbors == second.neighbors
            assert len(service._cache) == 0
            stats = service.stats
            assert stats.requests["knn"] == 2
            assert stats.cache_hits.get("knn", 0) == 0
            # The regression: these are NOT misses — nothing was looked up.
            assert stats.uncacheable["knn"] == 2
            assert stats.cache_misses("knn") == 0
            summary = stats.summary()
            assert summary["uncacheable_requests"] == 2
            assert summary["knn_cache_misses"] == 0

    def test_cacheable_requests_still_count_misses(self, cdb, cworkload):
        with QueryService(cdb, n_shards=2) as service:
            request = RangeRequest.from_workload(cworkload)
            service.execute(request)
            service.execute(request)
            stats = service.stats
            assert stats.cache_misses("range") == 1
            assert stats.cache_hits["range"] == 1
            assert stats.n_uncacheable == 0


class TestHistogramEpochInvalidation:
    """Satellite: box=None histograms re-resolve after extent-growing ingest."""

    def test_default_box_histogram_tracks_live_extent(self):
        db = client_db(10, seed=33)
        with QueryService(db, n_shards=2) as service:
            request = HistogramRequest(grid=8)  # box=None: live extent
            before = service.execute(request)
            assert service.execute(request).cached  # same epoch: cache hit

            # Grow the extent: shifted copies land outside the old box.
            batch = shifted_batch(db, 3, seed=4, shift=(500.0, 400.0))
            service.ingest(batch)
            extended = db.extended(batch)
            assert extended.bounding_box != db.bounding_box

            after = service.execute(request)
            # The cache key carries no bounds, but the epoch moved: the
            # stale raster over the old extent must NOT be served.
            assert not after.cached
            fresh = QueryEngine.for_database(extended).histogram(8)
            assert np.array_equal(after.histogram, fresh)
            assert not np.array_equal(after.histogram, before.histogram)

    def test_local_client_matches_service_after_growth(self):
        db = client_db(10, seed=34)
        batch = shifted_batch(db, 3, seed=5, shift=(450.0, -380.0))
        with LocalClient(db) as local, ServiceClient.for_database(
            db, n_shards=3, partitioner="spatial"
        ) as service:
            local.ingest(batch)
            service.ingest(batch)
            assert np.array_equal(
                local.histogram(8).histogram, service.histogram(8).histogram
            )


class TestDeprecationShims:
    """Satellite: old entry points keep working, warning exactly once."""

    def _count_warnings(self, fn, n_calls: int = 2) -> list:
        reset_fired()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(n_calls):
                fn()
        return [w for w in caught if issubclass(w.category, DeprecationWarning)]

    @pytest.mark.parametrize(
        "helper", ["range", "count", "histogram", "knn", "similarity"]
    )
    def test_service_helpers_warn_once_each(self, helper, cdb, cworkload):
        queries, windows = knn_suite(cdb, n=2)
        with QueryService(cdb, n_shards=2) as service:
            calls = {
                "range": lambda: service.range(cworkload),
                "count": lambda: service.count(cworkload.boxes),
                "histogram": lambda: service.histogram(8),
                "knn": lambda: service.knn(queries, 2, windows),
                "similarity": lambda: service.similarity(queries, 50.0),
            }
            fired = self._count_warnings(calls[helper])
            assert len(fired) == 1
            assert f"QueryService.{helper}()" in str(fired[0].message)

    def test_helpers_still_answer_correctly(self, cdb, cworkload):
        reset_fired()
        with QueryService(cdb, n_shards=2) as service, warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert service.range(cworkload).result_sets == (
                service.execute(RangeRequest.from_workload(cworkload)).result_sets
            )

    def test_harness_service_kwarg_warns_once_and_scores_identically(self):
        db = client_db(12, seed=8)
        evaluator = QueryAccuracyEvaluator(db)
        with QueryService(db, n_shards=2) as service:
            fired = self._count_warnings(
                lambda: evaluator.evaluate(db, ("range",), service=service)
            )
            assert len(fired) == 1
            assert "client=" in str(fired[0].message)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                via_service = evaluator.evaluate(db, ("range",), service=service)
            assert via_service == evaluator.evaluate(db, ("range",))

    def test_harness_rejects_client_and_service_together(self, cdb):
        evaluator = QueryAccuracyEvaluator(cdb)
        with QueryService(cdb, n_shards=2) as service, warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="not both"):
                evaluator.evaluate(
                    cdb, ("range",), service=service, client=LocalClient(cdb)
                )

    def test_harness_accepts_any_client(self):
        db = client_db(12, seed=8)
        evaluator = QueryAccuracyEvaluator(db)
        baseline = evaluator.evaluate(db, ("range", "knn_edr", "similarity"))
        with ServiceClient.for_database(db, n_shards=3) as client:
            assert evaluator.evaluate(
                db, ("range", "knn_edr", "similarity"), client=client
            ) == baseline


def test_client_protocol_is_abstract():
    client = Client()
    for method in (
        lambda: client.execute(HistogramRequest()),
        lambda: client.ingest([]),
        lambda: client.describe(),
        lambda: client.close(),
    ):
        with pytest.raises(NotImplementedError):
            method()


def test_make_trajectory_helper_roundtrip():
    """The conftest helper survives the wire codec (used by server tests)."""
    from repro.service.requests import trajectory_to_json

    trajectory = make_trajectory(n=7, seed=3, traj_id=9)
    decoded = trajectory_from_json(trajectory_to_json(trajectory))
    assert decoded == trajectory
