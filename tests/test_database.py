"""Unit tests for TrajectoryDatabase and SimplificationState."""

import numpy as np
import pytest

from repro.data import SimplificationState, TrajectoryDatabase
from tests.conftest import make_trajectory


class TestDatabase:
    def test_ids_reassigned_to_positions(self):
        db = TrajectoryDatabase(
            [make_trajectory(traj_id=7), make_trajectory(traj_id=7)]
        )
        assert [t.traj_id for t in db] == [0, 1]
        assert db[1] is db.trajectories[1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TrajectoryDatabase([])

    def test_total_points(self, small_db):
        assert small_db.total_points == sum(len(t) for t in small_db)

    def test_bounding_box_covers_everything(self, small_db):
        box = small_db.bounding_box
        for t in small_db:
            assert box.contains_points(t.points).all()

    def test_budget_for_ratio(self, small_db):
        n = small_db.total_points
        assert small_db.budget_for_ratio(1.0) == n
        assert small_db.budget_for_ratio(0.5) == round(0.5 * n)
        # Tiny ratios floor at two endpoints per trajectory.
        assert small_db.budget_for_ratio(1e-9) == 2 * len(small_db)

    def test_budget_rejects_bad_ratio(self, small_db):
        with pytest.raises(ValueError):
            small_db.budget_for_ratio(0.0)
        with pytest.raises(ValueError):
            small_db.budget_for_ratio(1.5)

    def test_all_points_and_ownership_aligned(self, small_db):
        pts = small_db.all_points()
        owners = small_db.point_ownership()
        assert len(pts) == len(owners) == small_db.total_points
        # Spot-check: the rows owned by trajectory 3 are exactly its points.
        assert np.array_equal(pts[owners == 3], small_db[3].points)

    def test_subset_renumbers(self, small_db):
        sub = small_db.subset([2, 5, 7])
        assert len(sub) == 3
        assert [t.traj_id for t in sub] == [0, 1, 2]
        assert np.array_equal(sub[1].points, small_db[5].points)

    def test_sample_deterministic(self, small_db):
        a = small_db.sample(5, np.random.default_rng(0))
        b = small_db.sample(5, np.random.default_rng(0))
        assert [len(t) for t in a] == [len(t) for t in b]

    def test_sample_caps_at_size(self, small_db):
        assert len(small_db.sample(1000, np.random.default_rng(0))) == len(small_db)

    def test_map_simplify(self, small_db):
        simplified = small_db.map_simplify(lambda t: [0, len(t) - 1])
        assert simplified.total_points == 2 * len(small_db)


class TestSimplificationState:
    def test_initial_endpoints_only(self, small_db):
        state = SimplificationState(small_db)
        assert state.total_kept == 2 * len(small_db)
        assert state.kept_indices(0) == [0, len(small_db[0]) - 1]

    def test_start_full(self, small_db):
        state = SimplificationState(small_db, start_full=True)
        assert state.total_kept == small_db.total_points

    def test_insert_and_membership(self, small_db):
        state = SimplificationState(small_db)
        assert not state.is_kept(0, 3)
        state.insert(0, 3)
        assert state.is_kept(0, 3)
        assert state.total_kept == 2 * len(small_db) + 1

    def test_double_insert_rejected(self, small_db):
        state = SimplificationState(small_db)
        state.insert(0, 3)
        with pytest.raises(ValueError):
            state.insert(0, 3)

    def test_insert_out_of_range_rejected(self, small_db):
        state = SimplificationState(small_db)
        with pytest.raises(IndexError):
            state.insert(0, len(small_db[0]) + 5)

    def test_drop(self, small_db):
        state = SimplificationState(small_db, start_full=True)
        state.drop(0, 3)
        assert not state.is_kept(0, 3)
        assert state.total_kept == small_db.total_points - 1

    def test_drop_endpoint_rejected(self, small_db):
        state = SimplificationState(small_db, start_full=True)
        with pytest.raises(ValueError):
            state.drop(0, 0)
        with pytest.raises(ValueError):
            state.drop(0, len(small_db[0]) - 1)

    def test_drop_unkept_rejected(self, small_db):
        state = SimplificationState(small_db)
        with pytest.raises(ValueError):
            state.drop(0, 3)

    def test_anchor_segment_for_dropped_point(self, small_db):
        state = SimplificationState(small_db)
        n = len(small_db[0])
        assert state.anchor_segment(0, n // 2) == (0, n - 1)
        state.insert(0, 4)
        assert state.anchor_segment(0, 2) == (0, 4)
        assert state.anchor_segment(0, 6) == (4, n - 1)

    def test_anchor_segment_for_kept_interior_point(self, small_db):
        state = SimplificationState(small_db)
        n = len(small_db[0])
        state.insert(0, 4)
        # A kept interior point is bracketed by its kept neighbours.
        assert state.anchor_segment(0, 4) == (0, n - 1)

    def test_compression_ratio(self, small_db):
        state = SimplificationState(small_db)
        expected = 2 * len(small_db) / small_db.total_points
        assert state.compression_ratio() == pytest.approx(expected)

    def test_materialize_contains_kept_points(self, small_db):
        state = SimplificationState(small_db)
        state.insert(0, 5)
        simp = state.materialize()
        assert len(simp[0]) == 3
        assert np.array_equal(simp[0].points[1], small_db[0].points[5])

    def test_copy_is_independent(self, small_db):
        state = SimplificationState(small_db)
        clone = state.copy()
        state.insert(0, 5)
        assert not clone.is_kept(0, 5)
        assert clone.total_kept == state.total_kept - 1
