"""Tests for dataset statistics (Table I machinery) and the spatial scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DATASET_PROFILES,
    Trajectory,
    TrajectoryDatabase,
    dataset_statistics,
    synthetic_database,
)
from repro.data.stats import spatial_scale
from tests.conftest import make_trajectory


class TestDatasetStatistics:
    def test_counts_are_exact(self, small_db):
        stats = dataset_statistics(small_db)
        assert stats.n_trajectories == len(small_db)
        assert stats.total_points == small_db.total_points
        assert stats.avg_points_per_trajectory == pytest.approx(
            small_db.total_points / len(small_db)
        )

    def test_sampling_interval_bounds(self, small_db):
        stats = dataset_statistics(small_db)
        assert 0 < stats.min_sampling_interval <= stats.mean_sampling_interval
        assert stats.mean_sampling_interval <= stats.max_sampling_interval

    def test_mean_segment_length_matches_manual(self):
        # Unit steps along x: every segment has length exactly 1.
        t = np.arange(10.0)
        db = TrajectoryDatabase(
            [Trajectory(np.column_stack([t, 0 * t, t]))]
        )
        stats = dataset_statistics(db)
        assert stats.mean_segment_length == pytest.approx(1.0)
        assert stats.mean_sampling_interval == pytest.approx(1.0)

    def test_as_row_keys_match_table1(self, small_db):
        row = dataset_statistics(small_db).as_row()
        assert set(row) == {
            "# of trajectories",
            "Total # of points",
            "Ave. # of pts per traj",
            "Sampling rate (s)",
            "Average length (m)",
        }

    @pytest.mark.parametrize("profile", sorted(DATASET_PROFILES))
    def test_profiles_statistics_finite(self, profile):
        db = synthetic_database(profile, n_trajectories=8, points_scale=0.05, seed=1)
        stats = dataset_statistics(db)
        assert stats.total_points > 0
        assert np.isfinite(stats.mean_segment_length)
        assert np.isfinite(stats.mean_sampling_interval)


class TestSpatialScale:
    def test_positive(self, small_db):
        assert spatial_scale(small_db) > 0

    def test_known_geometry(self):
        """Three trajectories with diameters 10, 20, 30 -> median 20."""
        trajs = []
        for i, diameter in enumerate((10.0, 20.0, 30.0)):
            xs = np.linspace(0, diameter, 5)
            trajs.append(
                Trajectory(
                    np.column_stack([xs, np.zeros(5), np.arange(5.0)]),
                    traj_id=i,
                )
            )
        assert spatial_scale(TrajectoryDatabase(trajs)) == pytest.approx(20.0)

    def test_scales_with_coordinates(self):
        db = TrajectoryDatabase(
            [make_trajectory(n=12, seed=i, traj_id=i) for i in range(5)]
        )
        scaled = TrajectoryDatabase(
            [
                Trajectory(
                    np.column_stack([t.points[:, :2] * 3.0, t.times]),
                    traj_id=t.traj_id,
                )
                for t in db
            ]
        )
        assert spatial_scale(scaled) == pytest.approx(3.0 * spatial_scale(db))
