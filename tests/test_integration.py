"""End-to-end integration tests crossing module boundaries.

These exercise the full pipeline the benchmarks run: generate data ->
train RL4QDTS -> simplify -> evaluate against baselines — at miniature
scale, asserting structural properties rather than absolute scores.
"""

import numpy as np
import pytest

from repro import (
    RL4QDTS,
    RangeQueryWorkload,
    all_baselines,
    simplify_database,
    synthetic_database,
)
from repro.baselines import RLTSPolicy, get_baseline, skyline
from repro.core import RL4QDTSConfig
from repro.eval import QueryAccuracyEvaluator, QuerySuiteConfig, query_deformation


@pytest.fixture(scope="module")
def pipeline_db():
    return synthetic_database("chengdu", n_trajectories=30, points_scale=0.5, seed=21)


@pytest.fixture(scope="module")
def pipeline_evaluator(pipeline_db):
    return QueryAccuracyEvaluator(
        pipeline_db,
        QuerySuiteConfig(
            n_range_queries=25,
            n_knn_queries=4,
            n_similarity_queries=4,
            clustering_subset=8,
            seed=2,
        ),
    )


@pytest.fixture(scope="module")
def pipeline_model(pipeline_db):
    config = RL4QDTSConfig(
        start_level=4,
        end_level=7,
        delta=10,
        n_training_queries=40,
        n_inference_queries=80,
        episodes=2,
        n_train_databases=1,
        train_db_size=15,
        train_budget_ratio=0.1,
        seed=4,
    )
    return RL4QDTS.train(pipeline_db, config=config)


class TestFullPipeline:
    def test_rl4qdts_end_to_end(self, pipeline_db, pipeline_model, pipeline_evaluator):
        simplified = pipeline_model.simplify(pipeline_db, budget_ratio=0.15, seed=9)
        assert simplified.total_points == pipeline_db.budget_for_ratio(0.15)
        scores = pipeline_evaluator.evaluate(simplified)
        assert all(0.0 <= v <= 1.0 for v in scores.values())
        # A 15% budget should comfortably beat the endpoints-only floor.
        floor = pipeline_db.map_simplify(lambda t: [0, len(t) - 1])
        floor_scores = pipeline_evaluator.evaluate(floor, ("range",))
        assert scores["range"] >= floor_scores["range"] - 1e-9

    def test_all_25_baselines_run_at_miniature_scale(self, pipeline_db):
        policy = RLTSPolicy("sed", seed=0)
        budget = pipeline_db.budget_for_ratio(0.2)
        for spec in all_baselines():
            simplified = simplify_database(
                pipeline_db, 0.2, spec, rlts_policy=policy
            )
            assert len(simplified) == len(pipeline_db)
            assert simplified.total_points <= max(budget, 2 * len(pipeline_db))

    def test_skyline_pipeline(self, pipeline_db, pipeline_evaluator):
        """Score a few baselines on two tasks and select the skyline."""
        names = ["Top-Down(E,SED)", "Bottom-Up(E,SED)", "Top-Down(E,PED)"]
        scores = {}
        for name in names:
            simplified = simplify_database(pipeline_db, 0.1, get_baseline(name))
            per_task = pipeline_evaluator.evaluate(
                simplified, ("range", "similarity")
            )
            scores[name] = [per_task["range"], per_task["similarity"]]
        selected = skyline(scores)
        assert 1 <= len(selected) <= len(names)

    def test_deformation_decreases_with_budget(self, pipeline_db):
        wl = RangeQueryWorkload.from_data_distribution(pipeline_db, 15, seed=3)
        spec = get_baseline("Bottom-Up(E,SED)")
        light = simplify_database(pipeline_db, 0.5, spec)
        heavy = simplify_database(pipeline_db, 0.05, spec)
        assert query_deformation(pipeline_db, light, wl) <= query_deformation(
            pipeline_db, heavy, wl
        )

    def test_more_budget_helps_rl4qdts(self, pipeline_db, pipeline_model, pipeline_evaluator):
        small = pipeline_model.simplify(pipeline_db, budget_ratio=0.05, seed=9)
        large = pipeline_model.simplify(pipeline_db, budget_ratio=0.4, seed=9)
        f1_small = pipeline_evaluator.evaluate(small, ("range",))["range"]
        f1_large = pipeline_evaluator.evaluate(large, ("range",))["range"]
        assert f1_large >= f1_small - 0.02

    def test_workload_knowledge_is_never_harmful(
        self, pipeline_db, pipeline_model, pipeline_evaluator
    ):
        """Annotating with the evaluation workload itself (perfect knowledge)
        should do at least as well as a fresh sample, up to noise."""
        known = pipeline_model.simplify(
            pipeline_db,
            budget_ratio=0.1,
            seed=9,
            workload=pipeline_evaluator.workload,
        )
        blind = pipeline_model.simplify(pipeline_db, budget_ratio=0.1, seed=9)
        f1_known = pipeline_evaluator.evaluate(known, ("range",))["range"]
        f1_blind = pipeline_evaluator.evaluate(blind, ("range",))["range"]
        assert f1_known >= f1_blind - 0.15

    def test_model_roundtrip_through_disk(self, pipeline_db, pipeline_model, tmp_path):
        path = tmp_path / "model.npz"
        pipeline_model.save(path)
        loaded = RL4QDTS.load(path)
        a = pipeline_model.simplify(pipeline_db, budget_ratio=0.1, seed=5)
        b = loaded.simplify(pipeline_db, budget_ratio=0.1, seed=5)
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.points, tb.points)


class TestCrossProfileSmoke:
    @pytest.mark.parametrize("profile", ["geolife", "tdrive", "osm"])
    def test_other_profiles_run_through_pipeline(self, profile):
        db = synthetic_database(profile, n_trajectories=10, points_scale=0.02, seed=3)
        spec = get_baseline("Top-Down(E,SED)")
        simplified = simplify_database(db, 0.3, spec)
        evaluator = QueryAccuracyEvaluator(
            db,
            QuerySuiteConfig(
                n_range_queries=8,
                n_knn_queries=2,
                n_similarity_queries=2,
                clustering_subset=4,
                seed=1,
            ),
        )
        scores = evaluator.evaluate(simplified, ("range", "knn_edr"))
        assert all(0.0 <= v <= 1.0 for v in scores.values())
