"""Unit tests for the TRACLUS substrate (partition, distance, group)."""

import numpy as np
import pytest

from repro.data import Trajectory, TrajectoryDatabase
from repro.queries.clustering import (
    TraclusConfig,
    dbscan_segments,
    mdl_partition,
    segment_distance,
    traclus_cluster,
)
from repro.queries.clustering.partition import characteristic_segments


def seg(x1, y1, x2, y2):
    return np.array([[x1, y1], [x2, y2]], dtype=float)


class TestSegmentDistance:
    def test_identical_zero(self):
        s = seg(0, 0, 10, 0)
        assert segment_distance(s, s) == pytest.approx(0.0)

    def test_symmetric(self):
        a, b = seg(0, 0, 10, 0), seg(2, 3, 9, 4)
        assert segment_distance(a, b) == pytest.approx(segment_distance(b, a))

    def test_parallel_offset_is_perpendicular(self):
        a = seg(0, 0, 10, 0)
        b = seg(0, 2, 10, 2)
        # Same length/direction, 2 apart: d_perp = 2, d_para = 0, d_theta = 0.
        assert segment_distance(a, b) == pytest.approx(2.0)

    def test_perpendicular_component_is_lehmer_mean(self):
        a = seg(0, 0, 10, 0)
        b = seg(0, 1, 8, 3)  # strictly shorter, so it projects onto a
        expected_perp = (1.0**2 + 3.0**2) / (1.0 + 3.0)
        assert segment_distance(a, b, w_para=0.0, w_theta=0.0) == pytest.approx(
            expected_perp
        )

    def test_angular_component(self):
        a = seg(0, 0, 10, 0)
        b = seg(0, 0, 0, 4)  # orthogonal, length 4
        assert segment_distance(a, b, w_perp=0.0, w_para=0.0) == pytest.approx(4.0)

    def test_opposite_direction_full_length(self):
        a = seg(0, 0, 10, 0)
        b = seg(5, 1, 1, 1)  # anti-parallel, length 4
        assert segment_distance(a, b, w_perp=0.0, w_para=0.0) == pytest.approx(4.0)

    def test_weights_scale_components(self):
        a, b = seg(0, 0, 10, 0), seg(0, 2, 10, 2)
        assert segment_distance(a, b, w_perp=3.0) == pytest.approx(6.0)

    def test_degenerate_point_segment(self):
        a = seg(0, 0, 10, 0)
        b = seg(4, 5, 4, 5)
        d = segment_distance(a, b)
        assert np.isfinite(d) and d > 0


class TestMDLPartition:
    def test_straight_line_collapses(self):
        # 10-unit steps: keeping every segment costs 29 * log2(10) bits while
        # one anchor costs log2(290), so MDL collapses the line.
        xs = np.arange(30.0) * 10
        t = Trajectory(np.column_stack([xs, np.zeros(30), np.arange(30.0)]))
        idx = mdl_partition(t)
        assert idx[0] == 0 and idx[-1] == 29
        assert len(idx) <= 5  # near-total collapse

    def test_sharp_corner_kept(self):
        # L-shaped route: the corner should survive partitioning.
        n = 21
        xy = np.zeros((n, 2))
        xy[:11, 0] = np.arange(11.0) * 10
        xy[11:, 0] = 100.0
        xy[11:, 1] = np.arange(1, 11.0) * 10
        t = Trajectory(np.column_stack([xy, np.arange(n)]))
        idx = mdl_partition(t)
        corner_zone = set(range(9, 13))
        assert corner_zone & set(idx)

    def test_endpoints_always_present(self, random_trajectory):
        idx = mdl_partition(random_trajectory)
        assert idx[0] == 0
        assert idx[-1] == len(random_trajectory) - 1
        assert idx == sorted(idx)

    def test_characteristic_segments_align_with_spans(self, random_trajectory):
        segments, spans = characteristic_segments(random_trajectory)
        assert len(segments) == len(spans)
        for segment, (s, e) in zip(segments, spans):
            assert np.allclose(segment[0], random_trajectory.xy[s])
            assert np.allclose(segment[1], random_trajectory.xy[e])


class TestDBSCAN:
    def test_empty_input(self):
        labels = dbscan_segments(np.empty((0, 2, 2)), eps=1.0, min_lns=2)
        assert len(labels) == 0

    def test_negative_eps_rejected(self):
        with pytest.raises(ValueError):
            dbscan_segments(np.zeros((2, 2, 2)), eps=-1.0, min_lns=2)

    def test_two_bundles_two_clusters(self):
        bundle_a = [seg(0, i * 0.1, 10, i * 0.1) for i in range(5)]
        bundle_b = [seg(100, 100 + i * 0.1, 110, 100 + i * 0.1) for i in range(5)]
        segments = np.stack(bundle_a + bundle_b)
        labels = dbscan_segments(segments, eps=2.0, min_lns=3)
        assert set(labels[:5]) == {0} or set(labels[:5]) == {1}
        assert len(set(labels[:5])) == 1
        assert len(set(labels[5:])) == 1
        assert labels[0] != labels[5]

    def test_isolated_segment_is_noise(self):
        bundle = [seg(0, i * 0.1, 10, i * 0.1) for i in range(5)]
        outlier = [seg(1000, 1000, 1010, 1000)]
        labels = dbscan_segments(np.stack(bundle + outlier), eps=2.0, min_lns=3)
        assert labels[-1] == -1

    def test_labels_contiguous_from_zero(self):
        bundle_a = [seg(0, i * 0.1, 10, i * 0.1) for i in range(4)]
        bundle_b = [seg(50, 50 + i * 0.1, 60, 50 + i * 0.1) for i in range(4)]
        labels = dbscan_segments(np.stack(bundle_a + bundle_b), eps=2.0, min_lns=3)
        found = set(labels) - {-1}
        assert found == set(range(len(found)))


class TestTraclus:
    def _corridor_db(self):
        """Two corridors of co-moving trajectories + one outlier."""
        trajectories = []
        tid = 0
        for base_y in (0.0, 500.0):
            for offset in range(4):
                xs = np.arange(12.0) * 10
                ys = np.full(12, base_y + offset * 2.0)
                ts = np.arange(12.0) + tid  # unique times, still increasing
                trajectories.append(
                    Trajectory(np.column_stack([xs, ys, ts]), traj_id=tid)
                )
                tid += 1
        # Outlier wandering far away.
        xs = 4000 + np.arange(12.0) * 10
        trajectories.append(
            Trajectory(np.column_stack([xs, xs, np.arange(12.0)]), traj_id=tid)
        )
        return TrajectoryDatabase(trajectories)

    def test_corridors_clustered_separately(self):
        db = self._corridor_db()
        result = traclus_cluster(db, TraclusConfig(eps=20.0, min_lns=3))
        assert result.n_clusters >= 2
        pairs = result.trajectory_pairs()
        # Same-corridor pairs present, cross-corridor absent.
        assert frozenset((0, 1)) in pairs
        assert frozenset((4, 5)) in pairs
        assert frozenset((0, 4)) not in pairs

    def test_outlier_not_in_any_cluster(self):
        db = self._corridor_db()
        result = traclus_cluster(db, TraclusConfig(eps=20.0, min_lns=3))
        outlier_id = len(db) - 1
        for members in result.clusters:
            assert outlier_id not in members

    def test_min_trajectories_filters_clusters(self):
        db = self._corridor_db()
        strict = traclus_cluster(
            db, TraclusConfig(eps=20.0, min_lns=3, min_trajectories=100)
        )
        assert strict.n_clusters == 0

    def test_result_arrays_aligned(self, geolife_db):
        sub = geolife_db.subset(range(6))
        result = traclus_cluster(sub, TraclusConfig(eps=200.0, min_lns=2))
        assert len(result.labels) == len(result.segment_owners)
