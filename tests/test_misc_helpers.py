"""Tests for utility helpers not exercised elsewhere."""

import numpy as np
import pytest

from repro.data.simplification import insort_unique
from repro.index import GridIndex
from repro.queries.edr import edr_distance, edr_similarity_matrix
from repro.queries.clustering.distances import (
    segment_distance,
    segment_distance_matrix,
)
from repro.baselines.skyline import dominates
from tests.conftest import make_trajectory


class TestInsortUnique:
    def test_inserts_in_order(self):
        values = [1, 4, 9]
        assert insort_unique(values, 5)
        assert values == [1, 4, 5, 9]

    def test_duplicate_not_inserted(self):
        values = [1, 4, 9]
        assert not insort_unique(values, 4)
        assert values == [1, 4, 9]

    def test_empty_list(self):
        values = []
        assert insort_unique(values, 3)
        assert values == [3]


class TestGridCellOf:
    def test_scalar_matches_batch(self, small_db):
        grid = GridIndex(small_db, resolution=(5, 5, 5))
        pts = small_db.all_points()[:20]
        batch = grid.cells_of(pts)
        for p, cell in zip(pts, batch):
            assert grid.cell_of(*p) == tuple(int(c) for c in cell)


class TestEDRMatrix:
    def test_matrix_matches_pairwise(self):
        trajs = [make_trajectory(n=6 + i, seed=i) for i in range(4)]
        matrix = edr_similarity_matrix(trajs, eps=20.0)
        assert matrix.shape == (4, 4)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)
        assert matrix[0, 2] == edr_distance(trajs[0], trajs[2], 20.0)


class TestSegmentDistanceMatrix:
    def test_matrix_matches_pairwise(self):
        rng = np.random.default_rng(0)
        segments = rng.uniform(0, 10, size=(5, 2, 2))
        matrix = segment_distance_matrix(segments)
        assert matrix.shape == (5, 5)
        assert np.allclose(matrix, matrix.T)
        assert matrix[1, 3] == pytest.approx(
            segment_distance(segments[1], segments[3])
        )


class TestDominates:
    def test_strict_domination(self):
        assert dominates([1.0, 1.0], [0.5, 1.0])
        assert not dominates([0.5, 1.0], [1.0, 1.0])

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates([0.5, 0.5], [0.5, 0.5])

    def test_incomparable(self):
        assert not dominates([1.0, 0.0], [0.0, 1.0])
        assert not dominates([0.0, 1.0], [1.0, 0.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dominates([1.0], [1.0, 2.0])
