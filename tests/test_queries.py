"""Unit tests for range / kNN / similarity queries and the F1 measures."""

import numpy as np
import pytest

from repro.data import Trajectory, TrajectoryDatabase
from repro.queries import (
    RangeQuery,
    edr_distance,
    edr_distances_one_to_many,
    f1_score,
    knn_query,
    precision_recall_f1,
    range_query,
    similarity_query,
    T2VecEmbedder,
)
from repro.queries.edr import edr_distances_pairs
from repro.queries.metrics import clustering_f1, clustering_pairs, mean_f1
from tests.conftest import make_trajectory


def traj_at(x0, y0, n=5, traj_id=0, t0=0.0, step=1.0):
    """A short trajectory starting at (x0, y0) moving +x."""
    xs = x0 + np.arange(n) * step
    ts = t0 + np.arange(n)
    return Trajectory(np.column_stack([xs, np.full(n, y0), ts]), traj_id=traj_id)


@pytest.fixture
def three_traj_db():
    return TrajectoryDatabase(
        [traj_at(0, 0), traj_at(100, 0, traj_id=1), traj_at(0, 100, traj_id=2)]
    )


class TestRangeQuery:
    def test_matches_point_inside(self, three_traj_db):
        q = RangeQuery.from_bounds(-1, 1, -1, 1, -1, 10)
        assert range_query(three_traj_db, q) == {0}

    def test_point_semantics_segment_crossing_does_not_match(self):
        # A trajectory jumping across the box with no sampled point inside.
        t = Trajectory([[-10, 0, 0], [10, 0, 1]])
        db = TrajectoryDatabase([t])
        q = RangeQuery.from_bounds(-1, 1, -1, 1, 0, 1)
        assert range_query(db, q) == set()

    def test_temporal_dimension_filters(self, three_traj_db):
        q = RangeQuery.from_bounds(-1, 10, -1, 1, 100, 200)
        assert range_query(three_traj_db, q) == set()

    def test_around_constructor(self):
        q = RangeQuery.around(5.0, 5.0, 5.0, 2.0, 4.0)
        b = q.box
        assert (b.xmin, b.xmax) == (4.0, 6.0)
        assert (b.tmin, b.tmax) == (3.0, 7.0)

    def test_simplification_only_loses_matches(self, small_db, small_workload):
        """Precision of range queries on a subsampled database is always 1."""
        simplified = small_db.map_simplify(lambda t: [0, len(t) - 1])
        for q in small_workload:
            full = range_query(small_db, q)
            simp = range_query(simplified, q)
            assert simp <= full


class TestEDR:
    def test_identical_zero(self):
        t = traj_at(0, 0)
        assert edr_distance(t, t, eps=0.1) == 0.0

    def test_completely_different(self):
        a = traj_at(0, 0, n=4)
        b = traj_at(1000, 1000, n=4)
        assert edr_distance(a, b, eps=1.0) == 4.0

    def test_one_substitution(self):
        a = np.array([[0, 0, 0], [1, 0, 1], [2, 0, 2]], dtype=float)
        b = a.copy()
        b[1, :2] = [50, 50]
        assert edr_distance(a, b, eps=0.5) == 1.0

    def test_length_mismatch_costs_insertions(self):
        a = traj_at(0, 0, n=6)
        b = traj_at(0, 0, n=4)  # prefix-matching
        assert edr_distance(a, b, eps=0.1) == 2.0

    def test_symmetry(self):
        a = make_trajectory(n=8, seed=1)
        b = make_trajectory(n=11, seed=2)
        assert edr_distance(a, b, 5.0) == edr_distance(b, a, 5.0)

    def test_triangle_like_bound(self):
        """EDR is bounded by max(len_a, len_b)."""
        a = make_trajectory(n=8, seed=1)
        b = make_trajectory(n=11, seed=2)
        assert edr_distance(a, b, 5.0) <= 11.0


class TestKNN:
    def test_self_is_nearest(self, small_db):
        q = small_db[3]
        result = knn_query(small_db, q, k=1, measure="edr", eps=1.0)
        assert result == [3]

    def test_k_results_returned(self, small_db):
        result = knn_query(small_db, small_db[0], k=4, measure="edr", eps=10.0)
        assert len(result) == 4
        assert len(set(result)) == 4

    def test_invalid_k(self, small_db):
        with pytest.raises(ValueError):
            knn_query(small_db, small_db[0], k=0)

    def test_unknown_measure(self, small_db):
        with pytest.raises(ValueError):
            knn_query(small_db, small_db[0], k=1, measure="dtw")

    def test_t2vec_requires_fitted_embedder(self, small_db):
        with pytest.raises(ValueError):
            knn_query(small_db, small_db[0], k=1, measure="t2vec")

    def test_t2vec_self_nearest(self, small_db):
        emb = T2VecEmbedder(resolution=8, dim=8, epochs=1, seed=0).fit(small_db)
        result = knn_query(small_db, small_db[2], k=1, measure="t2vec", embedder=emb)
        assert result == [2]

    def test_callable_measure(self, three_traj_db):
        # Distance by trajectory id parity: even ids are "close" to T0.
        def theta(a, b):
            return abs(a.traj_id - b.traj_id)

        result = knn_query(three_traj_db, three_traj_db[0], k=2, measure=theta)
        assert result == [0, 1]

    def test_time_window_excludes_disjoint(self, three_traj_db):
        shifted = TrajectoryDatabase(
            [
                traj_at(0, 0),
                traj_at(0, 0, t0=1000.0, traj_id=1),
            ]
        )
        result = knn_query(
            shifted, shifted[0], k=2, time_window=(0.0, 10.0), measure="edr",
            eps=1.0,
        )
        # T1 has no points in the window: it is incomparable and truncated
        # rather than padded in after the real result.
        assert result == [0]

    def test_unreachable_trajectories_are_truncated_not_padded(self):
        """Regression: fewer than k comparable trajectories -> shorter result.

        Previously the k lowest incomparable (infinite-distance) trajectory
        ids filled the tail, and the harness scored those junk ids as real
        F1 hits/misses.
        """
        db = TrajectoryDatabase(
            [traj_at(0, 0)]
            + [traj_at(5, 5, t0=1000.0 * (i + 1), traj_id=i + 1) for i in range(4)]
        )
        result = knn_query(
            db, db[0], k=3, time_window=(0.0, 10.0), measure="edr", eps=1.0
        )
        assert result == [0]  # not [0, 1, 2]

    def test_window_with_no_comparable_trajectory_is_empty(self):
        db = TrajectoryDatabase([traj_at(0, 0), traj_at(1, 1, traj_id=1)])
        assert (
            knn_query(db, db[0], k=2, time_window=(500.0, 510.0), eps=1.0) == []
        )


class TestEdrBatch:
    def test_pairs_match_reference(self):
        rng = np.random.default_rng(0)
        for trial in range(15):
            n_pairs = int(rng.integers(1, 7))
            a_list = [
                make_trajectory(n=int(rng.integers(2, 16)), seed=trial * 20 + j)
                for j in range(n_pairs)
            ]
            b_list = [
                make_trajectory(
                    n=int(rng.integers(2, 16)), seed=900 + trial * 20 + j
                )
                for j in range(n_pairs)
            ]
            eps = float(rng.uniform(1.0, 80.0))
            expected = [
                edr_distance(a, b, eps) for a, b in zip(a_list, b_list)
            ]
            assert edr_distances_pairs(a_list, b_list, eps).tolist() == expected

    def test_one_to_many_matches_reference(self):
        query = make_trajectory(n=9, seed=3)
        candidates = [make_trajectory(n=4 + j, seed=50 + j) for j in range(5)]
        assert edr_distances_one_to_many(query, candidates, 10.0).tolist() == [
            edr_distance(query, c, 10.0) for c in candidates
        ]

    def test_empty_inputs(self):
        assert len(edr_distances_pairs([], [], 1.0)) == 0
        with pytest.raises(ValueError):
            edr_distances_pairs([make_trajectory()], [], 1.0)

    def test_zero_length_sides(self):
        a = make_trajectory(n=5, seed=1)
        empty = np.empty((0, 3))
        assert edr_distances_pairs([a], [empty], 1.0).tolist() == [5.0]
        assert edr_distances_pairs([empty], [a], 1.0).tolist() == [5.0]
        assert edr_distances_pairs([empty], [empty], 1.0).tolist() == [0.0]


class TestSimilarity:
    def test_self_always_matches(self, small_db):
        for qid in (0, 4):
            result = similarity_query(small_db, small_db[qid], delta=1e-6)
            assert qid in result

    def test_parallel_trajectories_within_delta(self):
        a = traj_at(0, 0, n=10)
        b = traj_at(0, 3, n=10, traj_id=1)  # same motion, 3 units north
        db = TrajectoryDatabase([a, b])
        assert similarity_query(db, a, delta=3.5) == {0, 1}
        assert similarity_query(db, a, delta=2.0) == {0}

    def test_negative_delta_rejected(self, small_db):
        with pytest.raises(ValueError):
            similarity_query(small_db, small_db[0], delta=-1.0)

    def test_non_overlapping_time_excluded(self):
        a = traj_at(0, 0, n=10)
        b = traj_at(0, 0, n=10, t0=1e6, traj_id=1)
        db = TrajectoryDatabase([a, b])
        assert similarity_query(db, a, delta=1e9) == {0}

    def test_empty_window_rejected(self, small_db):
        with pytest.raises(ValueError):
            similarity_query(small_db, small_db[0], 1.0, time_window=(10.0, 0.0))

    def test_partial_lifespan_candidate_not_extrapolated(self):
        """Regression: the predicate only counts instants where both exist.

        The candidate tracks the query exactly while it is alive (t in
        [0, 4]) and then ends; previously its parked endpoint was
        extrapolated across the rest of the window, where the query has
        moved far away, and the candidate wrongly failed the predicate.
        """
        query = traj_at(0, 0, n=20)  # alive t in [0, 19], moving +x
        partial = traj_at(0, 0, n=5, traj_id=1)  # identical until t=4
        db = TrajectoryDatabase([query, partial])
        assert similarity_query(db, db[0], delta=0.5) == {0, 1}

    def test_parked_endpoints_cannot_satisfy_predicate(self):
        """The dual failure: two trajectories that never coexist must not
        match even when both overlap the window and their parked endpoints
        sit on top of each other — there is no instant where the predicate
        is actually about two existing trajectories."""
        query = traj_at(0, 0, n=5, step=0.0)  # parked at (0,0), t in [0,4]
        late = traj_at(0, 0, n=5, step=0.0, t0=6.0, traj_id=1)  # t in [6,10]
        db = TrajectoryDatabase([query, late])
        # Both lifespans intersect the window, their endpoint extrapolations
        # coincide everywhere, yet they share no instant.
        assert similarity_query(
            db, db[0], delta=1e6, time_window=(0.0, 10.0)
        ) == {0}

    def test_window_beyond_query_lifespan_not_extrapolated(self):
        """Checkpoints outside the query's own lifespan are excluded too."""
        query = traj_at(0, 0, n=5)  # alive t in [0, 4]
        # Matches the query while it exists, then wanders far away.
        wanderer = Trajectory(
            np.column_stack(
                [
                    np.concatenate([np.arange(5.0), np.full(5, 1e6)]),
                    np.zeros(10),
                    np.arange(10.0),
                ]
            ),
            traj_id=1,
        )
        db = TrajectoryDatabase([query, wanderer])
        # Window extends past the query's life; instants beyond t=4 have no
        # query position and must not be scored against its parked endpoint.
        assert similarity_query(
            db, db[0], delta=0.5, time_window=(0.0, 9.0)
        ) == {0, 1}


class TestMetrics:
    def test_perfect(self):
        assert precision_recall_f1({1, 2}, {1, 2}) == (1.0, 1.0, 1.0)

    def test_both_empty_is_perfect(self):
        assert f1_score(set(), set()) == 1.0

    def test_one_sided_empty_is_zero(self):
        assert f1_score({1}, set()) == 0.0
        assert f1_score(set(), {1}) == 0.0

    def test_partial_overlap(self):
        p, r, f1 = precision_recall_f1({1, 2, 3, 4}, {3, 4, 5})
        assert p == pytest.approx(2 / 3)
        assert r == pytest.approx(0.5)
        assert f1 == pytest.approx(2 * (2 / 3) * 0.5 / (2 / 3 + 0.5))

    def test_knn_precision_equals_recall(self):
        truth, predicted = {1, 2, 3}, {2, 3, 4}
        p, r, _ = precision_recall_f1(truth, predicted)
        assert p == r  # equal-size sets

    def test_mean_f1_requires_nonempty(self):
        with pytest.raises(ValueError):
            mean_f1([], [])

    def test_mean_f1_strict_zip(self):
        with pytest.raises(ValueError):
            mean_f1([{1}], [{1}, {2}])

    def test_clustering_pairs(self):
        pairs = clustering_pairs([[1, 2, 3], [3, 4]])
        assert pairs == {
            frozenset((1, 2)),
            frozenset((1, 3)),
            frozenset((2, 3)),
            frozenset((3, 4)),
        }

    def test_clustering_f1_identical(self):
        clusters = [[1, 2], [3, 4, 5]]
        assert clustering_f1(clusters, clusters) == 1.0

    def test_clustering_f1_disjoint(self):
        assert clustering_f1([[1, 2]], [[3, 4]]) == 0.0


class TestT2Vec:
    def test_unfitted_embed_raises(self, small_db):
        emb = T2VecEmbedder()
        with pytest.raises(RuntimeError):
            emb.embed(small_db[0])
        with pytest.raises(RuntimeError):
            emb.tokens_of(small_db[0])

    def test_fit_is_deterministic(self, small_db):
        a = T2VecEmbedder(resolution=8, dim=8, epochs=1, seed=3).fit(small_db)
        b = T2VecEmbedder(resolution=8, dim=8, epochs=1, seed=3).fit(small_db)
        assert np.allclose(a.embed(small_db[0]), b.embed(small_db[0]))

    def test_tokens_merge_consecutive_duplicates(self, small_db):
        emb = T2VecEmbedder(resolution=4).fit(small_db)
        tokens = emb.tokens_of(small_db[0])
        assert all(x != y for x, y in zip(tokens, tokens[1:]))

    def test_distance_zero_to_self(self, small_db):
        emb = T2VecEmbedder(resolution=8, dim=8, epochs=1).fit(small_db)
        assert emb.distance(small_db[0], small_db[0]) == 0.0

    def test_simplified_trajectory_stays_close(self, geolife_db):
        """Dropping on-route points barely moves the embedding; the whole
        point of a learned cell-sequence measure."""
        emb = T2VecEmbedder(resolution=12, dim=8, epochs=1, seed=0).fit(geolife_db)
        t = geolife_db[0]
        light = t.subsample(sorted({0, len(t) - 1} | set(range(0, len(t), 2))))
        heavy = t.subsample([0, len(t) - 1])
        assert emb.distance(t, light) <= emb.distance(t, heavy) + 1e-9
