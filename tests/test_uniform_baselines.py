"""Tests for the naive uniform/random down-sampling floors."""

import numpy as np
import pytest

from repro.baselines import (
    random_simplify,
    random_simplify_database,
    uniform_simplify,
    uniform_simplify_database,
)
from tests.conftest import make_trajectory


class TestUniform:
    def test_budget_and_endpoints(self, random_trajectory):
        kept = uniform_simplify(random_trajectory, 7)
        assert len(kept) == 7
        assert kept[0] == 0 and kept[-1] == len(random_trajectory) - 1

    def test_even_spacing(self):
        traj = make_trajectory(n=21)
        kept = uniform_simplify(traj, 5)
        assert kept == [0, 5, 10, 15, 20]

    def test_budget_above_length(self, random_trajectory):
        assert uniform_simplify(random_trajectory, 999) == list(
            range(len(random_trajectory))
        )

    def test_tiny_budget_rejected(self, random_trajectory):
        with pytest.raises(ValueError):
            uniform_simplify(random_trajectory, 1)

    def test_database_variant(self, small_db):
        simplified = uniform_simplify_database(small_db, 0.3)
        assert len(simplified) == len(small_db)
        assert simplified.total_points < small_db.total_points


class TestRandom:
    def test_budget_and_endpoints(self, random_trajectory):
        rng = np.random.default_rng(0)
        kept = random_simplify(random_trajectory, 7, rng)
        assert len(kept) == 7
        assert kept[0] == 0 and kept[-1] == len(random_trajectory) - 1
        assert kept == sorted(set(kept))

    def test_deterministic_by_seed(self, small_db):
        a = random_simplify_database(small_db, 0.3, seed=5)
        b = random_simplify_database(small_db, 0.3, seed=5)
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.points, tb.points)

    def test_different_seeds_differ(self, small_db):
        a = random_simplify_database(small_db, 0.3, seed=5)
        b = random_simplify_database(small_db, 0.3, seed=6)
        assert any(
            not np.array_equal(ta.points, tb.points) for ta, tb in zip(a, b)
        )

    def test_bad_ratio_rejected(self, small_db):
        with pytest.raises(ValueError):
            random_simplify_database(small_db, 0.0)
        with pytest.raises(ValueError):
            uniform_simplify_database(small_db, 1.5)


class TestPointFeatureOption:
    def test_vt_ranking_changes_candidates(self, small_db):
        from repro.core.features import cube_point_state
        from repro.data import SimplificationState

        state = SimplificationState(small_db)
        entries = [
            (tid, i)
            for tid in range(len(small_db))
            for i in range(1, len(small_db[tid]) - 1)
        ]
        vec_s, cand_s, _ = cube_point_state(state, entries, 3, rank_by="vs")
        vec_t, cand_t, _ = cube_point_state(state, entries, 3, rank_by="vt")
        # v_t ordering sorts by the second feature column.
        vts = vec_t[1::2][: len(cand_t)]
        assert (np.diff(vts) <= 1e-12).all()

    def test_invalid_feature_rejected(self):
        from repro.core import RL4QDTSConfig

        with pytest.raises(ValueError):
            RL4QDTSConfig(point_feature="va")
