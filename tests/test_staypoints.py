"""Tests for stay-point detection and stay-aware compression."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Trajectory,
    TrajectoryDatabase,
    detect_stay_points,
    stay_aware_simplify,
    stay_aware_simplify_database,
    stay_statistics,
)
from tests.conftest import make_trajectory


def trajectory_with_stop(stop_len=10, move_len=5, jitter=0.0, seed=0):
    """Move right, stop (with optional jitter), move right again."""
    rng = np.random.default_rng(seed)
    xs = list(np.arange(move_len, dtype=float))
    ys = [0.0] * move_len
    stop_x = xs[-1]
    for _ in range(stop_len):
        xs.append(stop_x + rng.normal(0, jitter))
        ys.append(rng.normal(0, jitter))
    for i in range(1, move_len + 1):
        xs.append(stop_x + i)
        ys.append(0.0)
    t = np.arange(len(xs), dtype=float)
    return Trajectory(np.column_stack([xs, ys, t]))


class TestDetectStayPoints:
    def test_finds_the_stop(self):
        traj = trajectory_with_stop(stop_len=10, move_len=5)
        stays = detect_stay_points(traj, radius=0.5, min_duration=3.0)
        assert len(stays) == 1
        stay = stays[0]
        assert stay.start_index == 4  # the last approach point anchors it
        assert stay.n_points >= 10
        assert stay.duration >= 3.0

    def test_moving_trajectory_has_no_stays(self):
        xs = np.arange(20.0)
        traj = Trajectory(np.column_stack([xs, xs, xs]))
        assert detect_stay_points(traj, radius=0.5, min_duration=2.0) == []

    def test_jittered_stop_still_detected(self):
        traj = trajectory_with_stop(stop_len=12, jitter=0.05, seed=1)
        stays = detect_stay_points(traj, radius=0.5, min_duration=3.0)
        assert len(stays) == 1

    def test_short_pause_below_min_duration_ignored(self):
        traj = trajectory_with_stop(stop_len=2, move_len=5)
        assert detect_stay_points(traj, radius=0.5, min_duration=5.0) == []

    def test_two_separate_stops(self):
        parts = []
        x = 0.0
        t = 0.0
        rows = []
        for phase in ("move", "stop", "move", "stop", "move"):
            steps = 5 if phase == "move" else 8
            for _ in range(steps):
                if phase == "move":
                    x += 1.0
                rows.append((x, 0.0, t))
                t += 1.0
        traj = Trajectory(np.array(rows))
        stays = detect_stay_points(traj, radius=0.25, min_duration=4.0)
        assert len(stays) == 2
        assert stays[0].end_index < stays[1].start_index

    def test_centroid_near_stop_location(self):
        traj = trajectory_with_stop(stop_len=10, move_len=5)
        stay = detect_stay_points(traj, radius=0.5, min_duration=3.0)[0]
        assert stay.x == pytest.approx(4.0, abs=0.5)
        assert stay.y == pytest.approx(0.0, abs=0.5)

    def test_rejects_negative_parameters(self, random_trajectory):
        with pytest.raises(ValueError):
            detect_stay_points(random_trajectory, -1.0, 1.0)
        with pytest.raises(ValueError):
            detect_stay_points(random_trajectory, 1.0, -1.0)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_property_episodes_disjoint_and_ordered(self, seed):
        traj = make_trajectory(n=40, seed=seed)
        stays = detect_stay_points(traj, radius=30.0, min_duration=5.0)
        for a, b in zip(stays, stays[1:]):
            assert a.end_index < b.start_index
        for stay in stays:
            assert 0 <= stay.start_index < stay.end_index < len(traj)
            assert stay.duration >= 5.0


class TestStayAwareSimplify:
    def test_collapses_the_stop(self):
        traj = trajectory_with_stop(stop_len=10, move_len=5)
        kept = stay_aware_simplify(traj, radius=0.5, min_duration=3.0)
        # All movement points kept; the 10-point stop keeps only 2.
        assert len(kept) <= len(traj) - 8
        assert kept[0] == 0 and kept[-1] == len(traj) - 1

    def test_keeps_everything_when_no_stays(self):
        xs = np.arange(15.0)
        traj = Trajectory(np.column_stack([xs, xs, xs]))
        kept = stay_aware_simplify(traj, radius=0.1, min_duration=2.0)
        assert kept == list(range(15))

    def test_valid_subsample(self, random_trajectory):
        kept = stay_aware_simplify(random_trajectory, 30.0, 5.0)
        simplified = random_trajectory.subsample(kept)  # must not raise
        assert len(simplified) == len(kept)

    def test_low_error_at_stop(self):
        """Collapsing a true stop costs almost nothing in SED."""
        from repro.errors import trajectory_error

        traj = trajectory_with_stop(stop_len=10, jitter=0.02, seed=3)
        kept = stay_aware_simplify(traj, radius=0.5, min_duration=3.0)
        assert trajectory_error(traj, kept, measure="sed") < 0.5


class TestDatabaseAndStats:
    def test_database_wrapper(self):
        db = TrajectoryDatabase(
            [trajectory_with_stop(seed=i) for i in range(4)]
        )
        simplified = stay_aware_simplify_database(db, 0.5, 3.0)
        assert simplified.total_points < db.total_points
        assert len(simplified) == len(db)

    def test_statistics_fields(self):
        db = TrajectoryDatabase(
            [trajectory_with_stop(seed=i) for i in range(4)]
        )
        stats = stay_statistics(db, 0.5, 3.0)
        assert stats["n_stays"] == 4.0
        assert 0.0 < stats["stay_point_fraction"] < 1.0
        assert stats["mean_dwell"] > 0.0

    def test_statistics_on_moving_data(self):
        xs = np.arange(20.0)
        db = TrajectoryDatabase([Trajectory(np.column_stack([xs, xs, xs]))])
        stats = stay_statistics(db, 0.1, 2.0)
        assert stats == {
            "n_stays": 0.0,
            "stay_point_fraction": 0.0,
            "mean_dwell": 0.0,
        }
