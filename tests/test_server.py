"""Tests for the asyncio socket front-end and the three-transport parity.

The acceptance contract of the unified client API: all five query kinds
are bit-identical across :class:`LocalClient` / :class:`ServiceClient` /
:class:`RemoteClient`, across executors and partitioners, under
interleaved ingest — and the server sustains concurrent clients with
zero dropped or misordered responses, answers garbage with structured
error frames (the connection survives), and shuts down gracefully.
"""

import json
import socket
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.client import LocalClient, RemoteClient, RequestError, ServiceClient
from repro.data import Trajectory, TrajectoryDatabase, synthetic_database
from repro.eval.harness import QueryAccuracyEvaluator
from repro.service import (
    PROTOCOL_VERSION,
    QueryService,
    serve_in_thread,
)
from repro.service.server import FRAME_HEADER, encode_frame
from repro.workloads import RangeQueryWorkload


def server_db(n: int = 16, seed: int = 5) -> TrajectoryDatabase:
    return synthetic_database(
        "geolife", n_trajectories=n, points_scale=0.05, seed=seed
    )


def knn_suite(db, n=3, seed=1):
    rng = np.random.default_rng(seed)
    qids = [int(i) for i in rng.choice(len(db), size=n, replace=False)]
    queries = [db[q] for q in qids]
    windows = [QueryAccuracyEvaluator._central_window(q) for q in queries]
    return queries, windows


def shifted_batch(db, n: int = 3, seed: int = 0, shift=(35.0, -25.0)):
    rng = np.random.default_rng(seed)
    return [
        Trajectory(
            db[int(rng.integers(len(db)))].points
            + np.array([shift[0], shift[1], 0.0])
        )
        for _ in range(n)
    ]


@pytest.fixture()
def loopback():
    """A fresh loopback server over a 16-trajectory database."""
    db = server_db()
    handle = serve_in_thread(QueryService(db, n_shards=3), close_service=True)
    try:
        yield db, handle
    finally:
        handle.stop()


class _RawConnection:
    """A bare socket speaking frames, for protocol-violation tests."""

    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port), timeout=10.0)

    def send_frame(self, obj) -> None:
        self.sock.sendall(encode_frame(obj))

    def send_bytes(self, data: bytes) -> None:
        self.sock.sendall(data)

    def read_frame(self):
        header = self._recv_exact(FRAME_HEADER.size)
        if header is None:
            return None
        (length,) = FRAME_HEADER.unpack(header)
        return json.loads(self._recv_exact(length))

    def _recv_exact(self, n):
        buf = bytearray()
        while len(buf) < n:
            chunk = self.sock.recv(n - len(buf))
            if not chunk:
                return None if not buf else pytest.fail("truncated frame")
            buf += chunk
        return bytes(buf)

    def hello(self, version=PROTOCOL_VERSION):
        self.send_frame({"type": "hello", "version": version})
        return self.read_frame()

    def close(self):
        self.sock.close()


# ------------------------------------------------------------------ handshake
class TestHandshake:
    def test_hello_carries_serving_metadata(self, loopback):
        db, handle = loopback
        with RemoteClient(handle.host, handle.port) as client:
            info = client.server_info
            assert info["trajectories"] == len(db)
            assert info["n_shards"] == 3
            assert info["epoch"] == 0

    def test_version_mismatch_gets_error_frame_and_close(self, loopback):
        _, handle = loopback
        raw = _RawConnection(handle.host, handle.port)
        reply = raw.hello(version=999)
        assert reply["type"] == "error"
        assert reply["error"]["type"] == "RequestError"
        assert "version" in reply["error"]["message"]
        assert raw.read_frame() is None  # server closed the connection
        raw.close()

    def test_first_frame_must_be_hello(self, loopback):
        _, handle = loopback
        raw = _RawConnection(handle.host, handle.port)
        raw.send_frame({"type": "describe", "id": 0})
        reply = raw.read_frame()
        assert reply["type"] == "error"
        assert "hello" in reply["error"]["message"]
        raw.close()

    def test_remote_client_rejects_bad_address(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            RemoteClient.connect("nonsense")


# ------------------------------------------------------------ error isolation
class TestErrorFrames:
    def test_malformed_json_answered_then_connection_survives(self, loopback):
        db, handle = loopback
        raw = _RawConnection(handle.host, handle.port)
        assert raw.hello()["type"] == "hello"
        raw.send_bytes(FRAME_HEADER.pack(9) + b"not json!")
        reply = raw.read_frame()
        assert reply["type"] == "error"
        assert "JSON" in reply["error"]["message"]
        # The same connection still serves valid traffic afterwards.
        raw.send_frame(
            {
                "type": "request",
                "id": 7,
                "request": {"v": PROTOCOL_VERSION, "kind": "histogram", "grid": 4},
            }
        )
        reply = raw.read_frame()
        assert reply["type"] == "response" and reply["id"] == 7
        assert np.sum(reply["response"]["histogram"]) == db.total_points
        raw.close()

    def test_bad_request_is_a_structured_error_not_a_drop(self, loopback):
        _, handle = loopback
        raw = _RawConnection(handle.host, handle.port)
        raw.hello()
        raw.send_frame(
            {
                "type": "request",
                "id": 1,
                "request": {
                    "v": PROTOCOL_VERSION,
                    "kind": "range",
                    "boxes": [[9.0, 1.0, 0.0, 1.0, 0.0, 1.0]],
                },
            }
        )
        reply = raw.read_frame()
        assert reply == {
            "type": "error",
            "id": 1,
            "error": {
                "type": "RequestError",
                "message": reply["error"]["message"],
            },
        }
        assert "bad box bounds" in reply["error"]["message"]
        # Unknown kind and unknown frame type behave the same way.
        raw.send_frame(
            {
                "type": "request",
                "id": 2,
                "request": {"v": PROTOCOL_VERSION, "kind": "teleport"},
            }
        )
        assert "unknown request kind" in raw.read_frame()["error"]["message"]
        raw.send_frame({"type": "warp", "id": 3})
        assert "unknown frame type" in raw.read_frame()["error"]["message"]
        raw.close()

    def test_remote_client_raises_request_error_from_server(self, loopback):
        db, handle = loopback
        queries, _ = knn_suite(db, n=1)
        with RemoteClient(handle.host, handle.port) as client:
            obj = {
                "v": PROTOCOL_VERSION,
                "kind": "knn",
                "queries": [{"id": 0, "points": queries[0].points.tolist()}],
                "k": 2,
                "measure": "t2vec",  # decode-time rejection server-side
            }
            with pytest.raises(RequestError, match="t2vec"):
                client._round_trip({"type": "request", "request": obj})
            # The connection survives the rejected request.
            assert client.histogram(4).histogram.sum() == db.total_points

    def test_execution_error_keeps_connection_alive(self, loopback):
        db, handle = loopback
        queries, _ = knn_suite(db, n=1)
        from repro.client import ServerError

        with RemoteClient(handle.host, handle.port) as client:
            # Well-formed on the wire, rejected at execution time (te < ts
            # passes decode; the engine raises): must arrive as a non-
            # RequestError error frame, not a dropped connection.
            obj = {
                "v": PROTOCOL_VERSION,
                "kind": "similarity",
                "queries": [{"id": 0, "points": queries[0].points.tolist()}],
                "delta": 5.0,
                "time_windows": [[10.0, 5.0]],
            }
            with pytest.raises(ServerError, match="empty time window"):
                client._round_trip({"type": "request", "request": obj})
            assert client.histogram(4).histogram.sum() == db.total_points

    def test_ingest_frame_validation(self, loopback):
        _, handle = loopback
        raw = _RawConnection(handle.host, handle.port)
        raw.hello()
        raw.send_frame({"type": "ingest", "id": 4, "trajectories": "nope"})
        assert "array" in raw.read_frame()["error"]["message"]
        raw.close()


# -------------------------------------------------------------- transport parity
EXECUTORS_TO_TEST = ["serial", "process"]
PARTITIONERS_TO_TEST = ["hash", "spatial"]


class TestThreeTransportParity:
    """The acceptance criterion: bit-identical across all three clients,
    both executors, both partitioners, under interleaved ingest."""

    @pytest.mark.parametrize("executor", EXECUTORS_TO_TEST)
    @pytest.mark.parametrize("partitioner", PARTITIONERS_TO_TEST)
    def test_all_five_kinds_with_interleaved_ingest(self, executor, partitioner):
        db = server_db(14, seed=11)
        workload = RangeQueryWorkload.from_data_distribution(db, 10, seed=3)
        queries, windows = knn_suite(db, n=2, seed=2)
        eps, delta = 200.0, 80.0

        handle = serve_in_thread(
            QueryService(db, n_shards=3, partitioner=partitioner, executor=executor),
            close_service=True,
        )
        local = LocalClient(db)
        service = ServiceClient.for_database(
            db, n_shards=3, partitioner=partitioner, executor=executor
        )
        remote = RemoteClient(handle.host, handle.port)
        clients = {"local": local, "service": service, "remote": remote}
        try:
            for round_no in range(2):
                answers = {
                    name: (
                        c.range(workload).result_sets,
                        c.count(workload.boxes).counts,
                        c.histogram(8).histogram,
                        c.knn(queries, 2, windows, eps=eps).pairs,
                        c.similarity(queries, delta).result_sets,
                    )
                    for name, c in clients.items()
                }
                reference = answers["local"]
                for name, got in answers.items():
                    assert got[0] == reference[0], f"range diverged ({name})"
                    assert np.array_equal(got[1], reference[1]), (
                        f"count diverged ({name})"
                    )
                    assert np.array_equal(got[2], reference[2]), (
                        f"histogram diverged ({name})"
                    )
                    assert got[3] == reference[3], f"kNN diverged ({name})"
                    assert got[4] == reference[4], f"similarity diverged ({name})"
                batch = shifted_batch(db, 2, seed=round_no)
                epochs = {n: c.ingest(batch).epoch for n, c in clients.items()}
                assert len(set(epochs.values())) == 1, epochs
        finally:
            for c in clients.values():
                c.close()
            handle.stop()

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 40))
    def test_property_remote_equals_local(self, seed):
        db = server_db(10, seed=seed)
        workload = RangeQueryWorkload.from_data_distribution(db, 6, seed=seed)
        queries, windows = knn_suite(db, n=2, seed=seed)
        handle = serve_in_thread(
            QueryService(db, n_shards=2), close_service=True
        )
        try:
            with LocalClient(db) as local, RemoteClient(
                handle.host, handle.port
            ) as remote:
                assert (
                    remote.range(workload).result_sets
                    == local.range(workload).result_sets
                )
                assert remote.knn(queries, 2, windows, eps=300.0).pairs == (
                    local.knn(queries, 2, windows, eps=300.0).pairs
                )
                batch = shifted_batch(db, 2, seed=seed)
                local.ingest(batch)
                remote.ingest(batch)
                assert (
                    remote.similarity(queries, 90.0).result_sets
                    == local.similarity(queries, 90.0).result_sets
                )
        finally:
            handle.stop()

    def test_harness_scores_identical_through_remote(self, loopback):
        db, handle = loopback
        evaluator = QueryAccuracyEvaluator(db)
        tasks = ("range", "knn_edr", "similarity")
        with RemoteClient(handle.host, handle.port) as client:
            assert evaluator.evaluate(db, tasks, client=client) == (
                evaluator.evaluate(db, tasks)
            )


# ---------------------------------------------------------------- concurrency
class TestConcurrentClients:
    def test_eight_clients_no_drops_no_misorder(self, loopback):
        db, handle = loopback
        workload = RangeQueryWorkload.from_data_distribution(db, 8, seed=3)
        queries, windows = knn_suite(db, n=2)
        with LocalClient(db) as local:
            want_range = local.range(workload).result_sets
            want_pairs = local.knn(queries, 2, windows, eps=250.0).pairs
        errors: list[str] = []

        def loop(idx: int) -> None:
            try:
                # RemoteClient verifies every response id echo internally:
                # any dropped or reordered reply raises.
                with RemoteClient(handle.host, handle.port) as client:
                    for i in range(6):
                        if (idx + i) % 2 == 0:
                            got = client.range(workload).result_sets
                            if got != want_range:
                                errors.append(f"client {idx}: range mismatch")
                        else:
                            got = client.knn(queries, 2, windows, eps=250.0).pairs
                            if got != want_pairs:
                                errors.append(f"client {idx}: knn mismatch")
            except Exception as exc:
                errors.append(f"client {idx}: {type(exc).__name__}: {exc}")

        threads = [threading.Thread(target=loop, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads), "client threads hung"
        assert not errors, "\n".join(errors)

    def test_shared_client_is_thread_safe(self, loopback):
        db, handle = loopback
        boxes = [db.bounding_box]
        errors: list[str] = []
        with RemoteClient(handle.host, handle.port) as client:
            def loop() -> None:
                try:
                    for _ in range(5):
                        client.count(boxes)
                except Exception as exc:
                    errors.append(f"{type(exc).__name__}: {exc}")

            threads = [threading.Thread(target=loop) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert not errors, "\n".join(errors)


# ------------------------------------------------------------------- shutdown
class TestShutdown:
    def test_graceful_stop_refuses_new_connections(self):
        db = server_db(8, seed=40)
        handle = serve_in_thread(QueryService(db, n_shards=2), close_service=True)
        with RemoteClient(handle.host, handle.port) as client:
            client.histogram(4)
        address = (handle.host, handle.port)
        handle.stop()
        handle.stop()  # idempotent
        with pytest.raises(OSError):
            socket.create_connection(address, timeout=2.0)

    def test_stop_closes_owned_service(self):
        db = server_db(8, seed=41)
        service = QueryService(db, n_shards=2)
        handle = serve_in_thread(service, close_service=True)
        handle.stop()
        with pytest.raises(RuntimeError, match="closed"):
            from repro.service import HistogramRequest

            service.execute(HistogramRequest())

    def test_client_close_is_idempotent_and_sends_bye(self, loopback):
        _, handle = loopback
        client = RemoteClient(handle.host, handle.port)
        client.histogram(4)
        client.close()
        client.close()
        with pytest.raises(RuntimeError, match="closed"):
            client.histogram(4)


# ------------------------------------------------------------------------ CLI
class TestServeListenCLI:
    def test_serve_listen_roundtrip_and_sigint(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        import time

        from repro.data import save_database

        db = server_db(10, seed=50)
        db_path = tmp_path / "db.npz"
        save_database(db, db_path)
        workload = RangeQueryWorkload.from_data_distribution(db, 5, seed=1)
        workload_path = tmp_path / "wl.json"
        workload.save(workload_path)

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--db", str(db_path), "--shards", "2",
                "--listen", "127.0.0.1:0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            address = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if line.startswith("listening on "):
                    address = line.split()[-1].strip()
                    break
            assert address, "server never printed its listen address"

            # One-shot `repro client` commands against the live server.
            out = subprocess.run(
                [
                    sys.executable, "-m", "repro", "client",
                    "--connect", address, "--type", "describe",
                ],
                capture_output=True, text=True, env=env, timeout=60,
            )
            assert out.returncode == 0
            assert json.loads(out.stdout)["trajectories"] == len(db)

            out = subprocess.run(
                [
                    sys.executable, "-m", "repro", "client",
                    "--connect", address, "--type", "range",
                    "--workload", str(workload_path),
                ],
                capture_output=True, text=True, env=env, timeout=60,
            )
            assert out.returncode == 0
            body = json.loads(out.stdout)
            with LocalClient(db) as local:
                want = [sorted(s) for s in local.range(workload).result_sets]
            assert body["results"] == want

            out = subprocess.run(
                [
                    sys.executable, "-m", "repro", "client",
                    "--connect", address, "--type", "knn",
                    "--query-db", str(db_path), "--ids", "0", "1",
                    "-k", "2", "--eps", "250.0",
                ],
                capture_output=True, text=True, env=env, timeout=60,
            )
            assert out.returncode == 0
            assert len(json.loads(out.stdout)["neighbors"]) == 2

            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    def test_client_requires_query_db_for_knn(self, loopback):
        from repro.cli import main

        _, handle = loopback
        with pytest.raises(SystemExit, match="query-db"):
            main([
                "client", "--connect", f"{handle.host}:{handle.port}",
                "--type", "knn", "--ids", "0",
            ])
