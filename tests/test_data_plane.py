"""End-to-end property tests of the zero-copy data plane.

Three contracts:

* **Bit-identity** — every query kind returns the same answer under every
  combination of {heap, shm} store x {serial, process} executor x
  available kernel backend, with ingest batches interleaved between
  queries.  The fresh single-engine evaluation is the common reference,
  so any two cells of the matrix are transitively identical.
* **Worker death** — killing one process-executor worker mid-service
  surfaces as a single :class:`ShardExecutionError` naming exactly that
  shard; surviving shards keep answering (their pipes are drained clean).
* **Re-attach** — a rebuilt executor maps the *same* shared segments the
  first one did; nothing is re-snapshotted (the `/dev/shm` family is
  unchanged), which is the zero-copy restart the store layer exists for.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.data.stats import spatial_scale
from repro.data.store import SharedMemoryStore, shared_memory_available
from repro.queries import _kernels
from repro.service import QueryService, ShardExecutionError, ShardManager
from repro.service.executors import ProcessShardExecutor
from repro.workloads import RangeQueryWorkload
from tests.conftest import make_trajectory
from tests.test_service import knn_suite
from tests.test_service_streaming import assert_state_parity, initial_db

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this platform"
)


@pytest.fixture(params=_kernels.KERNEL_BACKENDS)
def kernel_backend(request):
    """Force one kernel backend for the duration of a test."""
    _kernels.set_backend(request.param)
    yield request.param
    _kernels.set_backend(None)


# ---------------------------------------------------------------------------
# Bit-identity across the full data-plane matrix
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("store", ["heap", "shm"])
@pytest.mark.parametrize("executor", ["serial", "process"])
def test_query_matrix_bit_identical_under_interleaved_ingest(
    store, executor, kernel_backend
):
    """{heap,shm} x {serial,process} x backends == fresh engine, always."""
    if store == "shm" and not shared_memory_available():
        pytest.skip("no shared memory on this platform")
    seed = 17
    db = initial_db(seed, n=9)
    workload = RangeQueryWorkload.from_data_distribution(db, 6, seed=seed)
    queries, windows = knn_suite(db, n_queries=2, seed=seed)
    eps = 0.10 * spatial_scale(db)
    delta = 0.15 * spatial_scale(db)
    current = db
    next_seed = 9000
    with QueryService(
        db,
        n_shards=3,
        executor=executor,
        store=store,
        # tiny compaction bound: the second round republishes the base
        # tier (a new epoch segment under shm), the first stays pending
        min_compact_points=24,
        compact_threshold=0.1,
    ) as service:
        assert service.describe()["store"] == store
        assert_state_parity(
            service, current, workload, queries, windows, eps, delta
        )
        for batch_size in (2, 3):
            batch = [
                make_trajectory(n=6, seed=next_seed + i)
                for i in range(batch_size)
            ]
            next_seed += batch_size
            service.ingest(batch)
            current = current.extended(batch)
            assert_state_parity(
                service, current, workload, queries, windows, eps, delta
            )


# ---------------------------------------------------------------------------
# Worker death (satellite: one error, named shard, clean survivors)
# ---------------------------------------------------------------------------

@needs_shm
class TestWorkerDeath:
    def test_single_error_names_dead_shard_and_survivors_stay_clean(self):
        db = initial_db(3, n=10)
        with QueryService(
            db, n_shards=3, executor="process", store="shm"
        ) as service:
            executor = service._executor
            victim = 1
            os.kill(executor.worker_pids()[victim], signal.SIGKILL)
            executor._procs[victim].join(timeout=5.0)
            with pytest.raises(ShardExecutionError) as excinfo:
                executor.broadcast("info", {})
            message = str(excinfo.value)
            assert "shard 1" in message
            assert "shard 0" not in message and "shard 2" not in message
            # Survivors' pipes were drained clean: they answer the next
            # request with fresh replies, not leftovers of the failed one.
            replies = executor.run_on([0, 2], "info", {})
            assert sorted(replies) == [0, 2]
            assert all(r["index"] in (0, 2) for r in replies.values())

    def test_service_close_reclaims_killed_workers_segments(self):
        db = initial_db(5, n=10)
        service = QueryService(
            db,
            n_shards=2,
            executor="process",
            store="shm",
            # compact on the first ingest so each worker republishes its
            # base into a worker-owned epoch segment...
            min_compact_points=1,
            compact_threshold=0.0,
        )
        try:
            service.ingest([make_trajectory(n=6, seed=777)])
            prefix = service._store.prefix
            family = [
                f for f in os.listdir("/dev/shm") if f.startswith(prefix)
            ]
            # base (2 shards x matrix+offsets) + republished epochs
            assert len(family) > 4
            # ...then SIGKILL every worker: their epoch segments are
            # orphaned (no close() ran in the children).
            for pid in service._executor.worker_pids():
                os.kill(pid, signal.SIGKILL)
            for proc in service._executor._procs:
                proc.join(timeout=5.0)
        finally:
            service.close()
        # The family owner's close swept the orphans with everything else.
        assert not [
            f for f in os.listdir("/dev/shm") if f.startswith(prefix)
        ]


# ---------------------------------------------------------------------------
# Re-attach without re-snapshotting
# ---------------------------------------------------------------------------

@needs_shm
def test_rebuilt_executor_reattaches_same_segments():
    db = initial_db(7, n=9)
    manager = ShardManager.create(db, 3, "hash")
    with SharedMemoryStore() as store:
        snapshots = manager.export_snapshots(store)
        base_segments = sorted(
            f for f in os.listdir("/dev/shm") if f.startswith(store.prefix)
        )
        assert len(base_segments) == 6  # 3 shards x (matrix, offsets)

        first = ProcessShardExecutor(snapshots)
        os.kill(first.worker_pids()[0], signal.SIGKILL)
        first._procs[0].join(timeout=5.0)
        with pytest.raises(ShardExecutionError):
            first.broadcast("info", {})
        first.close()

        # Rebuild from the SAME snapshot handles: workers re-map the
        # existing segments; nothing is copied or re-exported.
        second = ProcessShardExecutor(snapshots)
        try:
            infos = second.broadcast("info", {})
            assert sum(i["base_trajectories"] for i in infos) == len(db)
        finally:
            second.close()
        after = sorted(
            f for f in os.listdir("/dev/shm") if f.startswith(store.prefix)
        )
        assert after == base_segments
