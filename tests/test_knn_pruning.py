"""Shard-local kNN pruning: exactness, skip accounting, and extents.

The service may only skip a shard when the admissible lower bound proves
the shard cannot change any query's top-k — so every test here pins the
sharded result bit-identical to the single-database
:func:`repro.queries.knn.knn_query_batch` reference while also asserting
that skips actually happen on spatially separable data (and never lie).
"""

import numpy as np
import pytest

from repro.data import BoundingBox, Trajectory, TrajectoryDatabase
from repro.queries import knn_query_batch
from repro.service import (
    QueryService,
    SerialShardExecutor,
    ShardRuntime,
    knn_shard_lower_bound,
)


def cluster_db(
    centers=(0.0, 100.0, 200.0, 300.0), per_cluster: int = 8, seed: int = 0
) -> TrajectoryDatabase:
    """Well-separated spatial clusters sharing one time range."""
    rng = np.random.default_rng(seed)
    trajs = []
    tid = 0
    for cx in centers:
        for _ in range(per_cluster):
            n = int(rng.integers(6, 14))
            xy = rng.uniform(-3.0, 3.0, size=(n, 2)) + [cx, 0.0]
            t = np.sort(rng.uniform(0.0, 100.0, size=n)) + np.arange(n) * 1e-3
            trajs.append(Trajectory(np.column_stack([xy, t]), traj_id=tid))
            tid += 1
    return TrajectoryDatabase(trajs)


def as_pairs(pairs_lists):
    return [[(float(d), int(t)) for d, t in pairs] for pairs in pairs_lists]


class TestLowerBound:
    def test_empty_shard_is_infinite(self):
        box = BoundingBox(0.0, 1.0, 0.0, 1.0, 0.0, 1.0)
        assert np.isinf(knn_shard_lower_bound(None, box, 5, 1.0, True))

    def test_temporal_disjoint_is_infinite_for_any_measure(self):
        shard = BoundingBox(0.0, 1.0, 0.0, 1.0, 0.0, 1.0)
        window = BoundingBox(0.0, 1.0, 0.0, 1.0, 5.0, 6.0)
        assert np.isinf(knn_shard_lower_bound(shard, window, 5, 1.0, True))
        assert np.isinf(knn_shard_lower_bound(shard, window, 5, 1.0, False))

    def test_edr_gap_bound_is_window_length(self):
        shard = BoundingBox(0.0, 1.0, 0.0, 1.0, 0.0, 10.0)
        window = BoundingBox(50.0, 51.0, 0.0, 1.0, 0.0, 10.0)
        # Chebyshev gap 49 > eps 2 -> no match possible -> EDR >= n_window
        assert knn_shard_lower_bound(shard, window, 7, 2.0, True) == 7.0
        # ... but only under EDR; an opaque measure gets no spatial bound
        assert knn_shard_lower_bound(shard, window, 7, 2.0, False) == 0.0
        # gap <= eps: the shard may hold arbitrarily close candidates
        assert knn_shard_lower_bound(shard, window, 7, 100.0, True) == 0.0


class TestShardExtents:
    def test_manager_and_runtime_extents_agree(self):
        db = cluster_db()
        service = QueryService(db, n_shards=4, partitioner="spatial")
        try:
            runtime_extents = [
                r.extent() for r in service._executor.runtimes
            ]
            assert service.manager.shard_extents() == runtime_extents
        finally:
            service.close()

    def test_extents_grow_with_ingest(self):
        db = cluster_db(centers=(0.0, 100.0), per_cluster=4)
        service = QueryService(db, n_shards=2, partitioner="spatial")
        try:
            before = service.manager.shard_extents()
            far = Trajectory(
                np.array([[500.0, 0.0, 1.0], [501.0, 1.0, 2.0]]), traj_id=0
            )
            service.ingest([far])
            after = service.manager.shard_extents()
            grown = [
                a for a, b in zip(after, before) if a is not None and a != b
            ]
            assert grown  # the receiving shard's extent widened
            assert service.manager.shard_extents() == [
                r.extent() for r in service._executor.runtimes
            ]
        finally:
            service.close()

    def test_runtime_op_extent_exposed(self):
        db = cluster_db(centers=(0.0,), per_cluster=4)
        executor = SerialShardExecutor(
            QueryService(db, n_shards=2).manager.snapshots()
        )
        extents = executor.broadcast("extent", {})
        assert any(isinstance(e, BoundingBox) for e in extents)


@pytest.mark.parametrize("executor", ["serial", "process"])
class TestKnnShardSkipping:
    def test_parity_with_skips_on_clustered_data(self, executor):
        db = cluster_db()
        queries = [db[0], db[1]]  # both in the x=0 cluster
        expected = as_pairs(
            knn_query_batch(db, queries, 4, eps=5.0, return_pairs=True)
        )
        service = QueryService(
            db, n_shards=4, partitioner="spatial", executor=executor
        )
        try:
            response = service.knn(queries, 4, eps=5.0)
            assert as_pairs(response.pairs) == expected
            assert service.stats.knn_shards_skipped >= 1
            assert (
                service.stats.knn_shards_dispatched
                + service.stats.knn_shards_skipped
                == 4
            )
            assert service.stats.summary()["knn_shards_skipped"] >= 1
        finally:
            service.close()

    def test_parity_without_spatial_separation(self, executor):
        """Hash-partitioned overlapping shards: nothing skippable, still exact."""
        db = cluster_db(centers=(0.0,), per_cluster=12)
        queries = [db[0]]
        expected = as_pairs(
            knn_query_batch(db, queries, 3, eps=5.0, return_pairs=True)
        )
        service = QueryService(db, n_shards=3, executor=executor)
        try:
            assert as_pairs(service.knn(queries, 3, eps=5.0).pairs) == expected
            assert service.stats.knn_shards_skipped == 0
        finally:
            service.close()

    def test_parity_with_large_eps_disables_spatial_skips(self, executor):
        """eps spanning the clusters: the gap bound cannot fire, results exact."""
        db = cluster_db(centers=(0.0, 100.0), per_cluster=6)
        queries = [db[0]]
        expected = as_pairs(
            knn_query_batch(db, queries, 5, eps=500.0, return_pairs=True)
        )
        service = QueryService(
            db, n_shards=2, partitioner="spatial", executor=executor
        )
        try:
            assert as_pairs(service.knn(queries, 5, eps=500.0).pairs) == expected
        finally:
            service.close()

    def test_parity_under_time_windows_and_ingest(self, executor):
        db = cluster_db(centers=(0.0, 150.0), per_cluster=6, seed=3)
        queries = [db[2]]
        windows = [(10.0, 60.0)]
        service = QueryService(
            db, n_shards=3, partitioner="spatial", executor=executor
        )
        try:
            rng = np.random.default_rng(9)
            extra = []
            for j in range(4):
                n = 8
                xy = rng.uniform(-3.0, 3.0, size=(n, 2)) + [150.0, 0.0]
                t = np.sort(rng.uniform(0.0, 100.0, size=n)) + np.arange(n) * 1e-3
                extra.append(Trajectory(np.column_stack([xy, t]), traj_id=j))
            service.ingest(extra)
            reference_db = service.database()
            expected = as_pairs(
                knn_query_batch(
                    reference_db, queries, 3, windows, eps=5.0, return_pairs=True
                )
            )
            response = service.knn(queries, 3, time_windows=windows, eps=5.0)
            assert as_pairs(response.pairs) == expected
        finally:
            service.close()

    def test_knn_after_many_queries_still_counts(self, executor):
        """Counters accumulate across requests; cache hits dispatch nothing."""
        db = cluster_db(centers=(0.0, 100.0), per_cluster=6)
        queries = [db[0]]
        service = QueryService(
            db, n_shards=2, partitioner="spatial", executor=executor
        )
        try:
            service.knn(queries, 3, eps=5.0)
            first = service.stats.knn_shards_dispatched
            service.knn(queries, 3, eps=5.0)  # cache hit
            assert service.stats.knn_shards_dispatched == first
        finally:
            service.close()


class TestRuntimeBackendSpec:
    @pytest.mark.parametrize("backend", ["grid", "octree", "kdtree", "rtree", "auto"])
    def test_service_index_round_trip(self, backend):
        db = cluster_db(centers=(0.0, 50.0), per_cluster=5)
        boxes = [db[0].bounding_box, db[7].bounding_box]
        from repro.queries import QueryEngine

        expected = QueryEngine(db).evaluate(boxes)
        service = QueryService(db, n_shards=2, index=backend)
        try:
            assert service.range(boxes).result_sets == expected
            info = service.describe()
            assert info["index"] == backend
            resolved = {s["backend"] for s in info["shards"]}
            if backend != "auto":
                assert resolved == {backend}
            else:
                assert resolved <= set(
                    ("grid", "octree", "kdtree", "rtree", "temporal")
                )
        finally:
            service.close()

    def test_unknown_backend_rejected(self):
        db = cluster_db(centers=(0.0,), per_cluster=4)
        with pytest.raises(ValueError, match="unknown index backend"):
            QueryService(db, n_shards=2, index="btree")
        from repro.service import ShardManager

        manager = ShardManager.create(db, 2)
        with pytest.raises(ValueError, match="unknown index backend"):
            ShardRuntime(manager.snapshots()[0], backend="btree")
