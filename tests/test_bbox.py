"""Unit tests for the spatio-temporal bounding box."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.data import BoundingBox

coord = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


def make_box(xmin=0.0, xmax=10.0, ymin=0.0, ymax=10.0, tmin=0.0, tmax=10.0):
    return BoundingBox(xmin, xmax, ymin, ymax, tmin, tmax)


class TestConstruction:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(1.0, 0.0, 0.0, 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            BoundingBox(0.0, 1.0, 1.0, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            BoundingBox(0.0, 1.0, 0.0, 1.0, 1.0, 0.0)

    def test_zero_volume_allowed(self):
        box = BoundingBox(1.0, 1.0, 2.0, 2.0, 3.0, 3.0)
        assert box.volume == 0.0
        assert box.contains_point(1.0, 2.0, 3.0)

    def test_from_points(self):
        pts = np.array([[0.0, 5.0, 1.0], [2.0, 3.0, 4.0], [1.0, 9.0, 2.0]])
        box = BoundingBox.from_points(pts)
        assert box == BoundingBox(0.0, 2.0, 3.0, 9.0, 1.0, 4.0)

    def test_from_points_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points(np.empty((0, 3)))
        with pytest.raises(ValueError):
            BoundingBox.from_points(np.zeros((3, 2)))


class TestGeometry:
    def test_center_and_spans(self):
        box = make_box()
        assert box.center == (5.0, 5.0, 5.0)
        assert box.spans == (10.0, 10.0, 10.0)
        assert box.volume == 1000.0

    def test_contains_point_boundaries_inclusive(self):
        box = make_box()
        assert box.contains_point(0.0, 0.0, 0.0)
        assert box.contains_point(10.0, 10.0, 10.0)
        assert not box.contains_point(10.0001, 5.0, 5.0)

    def test_contains_points_vectorized_matches_scalar(self):
        box = make_box()
        rng = np.random.default_rng(3)
        pts = rng.uniform(-2.0, 12.0, size=(50, 3))
        mask = box.contains_points(pts)
        for p, m in zip(pts, mask):
            assert m == box.contains_point(*p)

    def test_intersects_symmetric(self):
        a = make_box()
        b = make_box(xmin=9.0, xmax=20.0)
        c = make_box(xmin=10.5, xmax=20.0)
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c) and not c.intersects(a)

    def test_touching_boxes_intersect(self):
        a = make_box()
        b = make_box(xmin=10.0, xmax=20.0)
        assert a.intersects(b)

    def test_contains_box(self):
        outer = make_box()
        inner = make_box(xmin=1.0, xmax=9.0, ymin=1.0, ymax=9.0, tmin=1.0, tmax=9.0)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert outer.contains_box(outer)

    def test_union(self):
        a = make_box(xmax=5.0)
        b = make_box(xmin=3.0, xmax=12.0, tmin=-1.0)
        u = a.union(b)
        assert u.xmin == 0.0 and u.xmax == 12.0 and u.tmin == -1.0

    def test_expanded(self):
        box = make_box().expanded(1.0, 2.0, 3.0)
        assert box.xmin == -1.0 and box.xmax == 11.0
        assert box.ymin == -2.0 and box.ymax == 12.0
        assert box.tmin == -3.0 and box.tmax == 13.0


class TestSplit8:
    def test_split_tiles_the_box(self):
        box = make_box()
        octants = box.split8()
        assert len(octants) == 8
        assert sum(o.volume for o in octants) == pytest.approx(box.volume)

    def test_split_octant_order_matches_bit_convention(self):
        box = make_box()
        octants = box.split8()
        # Octant 0: low halves everywhere; octant 7: high halves everywhere.
        assert octants[0].xmax == 5.0 and octants[0].ymax == 5.0
        assert octants[7].xmin == 5.0 and octants[7].tmin == 5.0
        # Bit 0 = x, bit 1 = y, bit 2 = t.
        assert octants[1].xmin == 5.0 and octants[1].ymax == 5.0
        assert octants[2].ymin == 5.0 and octants[2].xmax == 5.0
        assert octants[4].tmin == 5.0 and octants[4].xmax == 5.0

    @given(
        x=coord, y=coord, t=coord,
    )
    def test_every_point_lands_in_some_octant(self, x, y, t):
        box = make_box(-1e6 - 1, 1e6 + 1, -1e6 - 1, 1e6 + 1, -1e6 - 1, 1e6 + 1)
        hits = [o for o in box.split8() if o.contains_point(x, y, t)]
        assert len(hits) >= 1
