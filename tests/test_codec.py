"""Tests for the binary trajectory storage codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    CodecConfig,
    Trajectory,
    decode_database,
    decode_trajectory,
    encode_database,
    encode_trajectory,
    storage_report,
)
from repro.data.codec import (
    RAW_POINT_BYTES,
    read_varint,
    write_varint,
    zigzag_decode,
    zigzag_encode,
)
from tests.conftest import make_trajectory

FINE = CodecConfig(quantum_xy=1e-4, quantum_t=1e-4)


class TestVarint:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 255, 300, 2**14, 2**21 - 1, 2**32, 2**63]
    )
    def test_roundtrip(self, value):
        out = bytearray()
        write_varint(out, value)
        decoded, pos = read_varint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    def test_small_values_take_one_byte(self):
        out = bytearray()
        write_varint(out, 100)
        assert len(out) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            write_varint(bytearray(), -1)

    def test_truncated_stream_raises(self):
        out = bytearray()
        write_varint(out, 2**20)
        with pytest.raises(ValueError):
            read_varint(bytes(out[:-1]), 0)

    @given(values=st.lists(st.integers(0, 2**40), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_property_sequence_roundtrip(self, values):
        out = bytearray()
        for v in values:
            write_varint(out, v)
        data = bytes(out)
        pos = 0
        decoded = []
        for _ in values:
            v, pos = read_varint(data, pos)
            decoded.append(v)
        assert decoded == values
        assert pos == len(data)


class TestZigzag:
    def test_known_mapping(self):
        assert zigzag_encode(np.array([0, -1, 1, -2, 2])).tolist() == [
            0, 1, 2, 3, 4,
        ]

    @given(
        values=st.lists(
            st.integers(-(2**40), 2**40), min_size=1, max_size=50
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(zigzag_decode(zigzag_encode(arr)), arr)


class TestTrajectoryCodec:
    def test_roundtrip_within_quantum(self):
        traj = make_trajectory(n=50, seed=0)
        blob = encode_trajectory(traj, FINE)
        decoded, pos = decode_trajectory(blob, FINE)
        assert pos == len(blob)
        assert len(decoded) == len(traj)
        assert np.abs(decoded.points[:, :2] - traj.points[:, :2]).max() <= (
            FINE.quantum_xy / 2 + 1e-12
        )
        assert np.abs(decoded.times - traj.times).max() <= (
            FINE.quantum_t / 2 + 1e-12
        )

    def test_beats_raw_storage_on_smooth_data(self):
        """Dense, slowly moving data compresses far below 24 bytes/point."""
        t = np.arange(500.0)
        points = np.column_stack([t * 0.5, t * 0.3, t])
        traj = Trajectory(points)
        blob = encode_trajectory(traj, CodecConfig(0.01, 0.5))
        assert len(blob) < RAW_POINT_BYTES * len(traj) / 4

    def test_coarse_time_quantum_breaks_monotonicity(self):
        """Sub-interval time quanta are required; coarser ones must raise."""
        points = np.column_stack([np.arange(5.0), np.arange(5.0), np.arange(5.0)])
        traj = Trajectory(points)
        coarse = CodecConfig(quantum_xy=0.01, quantum_t=10.0)
        blob = encode_trajectory(traj, coarse)
        with pytest.raises(ValueError):
            decode_trajectory(blob, coarse)

    @given(seed=st.integers(0, 10_000), n=st.integers(2, 60))
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip(self, seed, n):
        traj = make_trajectory(n=n, seed=seed)
        blob = encode_trajectory(traj, FINE)
        decoded, _ = decode_trajectory(blob, FINE)
        assert np.abs(decoded.points - traj.points).max() <= 5e-5 + 1e-12


class TestDatabaseCodec:
    def test_roundtrip(self, small_db):
        blob = encode_database(small_db, FINE)
        decoded = decode_database(blob)
        assert len(decoded) == len(small_db)
        assert decoded.total_points == small_db.total_points
        for orig, dec in zip(small_db, decoded):
            assert np.abs(dec.points - orig.points).max() <= 5e-5 + 1e-12

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_database(b"NOPE" + b"\x00" * 40)

    def test_rejects_trailing_bytes(self, small_db):
        blob = encode_database(small_db, FINE)
        with pytest.raises(ValueError):
            decode_database(blob + b"\x00")

    def test_quanta_stored_in_header(self, small_db):
        config = CodecConfig(quantum_xy=0.5, quantum_t=0.25)
        blob = encode_database(small_db, config)
        decoded = decode_database(blob)
        # Half-quantum max error certifies the header's quanta were used.
        for orig, dec in zip(small_db, decoded):
            assert np.abs(dec.points[:, :2] - orig.points[:, :2]).max() <= 0.25 + 1e-9


class TestStorageReport:
    def test_fields(self, small_db):
        report = storage_report(small_db, FINE)
        assert report.n_points == small_db.total_points
        assert report.raw_bytes == RAW_POINT_BYTES * small_db.total_points
        assert 0 < report.encoded_bytes
        assert report.bytes_per_point == pytest.approx(
            report.encoded_bytes / report.n_points
        )

    def test_simplification_shrinks_storage(self, small_db):
        from repro.baselines import uniform_simplify_database

        simplified = uniform_simplify_database(small_db, 0.3)
        full = storage_report(small_db, FINE)
        small = storage_report(simplified, FINE)
        assert small.encoded_bytes < full.encoded_bytes

    def test_default_config(self, small_db):
        assert storage_report(small_db).encoded_bytes > 0
