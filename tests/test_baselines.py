"""Tests for the EDTS baselines: Top-Down, Bottom-Up, Span-Search, RLTS+."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    BaselineSpec,
    RLTSPolicy,
    all_baselines,
    bottom_up,
    bottom_up_database,
    get_baseline,
    rlts_simplify,
    rlts_simplify_database,
    simplify_database,
    span_search,
    skyline,
    top_down,
    top_down_database,
)
from repro.errors import trajectory_error
from tests.conftest import make_trajectory


def assert_valid_simplification(kept, n, budget):
    assert kept[0] == 0 and kept[-1] == n - 1
    assert kept == sorted(set(kept))
    assert len(kept) <= max(budget, 2)


class TestTopDown:
    def test_budget_respected(self, random_trajectory):
        for budget in (2, 5, 12):
            kept = top_down(random_trajectory, budget)
            assert_valid_simplification(kept, len(random_trajectory), budget)
            assert len(kept) == budget

    def test_budget_too_small_rejected(self, random_trajectory):
        with pytest.raises(ValueError):
            top_down(random_trajectory, 1)

    def test_budget_above_length_keeps_all(self, random_trajectory):
        kept = top_down(random_trajectory, 1000)
        assert kept == list(range(len(random_trajectory)))

    def test_picks_worst_detour_first(self, zigzag_trajectory):
        """With budget 3 the kept interior point is a maximal-error point."""
        kept = top_down(zigzag_trajectory, 3, measure="sed")
        interior = kept[1]
        pts = zigzag_trajectory.points
        from repro.errors.measures import sed_point_errors

        errors = sed_point_errors(pts, 0, len(pts) - 1)
        assert errors[interior - 1] == pytest.approx(errors.max())

    @pytest.mark.parametrize("measure", ["sed", "ped", "dad", "sad"])
    def test_all_measures_supported(self, random_trajectory, measure):
        kept = top_down(random_trajectory, 6, measure=measure)
        assert len(kept) == 6

    def test_error_trends_down_with_budget(self):
        """SED refinement is not pointwise monotone (re-synchronization can
        transiently raise the max), but on average more budget means less
        error."""
        budgets = (3, 8, 20)
        mean_errors = []
        for budget in budgets:
            errs = [
                trajectory_error(
                    make_trajectory(n=25, seed=s),
                    top_down(make_trajectory(n=25, seed=s), budget),
                )
                for s in range(15)
            ]
            mean_errors.append(np.mean(errs))
        assert mean_errors[0] > mean_errors[1] > mean_errors[2]

    def test_full_budget_zero_error(self, random_trajectory):
        kept = top_down(random_trajectory, len(random_trajectory))
        assert trajectory_error(random_trajectory, kept) == 0.0

    def test_database_variant_total_budget(self, small_db):
        budget = small_db.budget_for_ratio(0.4)
        kept = top_down_database(small_db, budget)
        assert sum(len(k) for k in kept) == budget

    def test_database_variant_rejects_tiny_budget(self, small_db):
        with pytest.raises(ValueError):
            top_down_database(small_db, 2 * len(small_db) - 1)

    def test_database_variant_favors_complex_trajectories(self, small_db):
        budget = small_db.budget_for_ratio(0.5)
        kept = top_down_database(small_db, budget)
        # Global insertion: allocation varies across trajectories.
        counts = [len(k) for k in kept]
        assert max(counts) > min(counts)


class TestBottomUp:
    def test_budget_respected(self, random_trajectory):
        for budget in (2, 5, 12):
            kept = bottom_up(random_trajectory, budget)
            assert len(kept) == budget
            assert_valid_simplification(kept, len(random_trajectory), budget)

    def test_budget_too_small_rejected(self, random_trajectory):
        with pytest.raises(ValueError):
            bottom_up(random_trajectory, 0)

    def test_budget_above_length_keeps_all(self, random_trajectory):
        assert bottom_up(random_trajectory, 999) == list(
            range(len(random_trajectory))
        )

    def test_drops_collinear_points_first(self):
        # Points 1..3 are collinear detail; point 4 is a sharp corner.
        pts = np.array(
            [[0, 0, 0], [1, 0, 1], [2, 0, 2], [3, 0, 3], [4, 5, 4], [5, 0, 5]],
            dtype=float,
        )
        kept = bottom_up(pts, 3, measure="sed")
        assert 4 in kept  # the corner survives

    @pytest.mark.parametrize("measure", ["sed", "ped", "dad", "sad"])
    def test_all_measures_supported(self, random_trajectory, measure):
        assert len(bottom_up(random_trajectory, 6, measure=measure)) == 6

    def test_database_variant_total_budget(self, small_db):
        budget = small_db.budget_for_ratio(0.4)
        kept = bottom_up_database(small_db, budget)
        assert sum(len(k) for k in kept) == budget

    def test_database_variant_sheds_redundant_first(self):
        """A heavily oversampled straight line loses points before a sparse
        zigzag does (the collective-budget motivation of the paper)."""
        from repro.data import Trajectory, TrajectoryDatabase

        straight = Trajectory(
            np.column_stack(
                [np.linspace(0, 10, 40), np.zeros(40), np.arange(40.0)]
            ),
            traj_id=0,
        )
        n = 20
        zig = Trajectory(
            np.column_stack(
                [
                    np.arange(float(n)),
                    np.where(np.arange(n) % 2 == 0, 0.0, 8.0),
                    np.arange(float(n)),
                ]
            ),
            traj_id=1,
        )
        db = TrajectoryDatabase([straight, zig])
        kept = bottom_up_database(db, 30, measure="sed")
        assert len(kept[1]) > len(kept[0])


class TestSpanSearch:
    def test_budget_respected(self, random_trajectory):
        for budget in (2, 6, 15):
            kept = span_search(random_trajectory, budget)
            assert len(kept) <= budget
            assert kept[0] == 0 and kept[-1] == len(random_trajectory) - 1

    def test_budget_above_length_keeps_all(self, random_trajectory):
        assert span_search(random_trajectory, 999) == list(
            range(len(random_trajectory))
        )

    def test_rejects_tiny_budget(self, random_trajectory):
        with pytest.raises(ValueError):
            span_search(random_trajectory, 1)

    def test_straight_line_needs_only_endpoints(self, straight_line_trajectory):
        kept = span_search(straight_line_trajectory, 5, measure="dad")
        assert kept == [0, len(straight_line_trajectory) - 1]

    def test_error_shrinks_with_budget(self, zigzag_trajectory):
        coarse = span_search(zigzag_trajectory, 4, measure="dad")
        fine = span_search(zigzag_trajectory, 12, measure="dad")
        err_coarse = trajectory_error(zigzag_trajectory, coarse, "dad")
        err_fine = trajectory_error(zigzag_trajectory, fine, "dad")
        assert err_fine <= err_coarse + 1e-9

    def test_non_dad_measures_accepted(self, random_trajectory):
        kept = span_search(random_trajectory, 8, measure="sed")
        assert len(kept) <= 8


class TestRLTS:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RLTSPolicy(j_candidates=0)

    def test_untrained_policy_simplifies(self, random_trajectory):
        policy = RLTSPolicy("sed", seed=0)
        kept = rlts_simplify(random_trajectory, 6, "sed", policy)
        assert len(kept) == 6
        assert_valid_simplification(kept, len(random_trajectory), 6)

    def test_training_runs_and_flags(self, small_db):
        policy = RLTSPolicy("sed", seed=0)
        policy.train(small_db, n_trajectories=3, episodes=1, seed=0)
        assert policy.trained
        assert len(policy.agent.memory) > 0

    def test_state_normalization(self):
        policy = RLTSPolicy("sed", j_candidates=3)
        state = policy.state_of(np.array([2.0, 4.0]))
        assert state.shape == (3,)
        assert state[2] == 0.0
        assert state[0] == pytest.approx(2.0 / 3.0)

    def test_database_variant_total_budget(self, small_db):
        policy = RLTSPolicy("sed", seed=0)
        budget = small_db.budget_for_ratio(0.4)
        kept = rlts_simplify_database(small_db, budget, "sed", policy)
        assert sum(len(k) for k in kept) == budget


class TestRegistry:
    def test_twenty_five_baselines(self):
        specs = all_baselines()
        assert len(specs) == 25
        names = [s.name for s in specs]
        assert len(set(names)) == 25
        assert "Span-Search" in names
        assert "Top-Down(E,PED)" in names
        assert "Bottom-Up(W,SAD)" in names
        assert "RLTS+(W,SED)" in names

    def test_get_baseline_by_name(self):
        spec = get_baseline("Bottom-Up(E,SED)")
        assert spec.algorithm == "bottomup"
        assert spec.measure == "sed"
        assert spec.adaptation == "E"
        with pytest.raises(KeyError):
            get_baseline("Middle-Out(E,SED)")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            BaselineSpec("quicksort", "sed", "E")
        with pytest.raises(ValueError):
            BaselineSpec("topdown", "l2", "E")
        with pytest.raises(ValueError):
            BaselineSpec("topdown", "sed", "X")
        with pytest.raises(ValueError):
            BaselineSpec("spansearch", "dad", "W")

    @pytest.mark.parametrize(
        "name",
        [
            "Top-Down(E,SED)",
            "Top-Down(W,PED)",
            "Bottom-Up(E,DAD)",
            "Bottom-Up(W,SED)",
            "RLTS+(E,SED)",
            "Span-Search",
        ],
    )
    def test_simplify_database_within_budget(self, small_db, name):
        spec = get_baseline(name)
        ratio = 0.4
        simplified = simplify_database(small_db, ratio, spec)
        assert len(simplified) == len(small_db)
        # Global budget never exceeded (up to the 2-endpoint floor).
        floor = 2 * len(small_db)
        assert simplified.total_points <= max(
            small_db.budget_for_ratio(ratio), floor
        )

    def test_simplify_database_rejects_bad_ratio(self, small_db):
        with pytest.raises(ValueError):
            simplify_database(small_db, 0.0, get_baseline("Span-Search"))

    def test_e_adaptation_uniform_w_adaptation_not(self, small_db):
        spec_e = get_baseline("Top-Down(E,SED)")
        spec_w = get_baseline("Top-Down(W,SED)")
        simp_e = simplify_database(small_db, 0.5, spec_e)
        simp_w = simplify_database(small_db, 0.5, spec_w)
        ratios_e = [len(s) / len(o) for s, o in zip(simp_e, small_db)]
        ratios_w = [len(s) / len(o) for s, o in zip(simp_w, small_db)]
        assert np.std(ratios_w) > np.std(ratios_e)


class TestSkyline:
    def test_dominated_removed(self):
        scores = {
            "a": [0.9, 0.9],
            "b": [0.5, 0.5],  # dominated by a
            "c": [0.95, 0.4],  # wins task 0
        }
        assert skyline(scores) == ["a", "c"]

    def test_identical_scores_all_kept(self):
        scores = {"a": [0.5, 0.5], "b": [0.5, 0.5]}
        assert skyline(scores) == ["a", "b"]

    def test_single_method(self):
        assert skyline({"a": [0.1]}) == ["a"]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            skyline({"a": [0.1, 0.2], "b": [0.3]})


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 200), budget=st.integers(2, 20))
def test_topdown_bottomup_produce_valid_simplifications(seed, budget):
    traj = make_trajectory(n=25, seed=seed)
    for algorithm in (top_down, bottom_up):
        kept = algorithm(traj, budget)
        assert kept[0] == 0 and kept[-1] == 24
        assert len(kept) == min(budget, 25)
        assert kept == sorted(set(kept))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100))
def test_straight_lines_simplify_losslessly(seed):
    """Any budget on a constant-velocity trajectory has zero error."""
    rng = np.random.default_rng(seed)
    n = 20
    direction = rng.normal(size=2)
    ts = np.arange(float(n))
    pts = np.column_stack([np.outer(ts, direction), ts])
    for algorithm in (top_down, bottom_up):
        kept = algorithm(pts, 4, "sed")
        assert trajectory_error(pts, kept, "sed") == pytest.approx(0.0, abs=1e-9)
