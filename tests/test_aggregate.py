"""Tests for aggregate (count / heatmap) queries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import uniform_simplify_database
from repro.data import BoundingBox, Trajectory, TrajectoryDatabase
from repro.queries import (
    count_query,
    density_histogram,
    heatmap_f1,
    histogram_similarity,
)
from tests.conftest import make_trajectory


class TestCountQuery:
    def test_whole_region_counts_everything(self, small_db):
        assert count_query(small_db, small_db.bounding_box) == (
            small_db.total_points
        )

    def test_empty_region(self, small_db):
        box = small_db.bounding_box
        far = BoundingBox(
            box.xmax + 1, box.xmax + 2, box.ymax + 1, box.ymax + 2,
            box.tmax + 1, box.tmax + 2,
        )
        assert count_query(small_db, far) == 0

    def test_matches_brute_force(self, small_db):
        rng = np.random.default_rng(0)
        points = small_db.all_points()
        for _ in range(10):
            c = points[int(rng.integers(len(points)))]
            box = BoundingBox(c[0] - 15, c[0] + 15, c[1] - 15, c[1] + 15,
                              c[2] - 10, c[2] + 10)
            expected = int(box.contains_points(points).sum())
            assert count_query(small_db, box) == expected

    def test_simplification_reduces_counts(self, small_db):
        simplified = uniform_simplify_database(small_db, 0.3)
        box = small_db.bounding_box
        assert count_query(simplified, box) < count_query(small_db, box)


class TestDensityHistogram:
    def test_total_mass_equals_points(self, small_db):
        hist = density_histogram(small_db, grid=16)
        assert hist.sum() == small_db.total_points

    def test_normalized_sums_to_one(self, small_db):
        hist = density_histogram(small_db, grid=16, normalize=True)
        assert hist.sum() == pytest.approx(1.0)

    def test_shape(self, small_db):
        assert density_histogram(small_db, grid=7).shape == (7, 7)

    def test_rejects_bad_grid(self, small_db):
        with pytest.raises(ValueError):
            density_histogram(small_db, grid=0)

    def test_external_box_ignores_outside_points(self, small_db):
        box = small_db.bounding_box
        shrunk = BoundingBox(
            box.xmin, box.center[0], box.ymin, box.center[1], box.tmin, box.tmax
        )
        hist = density_histogram(small_db, grid=8, box=shrunk)
        assert hist.sum() <= small_db.total_points

    def test_point_lands_in_correct_cell(self):
        # Two points at known positions in a unit box.
        points = np.array([[0.1, 0.1, 0.0], [0.9, 0.9, 1.0]])
        db = TrajectoryDatabase([Trajectory(points)])
        box = BoundingBox(0, 1, 0, 1, 0, 1)
        hist = density_histogram(db, grid=2, box=box)
        assert hist[0, 0] == 1
        assert hist[1, 1] == 1


class TestHistogramSimilarity:
    def test_identical(self, small_db):
        h = density_histogram(small_db, grid=8)
        assert histogram_similarity(h, h) == pytest.approx(1.0)

    def test_disjoint(self):
        a = np.zeros((4, 4))
        b = np.zeros((4, 4))
        a[0, 0] = 5
        b[3, 3] = 5
        assert histogram_similarity(a, b) == 0.0

    def test_scale_invariance(self, small_db):
        """Uniform thinning preserves the (normalized) heatmap shape."""
        h = density_histogram(small_db, grid=8)
        assert histogram_similarity(h, 0.25 * h) == pytest.approx(1.0)

    def test_both_empty(self):
        z = np.zeros((3, 3))
        assert histogram_similarity(z, z) == 1.0

    def test_one_empty(self):
        a = np.zeros((3, 3))
        b = np.ones((3, 3))
        assert histogram_similarity(a, b) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            histogram_similarity(np.zeros((2, 2)), np.zeros((3, 3)))

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_property_bounded_and_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((6, 6))
        b = rng.random((6, 6))
        s = histogram_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(histogram_similarity(b, a))


class TestHeatmapF1:
    def test_identity(self, small_db):
        assert heatmap_f1(small_db, small_db) == pytest.approx(1.0)

    def test_simplification_degrades_gracefully(self, small_db):
        light = uniform_simplify_database(small_db, 0.8)
        heavy = uniform_simplify_database(small_db, 0.1)
        s_light = heatmap_f1(small_db, light)
        s_heavy = heatmap_f1(small_db, heavy)
        assert 0.0 < s_heavy <= s_light <= 1.0

    def test_uses_original_box(self, small_db):
        """A simplified database with a smaller extent must still compare."""
        db = TrajectoryDatabase(
            [make_trajectory(n=30, seed=1), make_trajectory(n=30, seed=2)]
        )
        # Keep only endpoints: extent shrinks to the endpoints' hull.
        endpoints = db.map_simplify(lambda t: [0, len(t) - 1])
        score = heatmap_f1(db, endpoints)
        assert 0.0 <= score < 1.0
