"""Tests for aggregate (count / heatmap) queries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import uniform_simplify_database
from repro.data import BoundingBox, Trajectory, TrajectoryDatabase
from repro.queries import (
    QueryEngine,
    count_query,
    count_query_scan,
    density_histogram,
    density_histogram_scan,
    heatmap_f1,
    histogram_similarity,
)
from tests.conftest import make_trajectory


class TestCountQuery:
    def test_whole_region_counts_everything(self, small_db):
        assert count_query(small_db, small_db.bounding_box) == (
            small_db.total_points
        )

    def test_empty_region(self, small_db):
        box = small_db.bounding_box
        far = BoundingBox(
            box.xmax + 1, box.xmax + 2, box.ymax + 1, box.ymax + 2,
            box.tmax + 1, box.tmax + 2,
        )
        assert count_query(small_db, far) == 0

    def test_matches_brute_force(self, small_db):
        rng = np.random.default_rng(0)
        points = small_db.all_points()
        for _ in range(10):
            c = points[int(rng.integers(len(points)))]
            box = BoundingBox(c[0] - 15, c[0] + 15, c[1] - 15, c[1] + 15,
                              c[2] - 10, c[2] + 10)
            expected = int(box.contains_points(points).sum())
            assert count_query(small_db, box) == expected

    def test_simplification_reduces_counts(self, small_db):
        simplified = uniform_simplify_database(small_db, 0.3)
        box = small_db.bounding_box
        assert count_query(simplified, box) < count_query(small_db, box)

    @given(seed=st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_engine_route_matches_scan_on_random_boxes(self, seed):
        """count_query (engine-batched) == the per-trajectory reference scan,
        including boxes disjoint from the extent (the PR 1 out-of-extent
        regression scenario)."""
        rng = np.random.default_rng(seed)
        db = TrajectoryDatabase(
            [
                make_trajectory(n=4 + (seed + i) % 9, seed=seed + i, traj_id=i)
                for i in range(6)
            ]
        )
        extent = db.bounding_box
        span = max(extent.spans)
        for _ in range(5):
            centre = rng.uniform(-0.5 * span, 1.5 * span, size=3) + np.array(
                [extent.xmin, extent.ymin, extent.tmin]
            )
            sides = rng.uniform(0.05 * span, 0.8 * span, size=3)
            box = BoundingBox(
                centre[0] - sides[0], centre[0] + sides[0],
                centre[1] - sides[1], centre[1] + sides[1],
                centre[2] - sides[2], centre[2] + sides[2],
            )
            assert count_query(db, box) == count_query_scan(db, box)

    def test_engine_batched_counts_match_scan_batchwise(self, small_db):
        box = small_db.bounding_box
        boxes = [
            box,
            BoundingBox(
                box.xmax + 5, box.xmax + 6, box.ymin, box.ymax, box.tmin,
                box.tmax,
            ),
            BoundingBox(
                box.xmin, box.center[0], box.ymin, box.center[1], box.tmin,
                box.tmax,
            ),
        ]
        engine = QueryEngine(small_db)
        assert engine.count(boxes).tolist() == [
            count_query_scan(small_db, b) for b in boxes
        ]


class TestDensityHistogram:
    def test_total_mass_equals_points(self, small_db):
        hist = density_histogram(small_db, grid=16)
        assert hist.sum() == small_db.total_points

    def test_normalized_sums_to_one(self, small_db):
        hist = density_histogram(small_db, grid=16, normalize=True)
        assert hist.sum() == pytest.approx(1.0)

    def test_shape(self, small_db):
        assert density_histogram(small_db, grid=7).shape == (7, 7)

    def test_rejects_bad_grid(self, small_db):
        with pytest.raises(ValueError):
            density_histogram(small_db, grid=0)

    def test_external_box_ignores_outside_points(self, small_db):
        box = small_db.bounding_box
        shrunk = BoundingBox(
            box.xmin, box.center[0], box.ymin, box.center[1], box.tmin, box.tmax
        )
        hist = density_histogram(small_db, grid=8, box=shrunk)
        assert hist.sum() <= small_db.total_points

    def test_point_lands_in_correct_cell(self):
        # Two points at known positions in a unit box.
        points = np.array([[0.1, 0.1, 0.0], [0.9, 0.9, 1.0]])
        db = TrajectoryDatabase([Trajectory(points)])
        box = BoundingBox(0, 1, 0, 1, 0, 1)
        hist = density_histogram(db, grid=2, box=box)
        assert hist[0, 0] == 1
        assert hist[1, 1] == 1

    def test_cell_edge_assignment(self):
        """Interior cell edges belong to the upper cell; the closing edge of
        the raster folds into the last cell."""
        points = np.array(
            [
                [0.0, 0.0, 0.0],   # lower corner -> cell (0, 0)
                [0.5, 0.5, 1.0],   # interior edge -> upper cell (1, 1)
                [1.0, 1.0, 2.0],   # closing edge -> clamped to (1, 1)
                [0.5, 0.0, 3.0],   # mixed: edge on x only -> (1, 0)
            ]
        )
        db = TrajectoryDatabase([Trajectory(points)])
        box = BoundingBox(0, 1, 0, 1, 0, 3)
        expected = np.array([[1.0, 0.0], [1.0, 2.0]])
        np.testing.assert_array_equal(
            density_histogram(db, grid=2, box=box), expected
        )
        np.testing.assert_array_equal(
            density_histogram_scan(db, grid=2, box=box), expected
        )

    @given(seed=st.integers(0, 300), grid=st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_engine_route_matches_scan(self, seed, grid):
        db = TrajectoryDatabase(
            [make_trajectory(n=5 + i, seed=seed + i, traj_id=i) for i in range(4)]
        )
        np.testing.assert_array_equal(
            density_histogram(db, grid=grid), density_histogram_scan(db, grid=grid)
        )
        np.testing.assert_array_equal(
            density_histogram(db, grid=grid, normalize=True),
            density_histogram_scan(db, grid=grid, normalize=True),
        )


class TestHistogramSimilarity:
    def test_identical(self, small_db):
        h = density_histogram(small_db, grid=8)
        assert histogram_similarity(h, h) == pytest.approx(1.0)

    def test_disjoint(self):
        a = np.zeros((4, 4))
        b = np.zeros((4, 4))
        a[0, 0] = 5
        b[3, 3] = 5
        assert histogram_similarity(a, b) == 0.0

    def test_scale_invariance(self, small_db):
        """Uniform thinning preserves the (normalized) heatmap shape."""
        h = density_histogram(small_db, grid=8)
        assert histogram_similarity(h, 0.25 * h) == pytest.approx(1.0)

    def test_both_empty(self):
        z = np.zeros((3, 3))
        assert histogram_similarity(z, z) == 1.0

    def test_one_empty(self):
        a = np.zeros((3, 3))
        b = np.ones((3, 3))
        assert histogram_similarity(a, b) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            histogram_similarity(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_normalization_is_internal(self):
        """Inputs are normalized inside: pre-normalizing must not change the
        score, whatever the raw totals."""
        rng = np.random.default_rng(3)
        a = 1e9 * rng.random((5, 5))
        b = 1e-9 * rng.random((5, 5))
        raw = histogram_similarity(a, b)
        assert raw == pytest.approx(
            histogram_similarity(a / a.sum(), b / b.sum())
        )
        assert 0.0 < raw < 1.0

    def test_single_cell_mass(self):
        a = np.zeros((3, 3))
        a[1, 1] = 7.0
        assert histogram_similarity(a, a * 123.0) == pytest.approx(1.0)

    def test_empty_vs_normalized_empty(self):
        """A zero histogram cannot be normalized; one-sided zero is 0.0 and
        two-sided zero is perfect agreement, regardless of the other side's
        scale."""
        z = np.zeros((4, 4))
        tiny = np.full((4, 4), 1e-300)
        assert histogram_similarity(z, tiny) == 0.0
        assert histogram_similarity(tiny, tiny) == pytest.approx(1.0)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_property_bounded_and_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((6, 6))
        b = rng.random((6, 6))
        s = histogram_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(histogram_similarity(b, a))


class TestHeatmapF1:
    def test_identity(self, small_db):
        assert heatmap_f1(small_db, small_db) == pytest.approx(1.0)

    def test_simplification_degrades_gracefully(self, small_db):
        light = uniform_simplify_database(small_db, 0.8)
        heavy = uniform_simplify_database(small_db, 0.1)
        s_light = heatmap_f1(small_db, light)
        s_heavy = heatmap_f1(small_db, heavy)
        assert 0.0 < s_heavy <= s_light <= 1.0

    def test_uses_original_box(self, small_db):
        """A simplified database with a smaller extent must still compare."""
        db = TrajectoryDatabase(
            [make_trajectory(n=30, seed=1), make_trajectory(n=30, seed=2)]
        )
        # Keep only endpoints: extent shrinks to the endpoints' hull.
        endpoints = db.map_simplify(lambda t: [0, len(t) - 1])
        score = heatmap_f1(db, endpoints)
        assert 0.0 <= score < 1.0
