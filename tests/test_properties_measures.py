"""Hypothesis property tests on error measures and simplifier contracts.

These pin down the geometric invariants the error measures must satisfy
(translation invariance, scaling behaviour, ordering relations) and the
structural contract every simplifier in the package shares (sorted unique
kept indices, endpoints present, budget respected).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    bottom_up,
    dead_reckoning,
    error_bounded_simplify,
    optimal_min_error,
    squish,
    top_down,
    uniform_simplify,
)
from repro.data import Trajectory
from repro.errors import trajectory_error
from repro.errors.measures import (
    dad_error,
    ped_error,
    ped_point_errors,
    sad_error,
    sed_error,
    sed_point_errors,
)
from tests.conftest import make_trajectory

MEASURES = ("sed", "ped", "dad", "sad")


def translated(traj: Trajectory, dx: float, dy: float) -> Trajectory:
    pts = traj.points.copy()
    pts[:, 0] += dx
    pts[:, 1] += dy
    return Trajectory(pts, traj_id=traj.traj_id)


def scaled(traj: Trajectory, factor: float) -> Trajectory:
    pts = traj.points.copy()
    pts[:, :2] *= factor
    return Trajectory(pts, traj_id=traj.traj_id)


class TestGeometricInvariants:
    @given(
        seed=st.integers(0, 500),
        dx=st.floats(-1e4, 1e4),
        dy=st.floats(-1e4, 1e4),
    )
    @settings(max_examples=40, deadline=None)
    def test_translation_invariance(self, seed, dx, dy):
        traj = make_trajectory(n=12, seed=seed)
        moved = translated(traj, dx, dy)
        s, e = 0, len(traj) - 1
        for fn in (sed_error, ped_error, dad_error):
            assert fn(moved.points, s, e) == pytest.approx(
                fn(traj.points, s, e), rel=1e-6, abs=1e-6
            )

    @given(seed=st.integers(0, 500), factor=st.floats(0.1, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_distance_measures_scale_linearly(self, seed, factor):
        traj = make_trajectory(n=12, seed=seed)
        grown = scaled(traj, factor)
        s, e = 0, len(traj) - 1
        for fn in (sed_error, ped_error):
            assert fn(grown.points, s, e) == pytest.approx(
                factor * fn(traj.points, s, e), rel=1e-6, abs=1e-9
            )

    @given(seed=st.integers(0, 500), factor=st.floats(0.1, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_direction_measure_scale_invariant(self, seed, factor):
        """DAD compares angles, so uniform scaling must not change it."""
        traj = make_trajectory(n=12, seed=seed)
        grown = scaled(traj, factor)
        s, e = 0, len(traj) - 1
        assert dad_error(grown.points, s, e) == pytest.approx(
            dad_error(traj.points, s, e), rel=1e-6, abs=1e-9
        )

    @given(seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_ped_never_exceeds_sed(self, seed):
        """The perpendicular foot is the closest chord point; the
        synchronized point is some chord point — so PED <= SED pointwise."""
        traj = make_trajectory(n=15, seed=seed)
        s, e = 0, len(traj) - 1
        ped = ped_point_errors(traj.points, s, e)
        sed = sed_point_errors(traj.points, s, e)
        assert (ped <= sed + 1e-9).all()

    @given(seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_all_measures_non_negative(self, seed):
        traj = make_trajectory(n=10, seed=seed)
        s, e = 0, len(traj) - 1
        for fn in (sed_error, ped_error, dad_error, sad_error):
            assert fn(traj.points, s, e) >= 0.0

    @given(seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_direct_segment_has_zero_error(self, seed):
        """A segment spanning two adjacent points approximates nothing."""
        traj = make_trajectory(n=10, seed=seed)
        for measure in MEASURES:
            assert trajectory_error(
                traj, list(range(len(traj))), measure=measure
            ) == pytest.approx(0.0, abs=1e-12)


SIMPLIFIERS = {
    "top_down": lambda t, b: top_down(t, b),
    "bottom_up": lambda t, b: bottom_up(t, b),
    "squish": lambda t, b: squish(t, b),
    "optimal": lambda t, b: list(optimal_min_error(t, b).indices),
    "uniform": lambda t, b: uniform_simplify(t, b),
}


class TestSimplifierContract:
    @pytest.mark.parametrize("name", sorted(SIMPLIFIERS))
    @given(seed=st.integers(0, 300), budget=st.integers(2, 12))
    @settings(max_examples=20, deadline=None)
    def test_budgeted_contract(self, name, seed, budget):
        traj = make_trajectory(n=14, seed=seed)
        kept = SIMPLIFIERS[name](traj, budget)
        assert kept[0] == 0 and kept[-1] == len(traj) - 1
        assert kept == sorted(set(kept))
        assert len(kept) <= max(budget, 2)
        traj.subsample(kept)  # must be a valid simplification

    @given(seed=st.integers(0, 300), tol=st.floats(0.1, 200.0))
    @settings(max_examples=25, deadline=None)
    def test_error_bounded_contract(self, seed, tol):
        traj = make_trajectory(n=14, seed=seed)
        for simplifier in (error_bounded_simplify, dead_reckoning):
            kept = simplifier(traj, tol)
            assert kept[0] == 0 and kept[-1] == len(traj) - 1
            assert kept == sorted(set(kept))
        # error_bounded additionally guarantees the SED bound.
        kept = error_bounded_simplify(traj, tol)
        assert trajectory_error(traj, kept, measure="sed") <= tol + 1e-9


class TestTreeEquivalence:
    @given(seed=st.integers(0, 200), depth=st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_octree_and_kdtree_index_identical_point_sets(self, seed, depth):
        from repro.data import TrajectoryDatabase
        from repro.index import KDTree, Octree

        db = TrajectoryDatabase(
            [make_trajectory(n=12, seed=seed + i, traj_id=i) for i in range(4)]
        )
        oct_ = Octree(db, max_depth=depth, leaf_capacity=4)
        kd = KDTree(db, max_depth=depth, leaf_capacity=4)
        assert sorted(oct_.collect_points(oct_.root)) == sorted(
            kd.collect_points(kd.root)
        )
