"""Tests of the cost-based backend planner and adaptive-resolution fallbacks.

The planner's contract: whatever backend it picks (or is forced to), engine
answers are identical — only the cost estimates differ — and it must accept
ANY workload, including the degenerate ones `adaptive_resolution` used to
blow up on (all boxes zero-extent, a single query, an empty workload).
"""

import numpy as np
import pytest

from repro.data import BoundingBox, Trajectory, TrajectoryDatabase
from repro.index import (
    BACKENDS,
    FALLBACK_RESOLUTION,
    GridBackend,
    GridIndex,
    adaptive_resolution,
)
from repro.queries import QueryEngine, plan_workload
from repro.queries.planner import PLANNER_BACKENDS, estimate_backend_costs
from repro.workloads import RangeQueryWorkload


def small_db(seed: int = 1, n_traj: int = 8) -> TrajectoryDatabase:
    rng = np.random.default_rng(seed)
    trajs = []
    for i in range(n_traj):
        n = int(rng.integers(3, 12))
        xy = rng.uniform(0.0, 80.0, size=(n, 2))
        t = np.sort(rng.uniform(0.0, 30.0, size=n)) + np.arange(n) * 1e-3
        trajs.append(Trajectory(np.column_stack([xy, t]), traj_id=i))
    return TrajectoryDatabase(trajs)


class TestAdaptiveResolutionDegenerateWorkloads:
    """Regression: degenerate workloads get the explicit fallback, not an
    arbitrary clamp-and-halve blow-up."""

    def test_all_zero_extent_boxes_fall_back(self):
        db = small_db()
        probes = [BoundingBox(5.0, 5.0, 5.0, 5.0, 2.0, 2.0)] * 10
        assert adaptive_resolution(db.bounding_box, probes) == FALLBACK_RESOLUTION

    def test_single_zero_extent_query_falls_back(self):
        db = small_db()
        probe = [BoundingBox(1.0, 1.0, 2.0, 2.0, 3.0, 3.0)]
        assert adaptive_resolution(db.bounding_box, probe) == FALLBACK_RESOLUTION

    def test_empty_workload_falls_back(self):
        db = small_db()
        assert adaptive_resolution(db.bounding_box, []) == FALLBACK_RESOLUTION

    def test_per_axis_fallback_mixes_with_real_extents(self):
        """Only the degenerate axes fall back; healthy axes still adapt."""
        db = small_db()
        ext = db.bounding_box
        # x spans half the extent; y and t are zero-extent on every box.
        boxes = [
            BoundingBox(ext.xmin, ext.xmin + 0.5 * (ext.xmax - ext.xmin),
                        3.0, 3.0, 4.0, 4.0)
            for _ in range(5)
        ]
        res = adaptive_resolution(ext, boxes)
        assert res[0] == 2  # ceil(span / (span/2))
        assert res[1] == FALLBACK_RESOLUTION[1]
        assert res[2] == FALLBACK_RESOLUTION[2]

    def test_custom_fallback_respected_and_validated(self):
        db = small_db()
        assert adaptive_resolution(
            db.bounding_box, [], fallback=(4, 4, 2)
        ) == (4, 4, 2)
        with pytest.raises(ValueError, match="fallback"):
            adaptive_resolution(db.bounding_box, [], fallback=(0, 4, 2))

    def test_grid_adaptive_accepts_degenerate_workload(self):
        db = small_db()
        probes = [BoundingBox(5.0, 5.0, 5.0, 5.0, 2.0, 2.0)]
        grid = GridIndex.adaptive(db, probes)
        assert grid.resolution == FALLBACK_RESOLUTION

    def test_answers_invariant_under_fallback_resolution(self):
        db = small_db()
        p = db[0].points[1]
        probe = BoundingBox(p[0], p[0], p[1], p[1], p[2], p[2])
        engine = QueryEngine(db, grid=GridIndex.adaptive(db, [probe]))
        from repro.queries import RangeQuery, range_query

        assert engine.evaluate([probe]) == [range_query(db, RangeQuery(probe))]


class TestPlanner:
    def test_auto_picks_a_known_backend(self):
        db = small_db()
        workload = RangeQueryWorkload.generate("data", db, 12, seed=2)
        plan = plan_workload(db, workload)
        assert plan.chosen_by == "auto"
        assert plan.name in PLANNER_BACKENDS
        assert plan.backend.name == plan.name
        assert set(plan.costs) == set(PLANNER_BACKENDS)
        assert all(c >= 0.0 for c in plan.costs.values())
        # auto = argmin of the estimates
        assert plan.costs[plan.name] == min(plan.costs.values())

    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_override_forces_backend(self, name):
        db = small_db()
        workload = RangeQueryWorkload.generate("data", db, 12, seed=2)
        plan = plan_workload(db, workload, index=name)
        assert plan.chosen_by == "override"
        assert plan.name == name
        assert isinstance(plan.backend, BACKENDS[name])

    def test_unknown_override_rejected(self):
        db = small_db()
        with pytest.raises(ValueError, match="unknown index backend"):
            plan_workload(db, [], index="btree")

    def test_grid_plan_uses_adaptive_resolution(self):
        db = small_db()
        workload = RangeQueryWorkload.generate("data", db, 12, seed=2)
        plan = plan_workload(db, workload, index="grid")
        assert isinstance(plan.backend, GridBackend)
        assert plan.backend.resolution == adaptive_resolution(
            db.bounding_box, workload
        )

    def test_degenerate_workloads_plan_without_error(self):
        db = small_db()
        for degenerate in ([], [BoundingBox(1.0, 1.0, 2.0, 2.0, 3.0, 3.0)]):
            plan = plan_workload(db, degenerate)
            assert plan.name in PLANNER_BACKENDS
            assert plan.resolution == FALLBACK_RESOLUTION

    def test_costs_independent_of_choice(self):
        db = small_db()
        workload = RangeQueryWorkload.generate("data", db, 12, seed=2)
        costs, resolution = estimate_backend_costs(db, workload)
        for name in PLANNER_BACKENDS:
            plan = plan_workload(db, workload, index=name)
            assert plan.costs == costs
            assert plan.resolution == resolution

    def test_planned_backends_answer_identically(self):
        db = small_db()
        workload = RangeQueryWorkload.generate("data", db, 12, seed=2)
        expected = QueryEngine(db).evaluate(workload)
        for name in PLANNER_BACKENDS:
            plan = plan_workload(db, workload, index=name)
            engine = QueryEngine(db, backend=plan.backend)
            assert engine.evaluate(workload) == expected, name
