"""Tests for the encode / decode / workload CLI subcommands."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.data import load_database, save_database
from repro.workloads import RangeQueryWorkload


@pytest.fixture
def db_path(small_db, tmp_path):
    path = tmp_path / "db.npz"
    save_database(small_db, path)
    return path


class TestEncodeDecodeCommands:
    def test_encode_then_decode_roundtrip(self, small_db, db_path, tmp_path, capsys):
        blob = tmp_path / "db.bin"
        assert main([
            "encode", "--db", str(db_path), "--out", str(blob),
            "--quantum-xy", "0.0001", "--quantum-t", "0.0001",
        ]) == 0
        out = capsys.readouterr().out
        assert "bytes/point" in out
        assert blob.stat().st_size > 0

        restored_path = tmp_path / "restored.npz"
        assert main([
            "decode", "--blob", str(blob), "--out", str(restored_path),
        ]) == 0
        restored = load_database(restored_path)
        assert restored.total_points == small_db.total_points
        for orig, back in zip(small_db, restored):
            assert np.abs(orig.points - back.points).max() < 1e-3

    def test_decode_to_geojson(self, db_path, tmp_path):
        blob = tmp_path / "db.bin"
        main(["encode", "--db", str(db_path), "--out", str(blob)])
        out = tmp_path / "db.geojson"
        assert main(["decode", "--blob", str(blob), "--out", str(out)]) == 0
        assert out.read_text().startswith('{"type": "FeatureCollection"')


class TestWorkloadCommand:
    @pytest.mark.parametrize("distribution", ["data", "uniform", "gaussian", "zipf"])
    def test_generates_and_saves(self, db_path, tmp_path, distribution, capsys):
        out = tmp_path / "wl.json"
        assert main([
            "workload", "--db", str(db_path),
            "--distribution", distribution,
            "-n", "15", "--seed", "3", "--out", str(out),
        ]) == 0
        workload = RangeQueryWorkload.load(out)
        assert len(workload) == 15
        assert workload.distribution == distribution

    def test_gaussian_params_forwarded(self, db_path, tmp_path):
        out = tmp_path / "wl.json"
        main([
            "workload", "--db", str(db_path), "--distribution", "gaussian",
            "--mu", "0.8", "--sigma", "0.1", "-n", "10", "--out", str(out),
        ])
        workload = RangeQueryWorkload.load(out)
        assert workload.params["mu"] == 0.8

    def test_rejects_unknown_distribution(self, db_path, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "workload", "--db", str(db_path),
                "--distribution", "cauchy", "--out", str(tmp_path / "x.json"),
            ])
