"""Unit tests for the optional compiled kernel layer.

The ``_impl`` functions in :mod:`repro.queries._kernels` are plain
Python (numba jits them only when importable), so their bit-identity
against the vectorized numpy references is testable on every
interpreter — with numba present the jitted versions run the very same
source. Dispatch behavior (``None`` under the numpy backend, so call
sites fall through) and backend selection are covered separately; the
full engine-level matrix lives in ``tests/test_data_plane.py``.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.queries import _kernels
from repro.queries.edr import edr_distance, edr_distances_pairs

PAD = 1e18  # sentinel that can never satisfy the EDR match test


# ---------------------------------------------------------------------------
# Backend selection & dispatch
# ---------------------------------------------------------------------------

def test_kernel_backends_reflect_numba_availability():
    if _kernels.HAVE_NUMBA:
        assert _kernels.KERNEL_BACKENDS == ("numpy", "numba")
    else:
        assert _kernels.KERNEL_BACKENDS == ("numpy",)
    assert _kernels.active_backend() in _kernels.KERNEL_BACKENDS


def test_set_backend_roundtrip_and_validation():
    default = _kernels.active_backend()
    try:
        assert _kernels.set_backend("numpy") == "numpy"
        assert _kernels.active_backend() == "numpy"
        with pytest.raises(ValueError):
            _kernels.set_backend("cuda")
        if not _kernels.HAVE_NUMBA:
            with pytest.raises(ValueError):
                _kernels.set_backend("numba")
        assert _kernels.set_backend("auto") == default
        assert _kernels.set_backend(None) == default
    finally:
        _kernels.set_backend(None)


def test_dispatchers_return_none_under_numpy_backend():
    _kernels.set_backend("numpy")
    try:
        ax = np.zeros((1, 2))
        assert _kernels.edr_pairs(ax, ax, ax, ax, [2], [2], 0.5) is None
        assert _kernels.expand_rows(
            np.zeros(1, np.int64), np.ones(1, np.int64), np.zeros(1, np.int64),
            np.zeros(1), np.zeros(1), np.zeros(1),
            (np.zeros(1),) * 3, (np.ones(1),) * 3,
        ) is None
        assert _kernels.interp_chunk(
            np.linspace(0, 1, 3), np.arange(2.0), np.arange(2.0),
            np.arange(2.0), np.array([0, 2], np.int64),
            np.zeros(1, np.int64),
        ) is None
    finally:
        _kernels.set_backend(None)


def test_env_override_validated_at_import():
    """A bogus REPRO_KERNELS fails fast; numpy forces the fallback stance."""
    code = "import repro.queries._kernels"
    bogus = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": "src", "REPRO_KERNELS": "bogus", "PATH": "/usr/bin"},
        capture_output=True, text=True, cwd=".",
    )
    assert bogus.returncode != 0
    assert "REPRO_KERNELS" in bogus.stderr
    forced = subprocess.run(
        [sys.executable, "-c",
         "from repro.queries import _kernels; "
         "assert not _kernels.HAVE_NUMBA; "
         "assert _kernels.active_backend() == 'numpy'"],
        env={"PYTHONPATH": "src", "REPRO_KERNELS": "numpy", "PATH": "/usr/bin"},
        capture_output=True, text=True, cwd=".",
    )
    assert forced.returncode == 0, forced.stderr


@pytest.mark.skipif(_kernels.HAVE_NUMBA, reason="numba is importable here")
def test_forcing_numba_without_numba_raises_at_import():
    proc = subprocess.run(
        [sys.executable, "-c", "import repro.queries._kernels"],
        env={"PYTHONPATH": "src", "REPRO_KERNELS": "numba", "PATH": "/usr/bin"},
        capture_output=True, text=True, cwd=".",
    )
    assert proc.returncode != 0
    assert "numba" in proc.stderr


# ---------------------------------------------------------------------------
# Implementation bit-identity vs the vectorized references
# ---------------------------------------------------------------------------

def _padded_pairs(rng, n_pairs, eps):
    """Random variable-length xy pairs padded the way edr.py pads them."""
    n_lens = rng.integers(0, 7, size=n_pairs)
    m_lens = rng.integers(0, 7, size=n_pairs)
    n_max, m_max = max(int(n_lens.max()), 1), max(int(m_lens.max()), 1)
    ax = np.full((n_pairs, n_max), PAD)
    ay = np.full((n_pairs, n_max), PAD)
    bx = np.full((n_pairs, m_max), -PAD)
    by = np.full((n_pairs, m_max), -PAD)
    a_list, b_list = [], []
    for p in range(n_pairs):
        n, m = int(n_lens[p]), int(m_lens[p])
        a = rng.uniform(0, 3 * eps, size=(n, 2))
        b = rng.uniform(0, 3 * eps, size=(m, 2))
        ax[p, :n], ay[p, :n] = a[:, 0], a[:, 1]
        bx[p, :m], by[p, :m] = b[:, 0], b[:, 1]
        a_list.append(a)
        b_list.append(b)
    return ax, ay, bx, by, n_lens, m_lens, a_list, b_list


def test_edr_pairs_impl_matches_reference_including_empty_sides():
    rng = np.random.default_rng(42)
    eps = 0.8
    ax, ay, bx, by, n_lens, m_lens, a_list, b_list = _padded_pairs(rng, 25, eps)
    got = _kernels._edr_pairs_impl(ax, ay, bx, by, n_lens, m_lens, eps)
    expected = np.array(
        [edr_distance(a, b, eps) for a, b in zip(a_list, b_list)]
    )
    np.testing.assert_array_equal(got, expected)
    # ...and the batched vectorized formulation agrees too (transitivity).
    nonempty = [(a, b) for a, b in zip(a_list, b_list)]
    np.testing.assert_array_equal(
        edr_distances_pairs([a for a, _ in nonempty],
                            [b for _, b in nonempty], eps),
        expected,
    )


def test_expand_rows_impl_matches_numpy_sweep():
    rng = np.random.default_rng(7)
    n_points, n_pairs, n_queries = 60, 9, 4
    px, py = rng.uniform(0, 10, n_points), rng.uniform(0, 10, n_points)
    pt = np.sort(rng.uniform(0, 100, n_points))
    starts = rng.integers(0, n_points - 8, n_pairs).astype(np.int64)
    lengths = rng.integers(0, 8, n_pairs).astype(np.int64)
    q_idx = rng.integers(0, n_queries, n_pairs).astype(np.int64)
    lo = rng.uniform(0, 5, (n_queries, 3))
    hi = lo + rng.uniform(0, 6, (n_queries, 3))
    lo[:, 2] *= 20
    hi[:, 2] *= 20
    rows, row_query, inside = _kernels._expand_rows_impl(
        starts, lengths, q_idx, px, py, pt,
        lo[:, 0], lo[:, 1], lo[:, 2], hi[:, 0], hi[:, 1], hi[:, 2],
    )
    # Reference: the repeat/arange expansion + vectorized containment the
    # numpy path in QueryEngine._expand_pairs performs.
    exp_rows = np.concatenate(
        [np.arange(s, s + ln) for s, ln in zip(starts, lengths)]
    ).astype(np.int64) if lengths.sum() else np.empty(0, np.int64)
    exp_query = np.repeat(q_idx, lengths)
    x, y, t = px[exp_rows], py[exp_rows], pt[exp_rows]
    ql, qh = lo[exp_query], hi[exp_query]
    exp_inside = (
        (x >= ql[:, 0]) & (x <= qh[:, 0])
        & (y >= ql[:, 1]) & (y <= qh[:, 1])
        & (t >= ql[:, 2]) & (t <= qh[:, 2])
    )
    np.testing.assert_array_equal(rows, exp_rows)
    np.testing.assert_array_equal(row_query, exp_query)
    np.testing.assert_array_equal(inside, exp_inside)


def test_interp_chunk_impl_matches_per_row_interp():
    rng = np.random.default_rng(3)
    offsets = np.array([0, 4, 9, 11], np.int64)
    total = int(offsets[-1])
    ot = np.sort(rng.uniform(0, 50, total))
    ox, oy = rng.normal(size=total), rng.normal(size=total)
    grid = np.linspace(-5, 55, 13)
    ids = np.array([2, 0, 1], np.int64)
    got = _kernels._interp_chunk_impl(grid, ot, ox, oy, offsets, ids)
    expected = np.empty((len(ids), len(grid), 2))
    for row, tid in enumerate(ids):
        s, e = offsets[tid], offsets[tid + 1]
        expected[row, :, 0] = np.interp(grid, ot[s:e], ox[s:e])
        expected[row, :, 1] = np.interp(grid, ot[s:e], oy[s:e])
    np.testing.assert_array_equal(got, expected)


@pytest.mark.skipif(not _kernels.HAVE_NUMBA, reason="numba not importable")
def test_jitted_dispatch_equals_numpy_path():
    rng = np.random.default_rng(11)
    eps = 0.8
    ax, ay, bx, by, n_lens, m_lens, a_list, b_list = _padded_pairs(rng, 12, eps)
    _kernels.set_backend("numba")
    try:
        got = _kernels.edr_pairs(ax, ay, bx, by, n_lens, m_lens, eps)
    finally:
        _kernels.set_backend(None)
    assert got is not None
    np.testing.assert_array_equal(
        got, np.array([edr_distance(a, b, eps) for a, b in zip(a_list, b_list)])
    )
