"""Replication, failover & live rebalancing — the PR 10 property suite.

Four contracts:

* **Transparent failover** — with ``replicas >= 2``, SIGKILL of any single
  worker mid-workload loses zero queries: a sibling replica answers, the
  request layer never sees an error, and answers stay bit-identical to a
  fresh single engine. Only when *every* replica of a shard is dead does
  a query raise, naming exactly that shard.
* **Restart = snapshot + replay** — a replica restarted by
  ``restart_dead()`` (or the watchdog) rebuilds from the current base
  segments plus the replayed pending ingest log and answers identically
  to the replicas that never died.
* **Online split/merge** — resharding a live service (explicitly or via
  ``rebalance_threshold``) republishes segments at a new epoch and swaps
  routing atomically; queries before and after are bit-identical to the
  single-engine reference.
* **Chaos closure** — arbitrary interleavings of ingest / query / kill /
  restart / split / merge across {heap, shm} x {serial, process} keep
  the service bit-identical to the reference at every query point.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.client import AsyncRemoteClient, LocalClient
from repro.data import Trajectory
from repro.data.stats import spatial_scale
from repro.data.store import shared_memory_available
from repro.service import (
    QueryService,
    ShardExecutionError,
    Watchdog,
    serve_in_thread,
)
from repro.workloads import RangeQueryWorkload
from tests.conftest import make_trajectory
from tests.test_server import server_db
from tests.test_service import knn_suite
from tests.test_service_streaming import assert_state_parity, initial_db

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this platform"
)


def parity_kit(db, seed):
    """The fixed query suite every parity assertion replays."""
    workload = RangeQueryWorkload.from_data_distribution(db, 6, seed=seed)
    queries, windows = knn_suite(db, n_queries=2, seed=seed)
    eps = 0.10 * spatial_scale(db)
    delta = 0.15 * spatial_scale(db)
    return workload, queries, windows, eps, delta


def skewed_trajectory(seed: int, lo=0.0, hi=4.0, n=8) -> Trajectory:
    """A trajectory confined to a narrow x slab (drives spatial skew)."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(lo, hi, size=n)
    y = rng.uniform(0.0, 100.0, size=n)
    t = np.cumsum(rng.uniform(1.0, 5.0, size=n))
    return Trajectory(np.column_stack([x, y, t]))


def kill_replica(replica) -> None:
    os.kill(replica.proc.pid, signal.SIGKILL)
    replica.proc.join(timeout=5.0)


# ---------------------------------------------------------------------------
# Topology & probes
# ---------------------------------------------------------------------------

class TestReplicaTopology:
    def test_replicas_spawn_probe_and_report(self):
        db = initial_db(11, n=8)
        with QueryService(
            db, n_shards=3, executor="process", replicas=2
        ) as service:
            executor = service._executor
            assert executor.n_workers == 6
            assert len(set(executor.worker_pids())) == 6
            probe = executor.liveness()
            assert probe["alive"] is True
            assert probe["dead_shards"] == []
            assert probe["replicas_live"] == probe["replicas_total"] == 6
            assert [s["shard"] for s in probe["shards"]] == [0, 1, 2]

            info = service.describe()
            assert info["replicas"] == 2
            assert info["replication"]["replicas_per_shard"] == 2
            assert info["replication"]["dead_shards"] == []

            report = service.metrics_report()
            assert report["replication"]["replicas_live"] == 6
            gauges = report["replication"]["counters"]["gauges"]
            assert gauges["replication.replicas_live"] == 6

    def test_parameter_validation(self):
        db = initial_db(1, n=4)
        with pytest.raises(ValueError, match="replicas"):
            QueryService(db, n_shards=2, replicas=0)
        with pytest.raises(ValueError, match="rebalance_threshold"):
            QueryService(db, n_shards=2, rebalance_threshold=1.0)

    def test_serial_executor_implements_the_same_probe_surface(self):
        db = initial_db(2, n=6)
        with QueryService(
            db, n_shards=2, executor="serial", replicas=2
        ) as service:
            executor = service._executor
            probe = executor.liveness()
            assert probe["alive"] is True
            assert probe["dead_shards"] == []
            assert probe["replicas_live"] == probe["replicas_total"] == 2
            assert executor.ping(deadline=0.1) == 0
            assert executor.restart_dead() == 0
            stats = executor.replication_stats()
            assert stats["replicas_per_shard"] == 1  # in-process: no peers
            assert stats["dead_shards"] == []
            assert service.metrics_report()["replication"]["replicas_live"] == 2


# ---------------------------------------------------------------------------
# Failover & restart
# ---------------------------------------------------------------------------

class TestFailover:
    def test_single_kill_is_invisible_and_restart_replays_pending(self):
        seed = 23
        db = initial_db(seed, n=9)
        kit = parity_kit(db, seed)
        current = db
        with QueryService(
            db, n_shards=3, executor="process", replicas=2
        ) as service:
            executor = service._executor
            # A pending-tier batch the restarted replica must replay.
            batch = [make_trajectory(n=6, seed=9100 + i) for i in range(3)]
            service.ingest(batch)
            current = current.extended(batch)
            assert_state_parity(service, current, *kit)

            kill_replica(executor.replica_sets[1].replicas[0])
            # Queries keep answering through the sibling replica.
            assert_state_parity(service, current, *kit)
            probe = executor.liveness()
            assert probe["dead_shards"] == []
            assert probe["replicas_live"] == 5

            assert executor.restart_dead() == 1
            assert executor.liveness()["replicas_live"] == 6
            # The restarted replica answers too (snapshot + replayed log).
            assert_state_parity(service, current, *kit)

            # Delta catch-up: ingest after the restart stays consistent.
            batch = [make_trajectory(n=5, seed=9200 + i) for i in range(2)]
            service.ingest(batch)
            current = current.extended(batch)
            assert_state_parity(service, current, *kit)

            stats = executor.replication_stats()
            assert stats["counters"]["counters"]["replication.restarts"] == 1
            latency = stats["counters"]["histograms"][
                "replication.restart_latency_s"
            ]
            assert latency["count"] == 1

    def test_liveness_names_fully_dead_shard_without_any_query(self):
        db = initial_db(31, n=8)
        with QueryService(
            db, n_shards=3, executor="process", replicas=2
        ) as service:
            executor = service._executor
            for replica in list(executor.replica_sets[1].replicas):
                kill_replica(replica)
            # The non-blocking probe names the dead shard immediately —
            # no pipe traffic, no scatter needed to find out.
            probe = executor.liveness()
            assert probe["alive"] is False
            assert probe["dead_shards"] == [1]
            assert probe["replicas_live"] == 4

            with pytest.raises(ShardExecutionError) as excinfo:
                executor.broadcast("info", {})
            message = str(excinfo.value)
            assert "shard 1" in message
            assert "shard 0" not in message and "shard 2" not in message
            # Survivors drained clean.
            replies = executor.run_on([0, 2], "info", {})
            assert sorted(replies) == [0, 2]

            # Both replicas come back, and the service serves again.
            assert executor.restart_dead() == 2
            assert executor.liveness()["dead_shards"] == []
            kit = parity_kit(db, 31)
            assert_state_parity(service, db, *kit)

    def test_hung_replica_misses_ping_deadline_and_is_retired(self):
        db = initial_db(41, n=8)
        with QueryService(
            db, n_shards=2, executor="process", replicas=2
        ) as service:
            executor = service._executor
            # Warm every replica first (under a spawn context workers can
            # still be importing) so a short deadline only means "hung".
            assert executor.ping(deadline=30.0) == 0
            victim = executor.replica_sets[0].replicas[0]
            os.kill(victim.proc.pid, signal.SIGSTOP)
            try:
                assert executor.ping(deadline=0.5) == 1
            finally:
                # retire() already SIGKILLed it; CONT is belt and braces
                # in case the test failed before retirement.
                try:
                    os.kill(victim.proc.pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass
            stats = executor.replication_stats()
            counters = stats["counters"]["counters"]
            assert counters["replication.hung_replicas"] == 1
            assert executor.restart_dead() == 1
            assert executor.liveness()["replicas_live"] == 4
            kit = parity_kit(db, 41)
            assert_state_parity(service, db, *kit)


# ---------------------------------------------------------------------------
# Watchdog
# ---------------------------------------------------------------------------

class TestWatchdog:
    def test_poll_once_restarts_a_killed_replica(self):
        seed = 51
        db = initial_db(seed, n=8)
        kit = parity_kit(db, seed)
        # Interval far in the future: the thread exists but this test
        # drives polls by hand for determinism.
        with QueryService(
            db,
            n_shards=2,
            executor="process",
            replicas=2,
            watchdog_interval=3600.0,
        ) as service:
            watchdog = service.watchdog
            assert watchdog is not None and watchdog.running
            kill_replica(service._executor.replica_sets[1].replicas[1])
            report = watchdog.poll_once()
            assert report["restarted"] == 1
            # The report shows what the probe SAW (pre-restart) ...
            assert report["replicas_live"] == 3
            # ... and the repair it triggered is visible right after.
            assert service._executor.liveness()["replicas_live"] == 4
            assert_state_parity(service, db, *kit)
            stats = watchdog.stats()
            assert stats["ticks"] == 1
            assert stats["restarts"] == 1
            assert stats["errors"] == 0
            assert service.metrics_report()["watchdog"]["restarts"] == 1

    def test_background_thread_heals_without_intervention(self):
        seed = 61
        db = initial_db(seed, n=8)
        kit = parity_kit(db, seed)
        with QueryService(
            db,
            n_shards=2,
            executor="process",
            replicas=2,
            watchdog_interval=0.05,
            watchdog_deadline=5.0,
        ) as service:
            executor = service._executor
            kill_replica(executor.replica_sets[0].replicas[0])
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if executor.liveness()["replicas_live"] == 4:
                    break
                time.sleep(0.02)
            assert executor.liveness()["replicas_live"] == 4
            assert_state_parity(service, db, *kit)
            watchdog = service.watchdog
        # close() stopped the thread before tearing the executor down.
        assert not watchdog.running

    def test_standalone_watchdog_never_raises(self):
        class Exploding:
            def ping(self, deadline):
                raise RuntimeError("boom")

            def liveness(self):
                raise RuntimeError("boom")

        watchdog = Watchdog(Exploding(), interval=3600.0)
        report = watchdog.poll_once()
        assert report["tick"] == 1
        stats = watchdog.stats()
        assert stats["errors"] == 1
        assert "boom" in stats["last_error"]


# ---------------------------------------------------------------------------
# Online split / merge
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("store", ["heap", "shm"])
@pytest.mark.parametrize("executor", ["serial", "process"])
class TestSplitMerge:
    def test_split_then_merge_bit_identity(self, store, executor):
        if store == "shm" and not shared_memory_available():
            pytest.skip("no shared memory on this platform")
        seed = 71
        db = initial_db(seed, n=10)
        kit = parity_kit(db, seed)
        current = db
        with QueryService(
            db,
            n_shards=2,
            executor=executor,
            store=store,
            partitioner="spatial",
        ) as service:
            epoch0 = service.describe()["epoch"]
            assert service.split_shard(0) == 3
            assert service.describe()["epoch"] == epoch0 + 1
            assert_state_parity(service, current, *kit)

            # Ingest routes through the post-split cuts.
            batch = [make_trajectory(n=6, seed=7100 + i) for i in range(3)]
            service.ingest(batch)
            current = current.extended(batch)
            assert_state_parity(service, current, *kit)

            assert service.merge_shards(0) == 2
            assert_state_parity(service, current, *kit)
            batch = [make_trajectory(n=5, seed=7200 + i) for i in range(2)]
            service.ingest(batch)
            current = current.extended(batch)
            assert_state_parity(service, current, *kit)

            summary = service.stats.summary()
            assert summary["shard_splits"] == 1
            assert summary["shard_merges"] == 1
            assert summary["rebalance_max_latency_ms"] > 0

    def test_auto_rebalance_splits_the_hot_slab(self, store, executor):
        if store == "shm" and not shared_memory_available():
            pytest.skip("no shared memory on this platform")
        seed = 81
        db = initial_db(seed, n=8)
        kit = parity_kit(db, seed)
        current = db
        with QueryService(
            db,
            n_shards=2,
            executor=executor,
            store=store,
            partitioner="spatial",
            rebalance_threshold=1.5,
        ) as service:
            # Pour points into one narrow slab until it trips the
            # imbalance threshold and splits online.
            for round_idx in range(4):
                batch = [
                    skewed_trajectory(8100 + 10 * round_idx + i)
                    for i in range(4)
                ]
                service.ingest(batch)
                current = current.extended(batch)
                assert_state_parity(service, current, *kit)
            assert service.manager.n_shards > 2
            assert service.stats.summary()["shard_splits"] >= 1


def test_split_requires_spatial_partitioner():
    db = initial_db(3, n=6)
    with QueryService(db, n_shards=2, partitioner="hash") as service:
        with pytest.raises(ValueError):
            service.split_shard(0)


# ---------------------------------------------------------------------------
# Chaos: arbitrary interleavings stay bit-identical
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "store,executor",
    [("heap", "serial"), ("heap", "process"), ("shm", "process")],
)
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 50),
    plan=st.lists(
        st.sampled_from(
            ["ingest", "query", "kill", "restart", "split", "merge"]
        ),
        min_size=3,
        max_size=7,
    ),
)
def test_chaos_interleaving_matches_reference(store, executor, seed, plan):
    """Kill / restart / split / merge at arbitrary points never change
    answers: the service stays bit-identical to a fresh single engine."""
    if store == "shm" and not shared_memory_available():
        pytest.skip("no shared memory on this platform")
    db = initial_db(seed, n=8)
    kit = parity_kit(db, seed)
    current = db
    rng = np.random.default_rng(seed)
    next_seed = 50_000 + 1000 * seed
    with QueryService(
        db,
        n_shards=2,
        executor=executor,
        store=store,
        partitioner="spatial",
        **({"replicas": 2} if executor == "process" else {}),
    ) as service:
        exe = service._executor
        for action in plan:
            if action == "ingest":
                batch = [
                    make_trajectory(n=5, seed=next_seed + i) for i in range(2)
                ]
                next_seed += 2
                service.ingest(batch)
                current = current.extended(batch)
            elif action == "query":
                assert_state_parity(service, current, *kit)
            elif action == "kill" and hasattr(exe, "replica_sets"):
                replica_set = exe.replica_sets[
                    int(rng.integers(len(exe.replica_sets)))
                ]
                live = replica_set.live_replicas()
                if len(live) >= 2:  # never orphan a shard mid-plan
                    kill_replica(live[int(rng.integers(len(live)))])
            elif action == "restart":
                exe.restart_dead()
            elif action == "split":
                manager = service.manager
                if manager.n_shards < 5:
                    candidates = [
                        i
                        for i in range(manager.n_shards)
                        if manager.can_split(i)
                    ]
                    if candidates:
                        service.split_shard(
                            candidates[int(rng.integers(len(candidates)))]
                        )
            elif action == "merge":
                if service.manager.n_shards >= 2:
                    service.merge_shards(0)
        exe.restart_dead()
        assert_state_parity(service, current, *kit)


# ---------------------------------------------------------------------------
# Client-visible failover
# ---------------------------------------------------------------------------

def run(coro):
    return asyncio.run(coro)


class TestAsyncClientFailover:
    @pytest.fixture()
    def handle(self):
        handle = serve_in_thread(
            QueryService(server_db(), n_shards=2), close_service=True
        )
        try:
            yield handle
        finally:
            handle.stop()

    def _make_flaky(self, client):
        """Arm the live connection to reset exactly once at drain time —
        what a server-side failover/restart window looks like mid-send."""
        conn = client._conns[0]
        original = conn.writer.drain
        state = {"fired": False}

        async def flaky_drain():
            if not state["fired"]:
                state["fired"] = True
                raise ConnectionResetError("peer reset during failover")
            await original()

        conn.writer.drain = flaky_drain
        return state

    def test_reset_mid_query_is_retried_and_counted(self, handle):
        async def scenario():
            client = await AsyncRemoteClient.open(
                handle.host, handle.port, retries=3, retry_backoff=0.01
            )
            try:
                assert client.failover_retries == 0
                before = (await client.describe())["trajectories"]
                self._make_flaky(client)
                after = (await client.describe())["trajectories"]
                assert after == before
                assert client.failover_retries == 1
            finally:
                await client.close()

        run(scenario())

    def test_reset_mid_ingest_stays_fatal_and_uncounted(self, handle):
        async def scenario():
            client = await AsyncRemoteClient.open(
                handle.host, handle.port, retries=3, retry_backoff=0.01
            )
            try:
                await client.describe()
                self._make_flaky(client)
                with pytest.raises((ConnectionError, OSError)):
                    await client.ingest([make_trajectory(n=5, seed=1)])
                # Never replayed: the batch may have applied server-side.
                assert client.failover_retries == 0
            finally:
                await client.close()

        run(scenario())


def test_served_replicas_lose_zero_queries_across_kill():
    """The acceptance bar: ``--replicas 2``, SIGKILL any single worker
    mid-workload, every request comes back with the right answer."""
    db = server_db()
    workload = RangeQueryWorkload.from_data_distribution(db, 5, seed=7)
    with LocalClient(db) as local:
        expected = local.count(workload.boxes).counts
    service = QueryService(
        db,
        n_shards=2,
        executor="process",
        replicas=2,
        watchdog_interval=0.1,
    )
    pids = service._executor.worker_pids()
    handle = serve_in_thread(service, close_service=True)
    try:

        async def scenario():
            client = await AsyncRemoteClient.open(handle.host, handle.port)
            try:
                assert client.server_info["replicas"] == 2
                answers = []
                for i in range(30):
                    if i == 10:
                        os.kill(pids[0], signal.SIGKILL)
                    answers.append((await client.count(workload.boxes)).counts)
                # Failover is server-side: the connection never reset.
                assert client.failover_retries == 0
                return answers

            finally:
                await client.close()

        answers = run(scenario())
        assert len(answers) == 30
        for counts in answers:
            assert np.array_equal(counts, expected)
    finally:
        handle.stop()
