"""Tests for the whole-database streaming SQUISH ("W" adaptation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import squish_database
from repro.data import Trajectory, TrajectoryDatabase
from tests.conftest import make_trajectory


def overlapping_db(n=5, points=20):
    """Trajectories whose timestamps genuinely interleave."""
    trajs = []
    for i in range(n):
        rng = np.random.default_rng(i)
        xy = rng.uniform(0, 100, size=(points, 2))
        t = np.sort(rng.uniform(0, 100, size=points))
        t += np.arange(points) * 1e-6  # strictly increasing
        trajs.append(Trajectory(np.column_stack([xy, t]), traj_id=i))
    return TrajectoryDatabase(trajs)


class TestSquishDatabase:
    def test_budget_respected(self):
        db = overlapping_db()
        budget = 30
        kept = squish_database(db, budget)
        assert sum(len(v) for v in kept.values()) <= budget

    def test_endpoints_always_kept(self):
        db = overlapping_db()
        kept = squish_database(db, 25)
        for traj in db:
            idxs = kept[traj.traj_id]
            assert idxs[0] == 0
            assert idxs[-1] == len(traj) - 1

    def test_valid_subsamples(self):
        db = overlapping_db()
        kept = squish_database(db, 40)
        simplified = TrajectoryDatabase(
            [t.subsample(kept[t.traj_id]) for t in db]
        )
        assert simplified.total_points <= 40

    def test_generous_budget_is_identity(self):
        db = overlapping_db()
        kept = squish_database(db, db.total_points)
        for traj in db:
            assert kept[traj.traj_id] == list(range(len(traj)))

    def test_rejects_infeasible_budget(self):
        db = overlapping_db(n=5)
        with pytest.raises(ValueError):
            squish_database(db, 2 * len(db) - 1)

    def test_unequal_compression_across_trajectories(self):
        """A straight line competes against a zigzag: the global buffer
        squeezes the line much harder (the collective behaviour)."""
        n = 40
        t = np.arange(float(n))
        line = Trajectory(np.column_stack([t, t * 0.0, t]), traj_id=0)
        zig = Trajectory(
            np.column_stack(
                [t, np.where(np.arange(n) % 2 == 0, 0.0, 50.0), t + 0.5]
            ),
            traj_id=1,
        )
        db = TrajectoryDatabase([line, zig])
        kept = squish_database(db, 30)
        assert len(kept[1]) > len(kept[0])

    def test_minimum_budget_leaves_endpoints(self):
        db = overlapping_db(n=4, points=10)
        kept = squish_database(db, 2 * len(db))
        total = sum(len(v) for v in kept.values())
        assert total <= 2 * len(db) + len(db)  # near-endpoint-only

    @given(seed=st.integers(0, 300), budget_frac=st.floats(0.3, 0.9))
    @settings(max_examples=20, deadline=None)
    def test_property_contract(self, seed, budget_frac):
        db = TrajectoryDatabase(
            [make_trajectory(n=12, seed=seed + i, traj_id=i) for i in range(4)]
        )
        budget = max(2 * len(db), int(budget_frac * db.total_points))
        kept = squish_database(db, budget)
        assert set(kept) == set(range(len(db)))
        assert sum(len(v) for v in kept.values()) <= budget
        for traj in db:
            idxs = kept[traj.traj_id]
            assert idxs == sorted(set(idxs))
            assert idxs[0] == 0 and idxs[-1] == len(traj) - 1
