"""Tests for the experiment drivers shared by the benchmark harness."""

from __future__ import annotations

import pytest

from repro.baselines import get_baseline, uniform_simplify_database
from repro.eval import (
    MethodResult,
    QueryAccuracyEvaluator,
    QuerySuiteConfig,
    baseline_method,
    compare_methods,
)
from repro.eval.experiments import format_results_table


@pytest.fixture
def evaluator(small_db):
    return QueryAccuracyEvaluator(
        small_db,
        QuerySuiteConfig(
            n_range_queries=8,
            n_knn_queries=3,
            n_similarity_queries=3,
            clustering_subset=6,
            seed=0,
        ),
    )


@pytest.fixture
def methods():
    return {
        "Top-Down(E,SED)": baseline_method(get_baseline("Top-Down(E,SED)")),
        "uniform": lambda db, ratio: uniform_simplify_database(db, ratio),
    }


class TestCompareMethods:
    def test_one_row_per_method_ratio_pair(self, small_db, evaluator, methods):
        results = compare_methods(
            small_db, methods, (0.3, 0.6), evaluator, tasks=("range",)
        )
        assert len(results) == 4
        assert {(r.method, r.ratio) for r in results} == {
            ("Top-Down(E,SED)", 0.3),
            ("Top-Down(E,SED)", 0.6),
            ("uniform", 0.3),
            ("uniform", 0.6),
        }

    def test_scores_cover_requested_tasks(self, small_db, evaluator, methods):
        results = compare_methods(
            small_db, methods, (0.5,), evaluator,
            tasks=("range", "similarity"),
        )
        for r in results:
            assert set(r.scores) == {"range", "similarity"}
            assert all(0.0 <= v <= 1.0 for v in r.scores.values())
            assert r.simplify_seconds > 0.0

    def test_accuracy_monotone_in_ratio_for_uniform(
        self, small_db, evaluator, methods
    ):
        results = compare_methods(
            small_db, {"uniform": methods["uniform"]},
            (0.2, 0.8), evaluator, tasks=("range",),
        )
        by_ratio = {r.ratio: r.scores["range"] for r in results}
        assert by_ratio[0.8] >= by_ratio[0.2] - 0.05

    def test_as_row_flattening(self):
        r = MethodResult("m", 0.1, {"range": 0.5}, 1.234)
        row = r.as_row()
        assert row == {
            "method": "m", "ratio": 0.1, "range": 0.5, "time_s": 1.234,
        }


class TestFormatResultsTable:
    def test_contains_all_rows_and_headers(self, small_db, evaluator, methods):
        results = compare_methods(
            small_db, methods, (0.4,), evaluator, tasks=("range",)
        )
        text = format_results_table(results, tasks=("range",))
        lines = text.splitlines()
        assert "method" in lines[0] and "range" in lines[0]
        assert len(lines) == 2 + len(results)
        assert any("uniform" in line for line in lines)

    def test_missing_task_renders_nan(self):
        text = format_results_table(
            [MethodResult("m", 0.1, {"range": 0.5}, 0.0)],
            tasks=("range", "similarity"),
        )
        assert "nan" in text
