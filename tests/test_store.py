"""Unit tests for the pluggable array-store providers (repro.data.store)."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.data.store import (
    SEGMENT_PREFIX,
    STORES,
    HeapArrayHandle,
    HeapStore,
    SharedArrayHandle,
    SharedMemoryStore,
    StoreError,
    _attachments,
    derive_store,
    make_store,
    shared_memory_available,
    sweep_segments,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on this platform"
)


def shm_entries(prefix: str) -> list[str]:
    return sorted(f for f in os.listdir("/dev/shm") if f.startswith(prefix))


# ---------------------------------------------------------------------------
# HeapStore
# ---------------------------------------------------------------------------

class TestHeapStore:
    def test_put_resolve_round_trip(self):
        store = HeapStore()
        arr = np.arange(12, dtype=np.float64).reshape(4, 3)
        handle = store.put(arr, label="matrix")
        out = handle.resolve()
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == arr.dtype

    def test_resolved_view_is_read_only(self):
        handle = HeapStore().put(np.arange(5.0))
        out = handle.resolve()
        assert not out.flags.writeable
        with pytest.raises(ValueError):
            out[0] = 99.0

    def test_put_does_not_freeze_callers_array(self):
        arr = np.arange(6.0)
        HeapStore().put(arr)
        arr[0] = -1.0  # caller's array stays writable

    def test_handle_pickles_by_value(self):
        handle = HeapStore().put(np.arange(4.0))
        clone = pickle.loads(pickle.dumps(handle))
        np.testing.assert_array_equal(clone.resolve(), np.arange(4.0))

    def test_spec_and_lifecycle_are_no_ops(self):
        store = HeapStore()
        assert store.spec() == ("heap", None)
        assert not store.closed
        handle = store.put(np.arange(3.0))
        store.drop(handle)
        store.close()
        np.testing.assert_array_equal(handle.resolve(), np.arange(3.0))


# ---------------------------------------------------------------------------
# SharedMemoryStore
# ---------------------------------------------------------------------------

class TestSharedMemoryStore:
    def test_put_resolve_round_trip_bit_identical(self):
        with SharedMemoryStore() as store:
            arr = np.random.default_rng(0).random((100, 3))
            out = store.put(arr, label="m").resolve()
            np.testing.assert_array_equal(out, arr)
            assert out.dtype == arr.dtype
            assert not out.flags.writeable

    def test_segment_names_carry_prefix_and_label(self):
        with SharedMemoryStore() as store:
            handle = store.put(np.arange(4.0), label="s0m")
            assert handle.name.startswith(store.prefix)
            assert handle.name.endswith(".s0m")
            assert shm_entries(store.prefix) == [handle.name]

    def test_prefix_must_be_in_family(self):
        with pytest.raises(StoreError):
            SharedMemoryStore(prefix="evil_name")

    def test_handle_pickles_by_name_not_bytes(self):
        with SharedMemoryStore() as store:
            arr = np.random.default_rng(1).random((2048, 3))
            handle = store.put(arr)
            payload = pickle.dumps(handle)
            # The whole point: the pickle is a descriptor, not the bytes.
            assert len(payload) < 512
            clone = pickle.loads(payload)
            try:
                np.testing.assert_array_equal(clone.resolve(), arr)
            finally:
                clone.release()

    def test_attach_is_refcounted(self):
        with SharedMemoryStore() as store:
            handle = store.put(np.arange(8.0))
            a = pickle.loads(pickle.dumps(handle))
            b = pickle.loads(pickle.dumps(handle))
            a.resolve()
            b.resolve()
            assert _attachments[handle.name].refcount == 2
            a.release()
            assert _attachments[handle.name].refcount == 1
            b.release()
            assert handle.name not in _attachments

    def test_release_is_idempotent_and_never_unlinks(self):
        with SharedMemoryStore() as store:
            handle = store.put(np.arange(8.0))
            clone = pickle.loads(pickle.dumps(handle))
            clone.resolve()
            clone.release()
            clone.release()
            # Segment still exists: only the owner unlinks.
            np.testing.assert_array_equal(
                pickle.loads(pickle.dumps(handle)).resolve(), np.arange(8.0)
            )

    def test_close_unlinks_owned_segments(self):
        store = SharedMemoryStore()
        store.put(np.arange(4.0), label="a")
        store.put(np.arange(6.0), label="b")
        assert len(shm_entries(store.prefix)) == 2
        store.close()
        assert store.closed
        assert shm_entries(store.prefix) == []
        store.close()  # idempotent

    def test_put_after_close_raises(self):
        store = SharedMemoryStore()
        store.close()
        with pytest.raises(StoreError):
            store.put(np.arange(3.0))

    def test_resolve_after_owner_close_raises(self):
        store = SharedMemoryStore()
        handle = store.put(np.arange(4.0))
        clone = pickle.loads(pickle.dumps(handle))
        store.close()
        with pytest.raises(StoreError):
            clone.resolve()

    def test_drop_unlinks_one_segment(self):
        with SharedMemoryStore() as store:
            keep = store.put(np.arange(4.0), label="keep")
            gone = store.put(np.arange(4.0), label="gone")
            store.drop(gone)
            assert shm_entries(store.prefix) == [keep.name]
            store.drop(gone)  # idempotent

    def test_empty_array_round_trip(self):
        with SharedMemoryStore() as store:
            out = store.put(np.empty((0, 3))).resolve()
            assert out.shape == (0, 3)

    def test_close_sweeps_orphans_in_family(self):
        """Segments published by derived stores (dead workers) get swept."""
        store = SharedMemoryStore()
        worker = store.derive("w0deadbeef")
        orphan = worker.put(np.arange(16.0), label="e1m")
        # Simulate a SIGTERM'd worker: its store never runs close().
        worker._finalizer.detach()
        worker._owned.clear()
        assert shm_entries(store.prefix) == [orphan.name]
        store.close()
        assert shm_entries(store.prefix) == []

    def test_finalizer_cleans_up_on_gc(self):
        store = SharedMemoryStore()
        prefix = store.prefix
        store.put(np.arange(4.0))
        del store
        import gc

        gc.collect()
        assert shm_entries(prefix) == []


# ---------------------------------------------------------------------------
# sweep_segments / factories
# ---------------------------------------------------------------------------

def test_sweep_refuses_foreign_prefixes():
    assert sweep_segments("") == []
    assert sweep_segments("psm_something") == []


def test_make_store_accepts_all_spellings():
    assert isinstance(make_store("heap"), HeapStore)
    assert isinstance(make_store(None), HeapStore)
    assert isinstance(make_store(("heap", None)), HeapStore)
    with make_store("shm") as shm_store:
        assert isinstance(shm_store, SharedMemoryStore)
        # An instance passes through untouched.
        assert make_store(shm_store) is shm_store
        # A (kind, prefix) spec reopens the same family.
        rebuilt = make_store(shm_store.spec())
        assert rebuilt.prefix == shm_store.prefix
        rebuilt._finalizer.detach()  # same family: owner's close covers it
    with pytest.raises(StoreError):
        make_store("mmap")
    with pytest.raises(StoreError):
        make_store(("shm",))


def test_derive_store_gets_unique_subprefix():
    with SharedMemoryStore() as family:
        a = derive_store(family.spec(), tag="w0")
        b = derive_store(family.spec(), tag="w0")
        assert a.prefix.startswith(family.prefix + "_w0")
        assert a.prefix != b.prefix
        a.close()
        b.close()


def test_derive_store_heap_and_instance_passthrough():
    assert isinstance(derive_store("heap"), HeapStore)
    assert isinstance(derive_store(None), HeapStore)
    store = HeapStore()
    assert derive_store(store) is store


def test_stores_tuple_matches_prefix_constant():
    assert STORES == ("heap", "shm")
    assert SEGMENT_PREFIX.startswith("repro")
