"""Tests for experiment statistics and report tables."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    ExperimentTable,
    Summary,
    bootstrap_diff_ci,
    format_cell,
    series_table,
    sign_test,
    summarize,
)


class TestSummarize:
    def test_basic_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.n == 3
        assert s.ci_low <= s.mean <= s.ci_high

    def test_single_value(self):
        s = summarize([5.0])
        assert s == Summary(5.0, 0.0, 1, 5.0, 5.0)

    def test_constant_series_has_degenerate_ci(self):
        s = summarize([2.0] * 10)
        assert s.ci_low == pytest.approx(2.0)
        assert s.ci_high == pytest.approx(2.0)
        assert s.std == 0.0

    def test_deterministic_given_seed(self):
        values = np.random.default_rng(0).normal(size=30)
        assert summarize(values, seed=4) == summarize(values, seed=4)

    def test_str(self):
        assert "±" in str(summarize([1.0, 2.0]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_bad_confidence_raises(self):
        with pytest.raises(ValueError):
            summarize([1.0, 2.0], confidence=1.5)

    @given(
        values=st.lists(st.floats(-100, 100), min_size=2, max_size=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_ci_contains_mean(self, values):
        s = summarize(values)
        assert s.ci_low - 1e-9 <= s.mean <= s.ci_high + 1e-9

    def test_wider_confidence_wider_interval(self):
        values = np.random.default_rng(1).normal(size=50)
        narrow = summarize(values, confidence=0.5)
        wide = summarize(values, confidence=0.99)
        assert (wide.ci_high - wide.ci_low) >= (narrow.ci_high - narrow.ci_low)


class TestSignTest:
    def test_identical_series(self):
        assert sign_test([1, 2, 3], [1, 2, 3]) == 1.0

    def test_unanimous_difference_is_significant(self):
        a = np.arange(12.0) + 1.0
        assert sign_test(a, np.zeros(12)) < 0.01

    def test_balanced_wins_not_significant(self):
        a = [1.0, 0.0, 1.0, 0.0]
        b = [0.0, 1.0, 0.0, 1.0]
        assert sign_test(a, b) == 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=15), rng.normal(size=15)
        assert sign_test(a, b) == pytest.approx(sign_test(b, a))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            sign_test([1.0], [1.0, 2.0])

    def test_p_value_in_unit_interval(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            p = sign_test(rng.normal(size=9), rng.normal(size=9))
            assert 0.0 <= p <= 1.0


class TestBootstrapDiff:
    def test_clear_gap_excludes_zero(self):
        rng = np.random.default_rng(4)
        a = rng.normal(1.0, 0.1, size=30)
        b = rng.normal(0.0, 0.1, size=30)
        lo, hi = bootstrap_diff_ci(a, b)
        assert lo > 0.0

    def test_no_gap_includes_zero(self):
        rng = np.random.default_rng(5)
        a = rng.normal(0.0, 1.0, size=30)
        lo, hi = bootstrap_diff_ci(a, a + rng.normal(0.0, 1e-6, size=30))
        assert lo <= 0.0 <= hi or abs(lo) < 1e-3

    def test_single_pair(self):
        assert bootstrap_diff_ci([3.0], [1.0]) == (2.0, 2.0)

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            bootstrap_diff_ci([1.0, 2.0], [1.0])


class TestFormatCell:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.5, "0.5"),
            (0, "0"),
            (0.0, "0"),
            (123456.0, "1.235e+05"),
            (1e-5, "1.000e-05"),
            ("abc", "abc"),
            (True, "True"),
            (None, "None"),
            (7, "7"),
        ],
    )
    def test_formats(self, value, expected):
        assert format_cell(value) == expected

    def test_nan(self):
        assert format_cell(float("nan")) == "nan"


class TestExperimentTable:
    def make(self):
        t = ExperimentTable("Demo", ["method", "f1", "time"])
        t.add_row("RL4QDTS", 0.733, 61.11)
        t.add_row(method="Top-Down", f1=0.61, time=50.3)
        return t

    def test_len_and_rows(self):
        t = self.make()
        assert len(t) == 2
        assert t.rows[0][0] == "RL4QDTS"

    def test_named_row_order_independent(self):
        t = ExperimentTable("x", ["a", "b"])
        t.add_row(b=2, a=1)
        assert t.rows == [[1, 2]]

    def test_add_row_validation(self):
        t = ExperimentTable("x", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)
        with pytest.raises(ValueError):
            t.add_row(1, 2, 3)
        with pytest.raises(ValueError):
            t.add_row(a=1, c=2)
        with pytest.raises(ValueError):
            t.add_row(1, b=2)

    def test_render_text_aligned(self):
        text = self.make().render_text()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "method" in lines[1]
        assert len({len(line) for line in lines[2:3]}) == 1

    def test_render_markdown(self):
        md = self.make().render_markdown()
        assert md.startswith("**Demo**")
        assert "| method | f1 | time |" in md
        assert md.splitlines()[3] == "|---|---|---|"

    def test_render_csv_roundtrip(self):
        import csv as _csv
        import io

        rows = list(_csv.reader(io.StringIO(self.make().render_csv())))
        assert rows[0] == ["method", "f1", "time"]
        assert rows[1][0] == "RL4QDTS"

    def test_save_files(self, tmp_path):
        t = self.make()
        t.save_csv(tmp_path / "t.csv")
        t.save_markdown(tmp_path / "t.md")
        assert (tmp_path / "t.csv").read_text().startswith("method")
        assert (tmp_path / "t.md").read_text().startswith("**Demo**")

    def test_print(self, capsys):
        self.make().print()
        out = capsys.readouterr().out
        assert "RL4QDTS" in out


class TestSeriesTable:
    def test_figure_shape(self):
        t = series_table(
            "Fig 4(a)",
            "ratio",
            [0.0025, 0.005],
            {"RL4QDTS": [0.7, 0.8], "Top-Down": [0.6, 0.7]},
        )
        assert t.columns == ["ratio", "RL4QDTS", "Top-Down"]
        assert t.rows == [[0.0025, 0.7, 0.6], [0.005, 0.8, 0.7]]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            series_table("x", "r", [1, 2], {"m": [0.1]})
