"""Failure injection: robustness of the simplifiers to sensor degradation.

An extension beyond the paper's evaluation. Two degradations are injected
into the database *before* simplification:

* **GPS noise** — Gaussian position error on every fix,
* **dropouts** — a fraction of interior fixes missing,

and each simplifier's range-query F1 (against the degraded database's own
truth) is compared to its clean-data score. The interesting question is
whether the method *ranking* survives degradation — a practical concern the
paper does not study.

Also pits the streaming SQUISH extension against its batch counterpart.
"""

from __future__ import annotations

from benchmarks.conftest import SETTINGS, make_evaluator, make_workload_factory
from repro.baselines import get_baseline, simplify_database, squish
from repro.data import add_gps_noise, drop_points_randomly

_RATIO = 0.045
_METHODS = ("Top-Down(E,PED)", "Bottom-Up(E,SED)")


def _score_on(db, simplified_db):
    setting = SETTINGS["geolife"]
    evaluator = make_evaluator(db, setting, distribution="data", seed=0)
    return evaluator.evaluate(simplified_db, ("range",))["range"]


def _run_robustness(db):
    setting = SETTINGS["geolife"]
    # Degradation scales relative to the data's segment lengths (~8 m).
    variants = {
        "clean": db,
        "noise sigma=15m": add_gps_noise(db, 15.0, seed=1),
        "dropout 30%": drop_points_randomly(db, 0.3, seed=1),
    }
    table: dict[str, dict[str, float]] = {}
    for variant_name, variant_db in variants.items():
        evaluator = make_evaluator(
            variant_db, setting, distribution="data", seed=0
        )
        row: dict[str, float] = {}
        for method in _METHODS:
            simplified = simplify_database(
                variant_db, _RATIO, get_baseline(method)
            )
            row[method] = evaluator.evaluate(simplified, ("range",))["range"]
        row["SQUISH (online)"] = evaluator.evaluate(
            variant_db.map_simplify(
                lambda t: squish(t, max(2, int(_RATIO * len(t))))
            ),
            ("range",),
        )["range"]
        table[variant_name] = row
    return table


def bench_robustness(benchmark, geolife_bench_db):
    table = benchmark.pedantic(
        _run_robustness, args=(geolife_bench_db,), rounds=1, iterations=1
    )

    methods = list(next(iter(table.values())))
    print("\n=== Failure injection: range F1 under sensor degradation ===")
    header = "variant".ljust(18) + "".join(m.rjust(20) for m in methods)
    print(header)
    print("-" * len(header))
    for variant, row in table.items():
        print(
            variant.ljust(18)
            + "".join(f"{row[m]:>20.4f}" for m in methods)
        )

    for variant, row in table.items():
        for method, value in row.items():
            assert 0.0 <= value <= 1.0, (variant, method)
    # Degradation should not catastrophically invert scores: every method
    # still clears half of its clean score under noise.
    for method in methods:
        assert table["noise sigma=15m"][method] >= 0.5 * table["clean"][method]
