"""Figure 7 — deformation study.

Measures the mean SED deformation of the trajectories *returned by range
queries* (not of all trajectories): a query-aware simplifier should keep the
queried trajectories better preserved even though error-driven baselines
optimize SED globally. Run for the data and Gaussian query distributions on
the Geolife profile.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    PAPER_SKYLINES,
    SETTINGS,
    inference_workload,
    make_workload_factory,
    print_series,
    train_model,
)
from repro.baselines import get_baseline, simplify_database
from repro.eval import query_deformation

_RATIOS = (0.02, 0.045, 0.1)


def _run_deformation(db, rlts_policies, distribution):
    setting = SETTINGS["geolife"]
    eval_workload = make_workload_factory(distribution, setting, db, 100)(db, 0)
    model = train_model(db, setting, distribution=distribution, seed=0)
    annotation = inference_workload(model, db, setting, distribution)

    methods = list(PAPER_SKYLINES[distribution]) + ["RL4QDTS"]
    rows = {m: [] for m in methods}
    for ratio in _RATIOS:
        for name in methods:
            if name == "RL4QDTS":
                simplified = model.simplify(
                    db, budget_ratio=ratio, seed=1, workload=annotation
                )
            else:
                spec = get_baseline(name)
                simplified = simplify_database(
                    db, ratio, spec, rlts_policy=rlts_policies.get(spec.measure)
                )
            rows[name].append(
                query_deformation(db, simplified, eval_workload, "sed")
            )
    return rows


@pytest.mark.parametrize("distribution", ["data", "gaussian"])
def bench_fig7_deformation(benchmark, geolife_bench_db, rlts_policies, distribution):
    rows = benchmark.pedantic(
        _run_deformation,
        args=(geolife_bench_db, rlts_policies, distribution),
        rounds=1,
        iterations=1,
    )
    print_series(
        f"Figure 7 ({distribution}): mean SED of query-returned trajectories (m)",
        _RATIOS,
        rows,
    )
    print("paper: RL4QDTS sits below every skyline method at all budgets")

    for method, values in rows.items():
        assert all(v >= 0.0 for v in values), method
        # Deformation shrinks as the budget grows.
        assert values[-1] <= values[0] + 1e-9, method
