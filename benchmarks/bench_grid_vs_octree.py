"""Octree vs fixed-granularity grid (the paper's Section-I motivation).

The paper motivates the octree by arguing that a *predefined* partitioning
granularity is hard to set and unlikely to work across databases: small
cubes hold too few candidates, large cubes make candidate selection coarse.
This bench tests that claim: RL4QDTS's cube sampler is run over

* the adaptive octree (start level S, traversal down to E), vs
* uniform grids of several fixed granularities (realized as an octree forced
  to split uniformly to one level, with the traversal pinned there),

on two dataset profiles with different spatial scales. The octree should be
competitive with the *best* fixed granularity on each profile while no single
granularity wins on both — which is exactly the paper's argument.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    SETTINGS,
    inference_workload,
    make_evaluator,
    make_workload_factory,
)
from repro.core import RL4QDTS, RL4QDTSConfig

_RATIO = 0.045
_GRID_LEVELS = (4, 6, 8)


def _score(db, setting, config, use_agent_cube=True) -> float:
    factory = make_workload_factory("data", setting, db, 200)
    evaluator = make_evaluator(db, setting, distribution="data", seed=0)
    model = RL4QDTS.train(
        db, config=config, workload_factory=factory,
        use_agent_cube=use_agent_cube,
    )
    annotation = inference_workload(model, db, setting, "data")
    simplified = model.simplify(
        db, budget_ratio=_RATIO, seed=1, workload=annotation
    )
    return evaluator.evaluate(simplified, ("range",))["range"]


def _run(db, setting):
    base = dict(
        delta=10, n_training_queries=200, n_inference_queries=800,
        episodes=3, n_train_databases=2, train_db_size=80,
        train_budget_ratio=_RATIO, seed=0,
    )
    results = {
        "octree (S=6, E=9)": _score(
            db, setting, RL4QDTSConfig(start_level=6, end_level=9, **base)
        )
    }
    for level in _GRID_LEVELS:
        # Uniform grid: force splits down to `level` (leaf_capacity=1) and
        # pin the traversal there — a fixed (2^(level-1))^3-cell partition.
        config = RL4QDTSConfig(
            start_level=level, end_level=level, leaf_capacity=1, **base
        )
        results[f"grid 2^{level - 1} per axis"] = _score(
            db, setting, config, use_agent_cube=False
        )
    return results


@pytest.mark.parametrize("profile", ["geolife", "chengdu"])
def bench_grid_vs_octree(benchmark, profile, geolife_bench_db, chengdu_bench_db):
    db = geolife_bench_db if profile == "geolife" else chengdu_bench_db
    setting = SETTINGS[profile]
    results = benchmark.pedantic(_run, args=(db, setting), rounds=1, iterations=1)

    print(f"\n=== Octree vs fixed grids ({profile}, range F1 at r={_RATIO:.1%}) ===")
    for name, f1 in results.items():
        print(f"{name:<24}{f1:.4f}")
    print(
        "paper (Section I): a predefined granularity is hard to set and "
        "unlikely to work across databases; the octree adapts"
    )

    octree_f1 = results["octree (S=6, E=9)"]
    best_grid = max(v for k, v in results.items() if k.startswith("grid"))
    # The adaptive index should stay within reach of the best fixed grid.
    assert octree_f1 >= best_grid - 0.1
