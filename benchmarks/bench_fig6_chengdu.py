"""Figure 6 — comparison with the skyline on Chengdu (real distribution).

The paper evaluates Chengdu under its "real" query distribution (queries
near ride-hailing pickup/dropoff hotspots) against the two skyline
baselines Top-Down(W,PED) and Top-Down(E,SAD), sweeping 2%-20% budgets.
"""

from __future__ import annotations

from benchmarks.conftest import SETTINGS, print_comparison, run_comparison


def bench_fig6_chengdu(benchmark, chengdu_bench_db, rlts_policies):
    ratios, series = benchmark.pedantic(
        run_comparison,
        args=(chengdu_bench_db, SETTINGS["chengdu"], "real", rlts_policies),
        rounds=1,
        iterations=1,
    )
    print_comparison("Figure 6 Chengdu (real)", ratios, series)

    for task, rows in series.items():
        for method, values in rows.items():
            assert all(0.0 <= v <= 1.0 for v in values), (task, method)
    # Range accuracy improves from the tightest to the loosest budget.
    for method, values in series["range"].items():
        assert values[-1] >= values[0] - 0.05, method
