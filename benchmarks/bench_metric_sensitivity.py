"""Extension bench — are the conclusions an artifact of the F1 metric?

The paper scores everything with the F1 of Eq. 3. This bench re-scores the
same simplified databases under alternative measures — Jaccard for range
results, Kendall tau over kNN *rankings*, adjusted Rand index for the
clustering partition, and heatmap intersection — and checks whether the
method ordering survives the metric change.
"""

from __future__ import annotations

from benchmarks.conftest import SETTINGS, inference_workload, make_evaluator, train_model
from repro.baselines import get_baseline, simplify_database, uniform_simplify_database
from repro.eval import ExperimentTable

_RATIO = 0.045


def _run_metric_study(db):
    setting = SETTINGS["geolife"]
    evaluator = make_evaluator(db, setting, distribution="data", seed=0)
    model = train_model(db, setting, distribution="data", seed=0)
    annotation = inference_workload(model, db, setting, "data")

    methods = {
        "RL4QDTS": lambda: model.simplify(
            db, budget_ratio=_RATIO, seed=11, workload=annotation
        ),
        "Top-Down(E,PED)": lambda: simplify_database(
            db, _RATIO, get_baseline("Top-Down(E,PED)")
        ),
        "Bottom-Up(E,SED)": lambda: simplify_database(
            db, _RATIO, get_baseline("Bottom-Up(E,SED)")
        ),
        "uniform": lambda: uniform_simplify_database(db, _RATIO),
    }
    rows = {}
    for name, run in methods.items():
        simplified = run()
        f1 = evaluator.evaluate(simplified, ("range",))["range"]
        extended = evaluator.evaluate_extended(simplified)
        rows[name] = (f1, extended)
    return rows


def bench_metric_sensitivity(benchmark, geolife_bench_db):
    rows = benchmark.pedantic(
        _run_metric_study, args=(geolife_bench_db,), rounds=1, iterations=1
    )
    table = ExperimentTable(
        f"Metric sensitivity (Geolife profile, r={_RATIO:.1%})",
        ["method", "range F1", "range Jaccard", "kNN tau",
         "clustering ARI", "heatmap"],
    )
    for name, (f1, ext) in rows.items():
        table.add_row(
            name, f1, ext["range_jaccard"], ext["knn_edr_tau"],
            ext["clustering_ari"], ext["heatmap"],
        )
    table.print()

    # F1 and Jaccard are monotone-equivalent per query, so the mean scores
    # must order the methods (nearly) identically.
    by_f1 = sorted(rows, key=lambda m: -rows[m][0])
    by_jaccard = sorted(rows, key=lambda m: -rows[m][1]["range_jaccard"])
    assert by_f1[0] == by_jaccard[0], "metric choice flipped the winner"
    for name, (f1, ext) in rows.items():
        # Jaccard is always <= F1 (J = F1 / (2 - F1)).
        assert ext["range_jaccard"] <= f1 + 1e-9
        assert -1.0 <= ext["knn_edr_tau"] <= 1.0
        assert 0.0 <= ext["heatmap"] <= 1.0
