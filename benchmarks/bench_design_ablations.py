"""Design-choice ablations beyond Table II.

Three choices DESIGN.md calls out, each with its own evidence:

1. **v_s vs v_t candidate ranking** — the paper states the v_t-based state
   "performs worse" (Section IV-B); we measure both.
2. **Incremental vs naive reward evaluation** — the incremental evaluator
   makes Eq. 10 exact at O(#queries) per insertion; this quantifies the
   speedup over re-running the workload at every reward window.
3. **Naive floors** — uniform and random down-sampling, the sanity floor
   every published method must clear.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import (
    SETTINGS,
    inference_workload,
    make_evaluator,
    make_workload_factory,
)
from repro.baselines import random_simplify_database, uniform_simplify_database
from repro.core import RL4QDTS, RL4QDTSConfig
from repro.core.reward import IncrementalRangeEvaluator
from repro.data import SimplificationState
from repro.queries.metrics import f1_score

_RATIO = 0.045


def _run_point_feature_ablation(db):
    setting = SETTINGS["geolife"]
    evaluator = make_evaluator(db, setting, distribution="data", seed=0)
    factory = make_workload_factory("data", setting, db, 200)
    scores = {}
    for feature in ("vs", "vt"):
        config = RL4QDTSConfig(
            start_level=6, end_level=9, delta=10, n_training_queries=200,
            n_inference_queries=800, episodes=3, n_train_databases=2,
            train_db_size=80, train_budget_ratio=_RATIO,
            point_feature=feature, seed=0,
        )
        model = RL4QDTS.train(db, config=config, workload_factory=factory)
        annotation = inference_workload(model, db, setting, "data")
        simplified = model.simplify(
            db, budget_ratio=_RATIO, seed=1, workload=annotation
        )
        scores[feature] = evaluator.evaluate(simplified, ("range",))["range"]
    return scores


def bench_point_feature_ablation(benchmark, geolife_bench_db):
    scores = benchmark.pedantic(
        _run_point_feature_ablation, args=(geolife_bench_db,), rounds=1,
        iterations=1,
    )
    print("\n=== Design ablation: Agent-Point candidate ranking ===")
    print(f"rank by v_s (paper): range F1 = {scores['vs']:.4f}")
    print(f"rank by v_t:         range F1 = {scores['vt']:.4f}")
    print("paper: the v_t-based state performs worse than the v_s-based one")
    assert 0.0 <= scores["vt"] <= 1.0


def _run_evaluator_comparison(db):
    """Time incremental reward maintenance vs naive full re-evaluation."""
    setting = SETTINGS["geolife"]
    workload = make_workload_factory("data", setting, db, 200)(db, 0)
    state = SimplificationState(db)
    evaluator = IncrementalRangeEvaluator(db, workload)
    evaluator.reset(state)

    rng = np.random.default_rng(0)
    insertions = []
    for _ in range(300):
        tid = int(rng.integers(len(db)))
        interior = [
            i for i in range(1, len(db[tid]) - 1) if not state.is_kept(tid, i)
        ]
        if interior:
            insertions.append((tid, int(rng.choice(interior))))
            state.insert(tid, insertions[-1][1])

    # Incremental: notify per insertion, read diff every 10.
    state_a = SimplificationState(db)
    evaluator.reset(state_a)
    start = time.perf_counter()
    for i, (tid, idx) in enumerate(insertions):
        state_a.insert(tid, idx)
        evaluator.notify_insert(tid, db[tid].points[idx])
        if (i + 1) % 10 == 0:
            evaluator.diff()
    incremental_s = time.perf_counter() - start
    incremental_diff = evaluator.diff()

    # Naive: materialize + full workload re-run at every reward window.
    state_b = SimplificationState(db)
    truth = workload.evaluate(db)
    start = time.perf_counter()
    naive_diff = None
    for i, (tid, idx) in enumerate(insertions):
        state_b.insert(tid, idx)
        if (i + 1) % 10 == 0:
            results = workload.evaluate(state_b.materialize())
            naive_diff = 1.0 - float(
                np.mean([f1_score(t, r) for t, r in zip(truth, results)])
            )
    naive_s = time.perf_counter() - start
    return incremental_s, naive_s, incremental_diff, naive_diff


def bench_incremental_evaluator(benchmark, geolife_bench_db):
    inc_s, naive_s, inc_diff, naive_diff = benchmark.pedantic(
        _run_evaluator_comparison, args=(geolife_bench_db,), rounds=1,
        iterations=1,
    )
    print("\n=== Design ablation: incremental reward evaluation ===")
    print(f"incremental: {inc_s:.3f}s   naive re-run: {naive_s:.3f}s   "
          f"speedup: {naive_s / max(inc_s, 1e-9):.1f}x")
    print(f"final diff agrees: {inc_diff:.6f} vs {naive_diff:.6f}")
    assert abs(inc_diff - naive_diff) < 1e-9
    assert naive_s > inc_s


def _run_floors(db):
    setting = SETTINGS["geolife"]
    evaluator = make_evaluator(db, setting, distribution="data", seed=0)
    return {
        "uniform down-sampling": evaluator.evaluate(
            uniform_simplify_database(db, _RATIO), ("range",)
        )["range"],
        "random down-sampling": evaluator.evaluate(
            random_simplify_database(db, _RATIO, seed=0), ("range",)
        )["range"],
    }


def bench_naive_floors(benchmark, geolife_bench_db):
    scores = benchmark.pedantic(
        _run_floors, args=(geolife_bench_db,), rounds=1, iterations=1
    )
    print("\n=== Sanity floors (range F1 at r=4.5%) ===")
    for name, f1 in scores.items():
        print(f"{name}: {f1:.4f}")
    for f1 in scores.values():
        assert 0.0 <= f1 <= 1.0
