"""Table I — dataset statistics.

Regenerates the paper's dataset-statistics table for the four synthetic
profile analogues and checks each profile's sampling-rate and segment-length
statistics land in the declared bands. The benchmark measures generation
throughput.
"""

from __future__ import annotations

from repro.data import DATASET_PROFILES, dataset_statistics, synthetic_database


def _generate_and_tabulate():
    rows = {}
    for name in ("geolife", "tdrive", "chengdu", "osm"):
        db = synthetic_database(name, n_trajectories=60, points_scale=0.1, seed=7)
        rows[name] = dataset_statistics(db).as_row()
    return rows


def bench_table1_dataset_statistics(benchmark):
    rows = benchmark.pedantic(_generate_and_tabulate, rounds=1, iterations=1)

    print("\n=== Table I: dataset statistics (synthetic analogues, scaled) ===")
    columns = list(next(iter(rows.values())))
    header = "dataset".ljust(10) + "".join(c.rjust(24) for c in columns)
    print(header)
    print("-" * len(header))
    for name, row in rows.items():
        print(name.ljust(10) + "".join(str(row[c]).rjust(24) for c in columns))
    print(
        "\npaper (full scale): geolife 1412 pts/traj @1-5s/9.96m, "
        "tdrive 1713 @177s/623m, chengdu 178 @2-4s/25m, osm 5675 @53.5s/180m"
    )

    for name, row in rows.items():
        profile = DATASET_PROFILES[name]
        lo, hi = profile.sampling_interval
        assert lo * 0.85 <= row["Sampling rate (s)"] <= hi * 1.15, name
