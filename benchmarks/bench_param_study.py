"""Parameter studies (paper, Section V-B(5-8); details in its tech report).

Sweeps the four hyper-parameters the paper studies:

* ``S``  — Agent-Cube start level,
* ``E``  — Agent-Cube end (max traversal) level,
* ``K``  — Agent-Point candidate count,
* ``k``  — kNN result size (an evaluation knob, not a model knob).

Each sweep trains/rolls out on the Geolife profile and reports range-query
F1 (kNN-k reports the kNN-EDR F1), mirroring the paper's finding that
moderate S/E and K=2 are the sweet spot and that accuracy rises with k.
"""

from __future__ import annotations

from benchmarks.conftest import (
    SETTINGS,
    inference_workload,
    make_evaluator,
    make_workload_factory,
)
from repro.core import RL4QDTS, RL4QDTSConfig
from repro.eval import QueryAccuracyEvaluator, QuerySuiteConfig

_RATIO = 0.045
_S_VALUES = (4, 5, 6, 7)
_E_VALUES = (7, 8, 9)
_K_VALUES = (1, 2, 4)
_KNN_KS = (1, 3, 5, 7)


def _train_and_score(db, setting, evaluator, **config_overrides) -> float:
    params = dict(
        start_level=6,
        end_level=9,
        delta=10,
        n_training_queries=200,
        n_inference_queries=800,
        episodes=3,
        n_train_databases=2,
        train_db_size=80,
        train_budget_ratio=_RATIO,
        seed=0,
    )
    params.update(config_overrides)
    # Keep the level pair consistent when one side is swept.
    if params["end_level"] < params["start_level"]:
        params["end_level"] = params["start_level"] + 2
    config = RL4QDTSConfig(**params)
    factory = make_workload_factory("data", setting, db, 200)
    model = RL4QDTS.train(db, config=config, workload_factory=factory)
    annotation = inference_workload(model, db, setting, "data")
    simplified = model.simplify(
        db, budget_ratio=_RATIO, seed=1, workload=annotation
    )
    return evaluator.evaluate(simplified, ("range",))["range"]


def _run_model_param_sweeps(db):
    setting = SETTINGS["geolife"]
    evaluator = make_evaluator(db, setting, distribution="data", seed=0)
    results = {
        "S (start level)": {
            s: _train_and_score(db, setting, evaluator, start_level=s)
            for s in _S_VALUES
        },
        "E (end level)": {
            e: _train_and_score(db, setting, evaluator, end_level=e)
            for e in _E_VALUES
        },
        "K (candidates)": {
            k: _train_and_score(db, setting, evaluator, k_candidates=k)
            for k in _K_VALUES
        },
    }
    return results


def bench_param_study_model(benchmark, geolife_bench_db):
    results = benchmark.pedantic(
        _run_model_param_sweeps, args=(geolife_bench_db,), rounds=1, iterations=1
    )
    for param, values in results.items():
        print(f"\n=== Parameter study: {param} (range F1 at r={_RATIO:.1%}) ===")
        print("  ".join(f"{k}={v:.4f}" for k, v in values.items()))
    print("paper: moderate S/E best; K=2 the effectiveness/efficiency sweet spot")

    for param, values in results.items():
        assert all(0.0 <= v <= 1.0 for v in values.values()), param


def _run_knn_k_sweep(db):
    setting = SETTINGS["geolife"]
    factory = make_workload_factory("data", setting, db, 200)
    config = RL4QDTSConfig(
        start_level=6, end_level=9, delta=10, n_training_queries=200,
        n_inference_queries=800, episodes=3, n_train_databases=2,
        train_db_size=80, train_budget_ratio=_RATIO, seed=0,
    )
    model = RL4QDTS.train(db, config=config, workload_factory=factory)
    annotation = inference_workload(model, db, setting, "data")
    simplified = model.simplify(db, budget_ratio=_RATIO, seed=1, workload=annotation)
    scores = {}
    for k in _KNN_KS:
        evaluator = QueryAccuracyEvaluator(
            db,
            QuerySuiteConfig(n_knn_queries=6, k=k, clustering_subset=4, seed=0),
        )
        per_task = evaluator.evaluate(simplified, ("knn_edr", "knn_t2vec"))
        scores[k] = (per_task["knn_edr"], per_task["knn_t2vec"])
    return scores


def bench_param_study_knn_k(benchmark, geolife_bench_db):
    scores = benchmark.pedantic(
        _run_knn_k_sweep, args=(geolife_bench_db,), rounds=1, iterations=1
    )
    print("\n=== Parameter study: kNN k (F1 of kNN queries) ===")
    print("k".ljust(6) + "knn_edr".rjust(10) + "knn_t2vec".rjust(12))
    for k, (edr, t2v) in scores.items():
        print(str(k).ljust(6) + f"{edr:.4f}".rjust(10) + f"{t2v:.4f}".rjust(12))
    print("paper: effectiveness improves as k increases")

    ks = sorted(scores)
    # Larger k makes the task more forgiving on average (paper's trend);
    # allow small non-monotonicity at this scale.
    assert scores[ks[-1]][0] >= scores[ks[0]][0] - 0.15
