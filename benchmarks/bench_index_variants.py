"""Extension bench — index ablations.

Two questions the paper leaves open:

1. *Partitioning tree* (Section I: "we leave other indexes, e.g., kd-tree,
   for future exploration"): does RL4QDTS behave differently over the
   median-split kd-tree than over the midpoint-split octree?
2. *Query accelerator*: grid vs. STR R-tree vs. no index for the range-query
   evaluation loop that dominates training (reward) cost.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import (
    SETTINGS,
    inference_workload,
    make_evaluator,
    make_workload_factory,
)
from repro.core import RL4QDTS, RL4QDTSConfig
from repro.eval import ExperimentTable
from repro.index import GridIndex, RTree
from repro.queries import range_query
from repro.workloads import RangeQueryWorkload

_RATIO = 0.045
_ROLLOUTS = 3


def _run_tree_comparison(db):
    setting = SETTINGS["geolife"]
    evaluator = make_evaluator(db, setting, distribution="data", seed=0)
    factory = make_workload_factory("data", setting, db, 200)
    rows = {}
    for index in ("octree", "kdtree"):
        config = RL4QDTSConfig(
            index=index,
            start_level=6,
            end_level=9,
            delta=10,
            n_training_queries=200,
            n_inference_queries=1000,
            episodes=4,
            n_train_databases=2,
            train_db_size=80,
            train_budget_ratio=_RATIO,
            seed=0,
        )
        start = time.perf_counter()
        model = RL4QDTS.train(db, config=config, workload_factory=factory)
        train_time = time.perf_counter() - start
        annotation = inference_workload(model, db, setting, "data")
        f1s = []
        start = time.perf_counter()
        for rollout in range(_ROLLOUTS):
            simplified = model.simplify(
                db, budget_ratio=_RATIO, seed=100 + rollout, workload=annotation
            )
            f1s.append(evaluator.evaluate(simplified, ("range",))["range"])
        simplify_time = (time.perf_counter() - start) / _ROLLOUTS
        rows[index] = (
            float(np.mean(f1s)),
            float(np.std(f1s)),
            train_time,
            simplify_time,
        )
    return rows


def bench_tree_index_variants(benchmark, geolife_bench_db):
    rows = benchmark.pedantic(
        _run_tree_comparison, args=(geolife_bench_db,), rounds=1, iterations=1
    )
    table = ExperimentTable(
        "Index ablation: RL4QDTS over octree vs kd-tree (Geolife profile, "
        f"r={_RATIO:.1%})",
        ["index", "range F1", "std", "train (s)", "simplify (s)"],
    )
    for index, (mean, std, train_s, simp_s) in rows.items():
        table.add_row(index, mean, std, train_s, simp_s)
    table.print()

    # Both trees must produce usable policies; neither should collapse.
    for index, (mean, _, _, _) in rows.items():
        assert mean > 0.2, f"{index} policy collapsed"


def _run_accelerator_comparison(db):
    # Selective queries (a few percent of the region per axis) are where
    # candidate pruning matters; the default data-scaled extent on this
    # profile covers most trajectories and every strategy degenerates to
    # verification cost.
    spans = db.bounding_box.spans
    workload = RangeQueryWorkload.from_data_distribution(
        db, 300, seed=5,
        spatial_extent=0.05 * max(spans[0], spans[1]),
        temporal_extent=0.1 * spans[2],
    )
    timings = {}
    results = {}
    candidates = {}

    start = time.perf_counter()
    grid = GridIndex(db)
    build_grid = time.perf_counter() - start
    start = time.perf_counter()
    results["grid"] = [range_query(db, q, grid) for q in workload]
    timings["grid"] = (build_grid, time.perf_counter() - start)
    candidates["grid"] = float(
        np.mean([len(grid.candidate_trajectories(q.box)) for q in workload])
    )

    start = time.perf_counter()
    rtree = RTree(db, fanout=16)
    build_rtree = time.perf_counter() - start
    start = time.perf_counter()
    results["rtree"] = [
        {
            tid
            for tid in rtree.candidate_trajectories(q.box)
            if q.box.contains_points(db[tid].points).any()
        }
        for q in workload
    ]
    timings["rtree"] = (build_rtree, time.perf_counter() - start)
    candidates["rtree"] = float(
        np.mean([len(rtree.candidate_trajectories(q.box)) for q in workload])
    )

    start = time.perf_counter()
    results["scan"] = [range_query(db, q) for q in workload]
    timings["scan"] = (0.0, time.perf_counter() - start)
    candidates["scan"] = float(len(db))

    assert results["grid"] == results["rtree"] == results["scan"]
    return timings, candidates


def bench_query_accelerators(benchmark, chengdu_bench_db):
    timings, candidates = benchmark.pedantic(
        _run_accelerator_comparison,
        args=(chengdu_bench_db,),
        rounds=1,
        iterations=1,
    )
    table = ExperimentTable(
        "Range-query accelerators (Chengdu profile, 300 selective queries)",
        ["index", "build (s)", "query (s)", "mean candidates"],
    )
    for name, (build_s, query_s) in timings.items():
        table.add_row(name, build_s, query_s, candidates[name])
    table.print()

    # Accelerators must prune hard (the robust signal) and not lose to the
    # scan by more than timing noise.
    n = candidates["scan"]
    assert candidates["grid"] < 0.5 * n
    assert candidates["rtree"] < 0.5 * n
    assert timings["grid"][1] < 1.5 * timings["scan"][1]
    assert timings["rtree"][1] < 1.5 * timings["scan"][1]
