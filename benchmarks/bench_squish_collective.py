"""Extension bench — collective budgets in the streaming setting.

The paper's Issue 1 (uniform compression ratio) motivates collective
simplification: trajectories of different complexity deserve different
ratios. This bench tests whether the argument carries over to the *online*
family by comparing per-trajectory SQUISH ("E": each trajectory gets
``r * |T|`` buffer slots) against the global-buffer variant
(``squish_database``, "W": all trajectories compete for one ``r * N``
buffer) on a database that is half simple lines, half complex zigzags.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import squish, squish_database
from repro.data import Trajectory, TrajectoryDatabase
from repro.errors import trajectory_error
from repro.eval import ExperimentTable

_RATIO = 0.15
_N_EACH = 20
_LENGTH = 80


def _mixed_db() -> tuple[TrajectoryDatabase, set[int], set[int]]:
    """Half near-straight commutes, half erratic zigzags, interleaved in time."""
    rng = np.random.default_rng(4)
    trajs = []
    simple_ids, complex_ids = set(), set()
    t0 = 0.0
    for i in range(2 * _N_EACH):
        t = t0 + np.arange(_LENGTH, dtype=float)
        if i % 2 == 0:
            xs = np.linspace(0, 100, _LENGTH) + rng.normal(0, 0.05, _LENGTH)
            ys = 0.5 * xs + rng.normal(0, 0.05, _LENGTH)
            simple_ids.add(i)
        else:
            xs = np.cumsum(rng.normal(0, 3.0, _LENGTH))
            ys = np.cumsum(rng.normal(0, 3.0, _LENGTH))
            complex_ids.add(i)
        trajs.append(Trajectory(np.column_stack([xs, ys, t]), traj_id=i))
        t0 += 0.37  # interleave lifespans
    return TrajectoryDatabase(trajs), simple_ids, complex_ids


def _run_study():
    db, simple_ids, complex_ids = _mixed_db()
    budget_total = db.budget_for_ratio(_RATIO)

    kept_e = {
        t.traj_id: squish(t, max(2, int(_RATIO * len(t)))) for t in db
    }
    kept_w = squish_database(db, budget_total)

    def summarize(kept):
        simple_pts = [len(kept[i]) for i in simple_ids]
        complex_pts = [len(kept[i]) for i in complex_ids]
        errors = [
            trajectory_error(db[tid], idxs, measure="sed")
            for tid, idxs in kept.items()
        ]
        return (
            float(np.mean(simple_pts)),
            float(np.mean(complex_pts)),
            float(np.mean(errors)),
            float(np.max(errors)),
            sum(len(v) for v in kept.values()),
        )

    return {"SQUISH (E)": summarize(kept_e), "SQUISH (W)": summarize(kept_w)}


def bench_squish_collective(benchmark):
    rows = benchmark.pedantic(_run_study, rounds=1, iterations=1)
    table = ExperimentTable(
        f"Collective vs per-trajectory streaming budgets (r={_RATIO:.0%}, "
        "half lines / half zigzags)",
        ["variant", "pts/simple traj", "pts/complex traj",
         "mean SED", "worst SED", "total points"],
    )
    for name, (simple, complex_, mean_err, worst, total) in rows.items():
        table.add_row(name, simple, complex_, mean_err, worst, total)
    table.print()

    e_simple, e_complex = rows["SQUISH (E)"][0], rows["SQUISH (E)"][1]
    w_simple, w_complex = rows["SQUISH (W)"][0], rows["SQUISH (W)"][1]
    # "E" spends the same on both halves (uniform ratio, equal lengths)...
    assert abs(e_simple - e_complex) < 1.0
    # ..."W" shifts budget from simple to complex trajectories (Issue 1)...
    assert w_complex > w_simple + 2.0
    # ...which buys a lower mean error at the same total budget.
    assert rows["SQUISH (W)"][2] < rows["SQUISH (E)"][2]
