"""Extension bench — RL learner ablation (DQN / Double-DQN / REINFORCE).

The paper trains both agents with vanilla DQN and notes that "other RL
algorithms such as policy gradient can also be used" (Section IV-C). This
bench swaps the learner while holding everything else fixed: same octree,
same MDPs, same shared Δ-window rewards, same training workloads.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import (
    SETTINGS,
    inference_workload,
    make_evaluator,
    make_workload_factory,
)
from repro.core import RL4QDTS, RL4QDTSConfig
from repro.eval import ExperimentTable
from repro.rl import DQNConfig

_RATIO = 0.045
_ROLLOUTS = 3

_VARIANTS = {
    "DQN (paper)": {"learner": "dqn", "dqn": DQNConfig()},
    "Double DQN": {"learner": "dqn", "dqn": DQNConfig(double_dqn=True)},
    "REINFORCE": {"learner": "reinforce", "dqn": DQNConfig()},
}


def _run_learner_comparison(db):
    setting = SETTINGS["geolife"]
    evaluator = make_evaluator(db, setting, distribution="data", seed=0)
    factory = make_workload_factory("data", setting, db, 200)
    rows = {}
    for name, overrides in _VARIANTS.items():
        config = RL4QDTSConfig(
            start_level=6,
            end_level=9,
            delta=10,
            n_training_queries=200,
            n_inference_queries=1000,
            episodes=4,
            n_train_databases=2,
            train_db_size=80,
            train_budget_ratio=_RATIO,
            seed=0,
            **overrides,
        )
        start = time.perf_counter()
        model = RL4QDTS.train(db, config=config, workload_factory=factory)
        train_time = time.perf_counter() - start
        annotation = inference_workload(model, db, setting, "data")
        f1s = []
        for rollout in range(_ROLLOUTS):
            simplified = model.simplify(
                db, budget_ratio=_RATIO, seed=100 + rollout, workload=annotation
            )
            f1s.append(evaluator.evaluate(simplified, ("range",))["range"])
        rows[name] = (float(np.mean(f1s)), float(np.std(f1s)), train_time)
    return rows


def bench_rl_learner_variants(benchmark, geolife_bench_db):
    rows = benchmark.pedantic(
        _run_learner_comparison, args=(geolife_bench_db,), rounds=1, iterations=1
    )
    table = ExperimentTable(
        f"RL learner ablation (Geolife profile, range query, r={_RATIO:.1%})",
        ["learner", "range F1", "std", "train (s)"],
    )
    for name, (mean, std, train_s) in rows.items():
        table.add_row(name, mean, std, train_s)
    table.print()

    # All three learners must produce usable (non-collapsed) policies.
    for name, (mean, _, _) in rows.items():
        assert mean > 0.2, f"{name} collapsed"
