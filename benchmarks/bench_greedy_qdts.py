"""Extension bench — does QDTS need RL, or is greedy coverage enough?

GreedyQDTS maximizes the training workload's F1 directly (exact marginal
gains, no learning). If the test queries were *identical* to the training
queries it would be near-unbeatable; the interesting question is held-out
behaviour: train/annotate on one sample of the query distribution, evaluate
on an independent sample — exactly the protocol RL4QDTS faces.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import (
    SETTINGS,
    inference_workload,
    make_evaluator,
    train_model,
)
from repro.baselines import get_baseline, greedy_qdts, simplify_database
from repro.eval import ExperimentTable
from repro.queries import f1_score

_RATIO = 0.045


def _run_study(db):
    setting = SETTINGS["geolife"]
    evaluator = make_evaluator(db, setting, distribution="data", seed=0)
    model = train_model(db, setting, distribution="data", seed=0)
    annotation = inference_workload(model, db, setting, "data")

    budget = db.budget_for_ratio(_RATIO)
    methods = {
        # Greedy sees the same annotation workload RL4QDTS simplifies with.
        "GreedyQDTS": lambda: greedy_qdts(
            db, budget, annotation, rng=np.random.default_rng(1)
        ),
        "RL4QDTS": lambda: model.simplify(
            db, budget_ratio=_RATIO, seed=11, workload=annotation
        ),
        "Bottom-Up(E,SED)": lambda: simplify_database(
            db, _RATIO, get_baseline("Bottom-Up(E,SED)")
        ),
    }
    rows = {}
    truths = annotation.evaluate(db)
    for name, run in methods.items():
        simplified = run()
        held_out = evaluator.evaluate(simplified, ("range",))["range"]
        results = annotation.evaluate(simplified)
        training = float(
            np.mean([f1_score(t, r) for t, r in zip(truths, results)])
        )
        rows[name] = (training, held_out)
    return rows


def bench_greedy_qdts(benchmark, geolife_bench_db):
    rows = benchmark.pedantic(
        _run_study, args=(geolife_bench_db,), rounds=1, iterations=1
    )
    table = ExperimentTable(
        f"Greedy coverage vs learned policies (Geolife profile, r={_RATIO:.1%})",
        ["method", "training-workload F1", "held-out range F1"],
    )
    for name, (training, held_out) in rows.items():
        table.add_row(name, training, held_out)
    table.print()
    print(
        "GreedyQDTS optimizes the annotation queries exactly; the held-out "
        "column shows how much of that is overfitting to the sample."
    )

    # Greedy must dominate everything on the queries it optimizes...
    assert rows["GreedyQDTS"][0] >= rows["RL4QDTS"][0] - 1e-9
    assert rows["GreedyQDTS"][0] >= rows["Bottom-Up(E,SED)"][0] - 1e-9
    # ...and all methods must stay in a sane band on held-out queries.
    for name, (_, held_out) in rows.items():
        assert held_out > 0.2, f"{name} collapsed"
