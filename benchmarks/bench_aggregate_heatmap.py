"""Extension bench — aggregate (heatmap) preservation across simplifiers.

Density aggregates are the "possibly others" of the paper's query remarks
(Section III-B): unlike range/kNN/similarity results, a cell's count drops
with *every* dropped point, so aggregate preservation stresses how evenly a
simplifier spends its budget. This bench scores heatmap intersection (the
normalized-histogram overlap) for RL4QDTS, a skyline error-driven baseline,
the uniform-thinning floor, and the stay-aware rule.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import SETTINGS, inference_workload, train_model
from repro.baselines import get_baseline, simplify_database, uniform_simplify_database
from repro.data import stay_aware_simplify_database, stay_statistics
from repro.data.stats import spatial_scale
from repro.eval import ExperimentTable
from repro.queries import heatmap_f1

_RATIO = 0.045
_GRID = 24


def _run_heatmap_study(db):
    setting = SETTINGS["geolife"]
    model = train_model(db, setting, distribution="data", seed=0)
    annotation = inference_workload(model, db, setting, "data")

    # Geolife-style stay definition: within 2% of a trajectory diameter for
    # at least ~10 sampling periods.
    radius = 0.02 * spatial_scale(db)
    dwell = 10.0 * float(
        np.median(np.concatenate([t.sampling_intervals() for t in db]))
    )
    methods = {
        "RL4QDTS": lambda: model.simplify(
            db, budget_ratio=_RATIO, seed=101, workload=annotation
        ),
        "Bottom-Up(E,SED)": lambda: simplify_database(
            db, _RATIO, get_baseline("Bottom-Up(E,SED)")
        ),
        "uniform thinning": lambda: uniform_simplify_database(db, _RATIO),
        "stay-aware (no budget)": lambda: stay_aware_simplify_database(
            db, radius, dwell
        ),
    }
    rows = []
    for name, run in methods.items():
        simplified = run()
        rows.append(
            (
                name,
                simplified.total_points / db.total_points,
                heatmap_f1(db, simplified, grid=_GRID),
            )
        )
    stays = stay_statistics(db, radius, dwell)
    return rows, stays


def bench_aggregate_heatmap(benchmark, geolife_bench_db):
    rows, stays = benchmark.pedantic(
        _run_heatmap_study, args=(geolife_bench_db,), rounds=1, iterations=1
    )
    table = ExperimentTable(
        f"Heatmap preservation (Geolife profile, {_GRID}x{_GRID} raster, "
        f"budget r={_RATIO:.1%} where applicable)",
        ["method", "kept fraction", "heatmap intersection"],
    )
    for name, kept, score in rows:
        table.add_row(name, kept, score)
    table.print()
    print(
        f"stay structure: {stays['n_stays']:.0f} episodes, "
        f"{stays['stay_point_fraction']:.1%} of points inside stays"
    )

    scores = {name: score for name, _, score in rows}
    # Uniform thinning is the heatmap-optimal strategy at a fixed budget (it
    # preserves relative density by construction) — nothing should beat it
    # by a margin, and every method must stay in a sane band.
    for name, score in scores.items():
        assert 0.1 < score <= 1.0, f"{name} heatmap collapsed"
    assert scores["uniform thinning"] >= scores["Bottom-Up(E,SED)"] - 0.1
