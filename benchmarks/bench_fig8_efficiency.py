"""Figure 8 — efficiency and scalability.

(a) Running time as the database size ``N`` grows at fixed compression ratio
    (the paper scales OSM to 10^9 points; we sweep the OSM profile at laptop
    scale — the *relative ordering* of methods is the reproduced result).
(b) Running time as the budget ``W`` grows at fixed ``N``.

The paper's finding: Top-Down adaptations are fastest, Bottom-Up adaptations
slowest (they must build the full candidate pool), RL4QDTS in between and
overtaking Top-Down as ``W`` grows.
"""

from __future__ import annotations

import time

from benchmarks.conftest import (
    SETTINGS,
    BenchSetting,
    inference_workload,
    make_workload_factory,
    train_model,
)
from repro.baselines import get_baseline, simplify_database
from repro.data import synthetic_database

_METHODS = (
    "Top-Down(E,PED)",
    "Top-Down(W,PED)",
    "Bottom-Up(E,SED)",
    "Bottom-Up(W,PED)",
    "RLTS+(E,SED)",
)
_SIZES = (30, 60, 120)  # trajectories of ~570 points each (osm profile)
_RATIOS = (0.01, 0.02, 0.045, 0.1)


def _time_method(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _osm_setting(n: int) -> BenchSetting:
    return BenchSetting("osm", n, 0.1, (0.02,), 0.25)


def _run_scalability(rlts_policies):
    """Fig 8(a): vary N at fixed ratio."""
    rows: dict[str, list[float]] = {m: [] for m in (*_METHODS, "RL4QDTS")}
    sizes_in_points = []
    for n in _SIZES:
        setting = _osm_setting(n)
        db = synthetic_database("osm", n_trajectories=n, points_scale=0.1, seed=7)
        sizes_in_points.append(db.total_points)
        for name in _METHODS:
            spec = get_baseline(name)
            rows[name].append(
                _time_method(
                    lambda: simplify_database(
                        db, 0.02, spec, rlts_policy=rlts_policies.get(spec.measure)
                    )
                )
            )
        model = train_model(db, setting, seed=0)
        annotation = inference_workload(model, db, setting, "data")
        rows["RL4QDTS"].append(
            _time_method(
                lambda: model.simplify(
                    db, budget_ratio=0.02, seed=1, workload=annotation
                )
            )
        )
    return sizes_in_points, rows


def _run_budget_sweep(rlts_policies):
    """Fig 8(b): vary W at fixed N."""
    setting = _osm_setting(_SIZES[-1])
    db = synthetic_database(
        "osm", n_trajectories=_SIZES[-1], points_scale=0.1, seed=7
    )
    model = train_model(db, setting, seed=0)
    annotation = inference_workload(model, db, setting, "data")
    rows: dict[str, list[float]] = {m: [] for m in (*_METHODS, "RL4QDTS")}
    for ratio in _RATIOS:
        for name in _METHODS:
            spec = get_baseline(name)
            rows[name].append(
                _time_method(
                    lambda: simplify_database(
                        db, ratio, spec, rlts_policy=rlts_policies.get(spec.measure)
                    )
                )
            )
        rows["RL4QDTS"].append(
            _time_method(
                lambda: model.simplify(
                    db, budget_ratio=ratio, seed=1, workload=annotation
                )
            )
        )
    return db.total_points, rows


def bench_fig8a_scalability(benchmark, rlts_policies):
    sizes, rows = benchmark.pedantic(
        _run_scalability, args=(rlts_policies,), rounds=1, iterations=1
    )
    print("\n=== Figure 8(a): running time (s) vs data size (OSM profile) ===")
    header = "method".ljust(20) + "".join(f"N={s}".rjust(12) for s in sizes)
    print(header)
    print("-" * len(header))
    for name, values in rows.items():
        print(name.ljust(20) + "".join(f"{v:>12.3f}" for v in values))

    for name, values in rows.items():
        # Time grows with N for every method.
        assert values[-1] >= values[0] * 0.5, name


def bench_fig8b_budget(benchmark, rlts_policies):
    n_points, rows = benchmark.pedantic(
        _run_budget_sweep, args=(rlts_policies,), rounds=1, iterations=1
    )
    print(f"\n=== Figure 8(b): running time (s) vs budget (N={n_points}) ===")
    header = "method".ljust(20) + "".join(f"{r:>10.2%}" for r in _RATIOS)
    print(header)
    print("-" * len(header))
    for name, values in rows.items():
        print(name.ljust(20) + "".join(f"{v:>10.3f}" for v in values))
    print(
        "paper: Bottom-Up slowest, Top-Down fastest at small W, RL4QDTS "
        "overtakes Top-Down as W grows"
    )

    # The paper's headline ordering: Bottom-Up(W) is the slowest family.
    assert rows["Bottom-Up(W,PED)"][0] > rows["Top-Down(E,PED)"][0]
