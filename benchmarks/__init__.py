"""Benchmark harness regenerating every table and figure."""
