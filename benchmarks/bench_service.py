"""Sharded QueryService vs the single-process QueryEngine.

Serving is only worth its indirection if fan-out buys wall-clock time, so
this benchmark reports the shard-count scaling curve: the same request mix
(a range workload, per-box counts, the density heatmap, an EDR kNN suite,
and a similarity suite) answered by one engine, then by the service at
K = 1, 2, 4, ... shards under both executors. Before any timing, every service configuration
must return results bit-identical to the single-engine path — the
acceptance gate of the subsystem; scaling numbers for wrong answers are
meaningless.

Expectations, not assertions, for the curve itself: the serial executor
tracks the single engine (same work, small fan-out overhead); the process
executor overlaps shards across cores, so it needs (a) more than one core
and (b) per-request compute that dwarfs the pipe round-trips before K > 1
beats the single engine. The report prints the visible core count — on a
single-core box the whole process column measures pure fan-out overhead.

The second section measures the data plane itself: worker startup time,
broadcast round-trip latency, and peak RSS for ``--store heap`` (each
process-executor worker unpickles a private copy of its shard's columnar
matrix) vs ``--store shm`` (workers map named shared-memory segments
zero-copy). Each (store, K) cell runs in a fresh child process so
``resource.getrusage(RUSAGE_CHILDREN)`` sees exactly that
configuration's workers, and workers use the ``spawn`` start method so
fork's copy-on-write pages cannot mask the private copies. Results are
persisted to ``BENCH_service.json`` with config provenance.

Run standalone::

    python benchmarks/bench_service.py            # default scale
    python benchmarks/bench_service.py --smoke    # tiny CI smoke run
    python benchmarks/bench_service.py --shards 1 2 4 8 --store shm
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone

import numpy as np

from repro.data import synthetic_database
from repro.data.io import load_database, save_database
from repro.data.stats import spatial_scale
from repro.data.store import make_store, shared_memory_available
from repro.eval.harness import QueryAccuracyEvaluator
from repro.queries.engine import QueryEngine
from repro.queries.knn import knn_query_batch
from repro.client import ServiceClient
from repro.service import QueryService, ShardManager
from repro.service.executors import ProcessShardExecutor
from repro.workloads import RangeQueryWorkload

DEFAULT_TRAJECTORIES = 200
DEFAULT_QUERIES = 100
DEFAULT_KNN_QUERIES = 8
DEFAULT_SHARDS = (1, 2, 4)


def _setup(n_trajectories: int, n_queries: int, n_knn: int, seed: int = 7):
    db = synthetic_database(
        "geolife", n_trajectories=n_trajectories, points_scale=0.1, seed=seed
    )
    workload = RangeQueryWorkload.from_data_distribution(db, n_queries, seed=seed)
    rng = np.random.default_rng(seed)
    qids = [int(i) for i in rng.choice(len(db), size=n_knn, replace=False)]
    queries = [db[q] for q in qids]
    windows = [QueryAccuracyEvaluator._central_window(q) for q in queries]
    eps = 0.10 * spatial_scale(db)
    delta = 0.15 * spatial_scale(db)
    return db, workload, queries, windows, eps, delta


def _best_of(fn, repeats: int, setup=None) -> float:
    """Best wall-clock of ``repeats`` runs; ``setup`` runs outside the timer."""
    best = float("inf")
    for _ in range(repeats):
        if setup is not None:
            setup()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _clear_caches(service_or_engine, single: bool) -> None:
    """Deep cache clear (request LRU *and* engine memos on both sides).

    Run OUTSIDE the timed region: the service's deep clear is a K-worker
    broadcast round-trip while the engine's is a local dict clear, so
    timing it would bias the curve against the service.
    """
    if single:
        service_or_engine.clear_cache()
    else:
        service_or_engine.clear_cache(deep=True)


def _request_mix(
    service_or_engine, workload, queries, windows, eps, delta, single: bool
):
    """The benchmark's request mix on either execution path.

    Callers clear caches first (see :func:`_clear_caches`), so this times
    warm batched execution, not memo lookups.
    """
    if single:
        engine = service_or_engine
        return (
            engine.evaluate(workload),
            engine.count(workload.boxes),
            engine.histogram(32),
            knn_query_batch(
                engine.db, queries, 3, windows, "edr", eps=eps, engine=engine
            ),
            engine.similarity(queries, delta),
        )
    client = ServiceClient(service_or_engine)
    return (
        client.range(workload).result_sets,
        client.count(workload.boxes).counts,
        client.histogram(32).histogram,
        client.knn(queries, 3, windows, eps=eps).neighbors,
        client.similarity(queries, delta).result_sets,
    )


def run_scaling(
    n_trajectories: int = DEFAULT_TRAJECTORIES,
    n_queries: int = DEFAULT_QUERIES,
    n_knn: int = DEFAULT_KNN_QUERIES,
    shard_counts: tuple[int, ...] = DEFAULT_SHARDS,
    repeats: int = 3,
    executors: tuple[str, ...] = ("serial", "process"),
    store: str = "heap",
) -> dict[str, float]:
    """Time the request mix per configuration; parity is asserted first."""
    db, workload, queries, windows, eps, delta = _setup(
        n_trajectories, n_queries, n_knn
    )
    engine = QueryEngine(db)
    _clear_caches(engine, single=True)
    reference = _request_mix(
        engine, workload, queries, windows, eps, delta, single=True
    )

    results: dict[str, float] = {}
    counters: dict[str, dict] = {}
    results["single engine"] = _best_of(
        lambda: _request_mix(
            engine, workload, queries, windows, eps, delta, single=True
        ),
        repeats,
        setup=lambda: _clear_caches(engine, single=True),
    )
    for executor in executors:
        for k in shard_counts:
            with QueryService(
                db, n_shards=k, partitioner="hash", executor=executor,
                store=store,
            ) as service:
                _clear_caches(service, single=False)
                mix = _request_mix(
                    service, workload, queries, windows, eps, delta, single=False
                )
                assert mix[0] == reference[0], f"range diverged ({executor}, K={k})"
                assert np.array_equal(mix[1], reference[1]), (
                    f"count diverged ({executor}, K={k})"
                )
                assert np.array_equal(mix[2], reference[2]), (
                    f"histogram diverged ({executor}, K={k})"
                )
                assert mix[3] == reference[3], f"kNN diverged ({executor}, K={k})"
                assert mix[4] == reference[4], (
                    f"similarity diverged ({executor}, K={k})"
                )
                results[f"{executor} K={k}"] = _best_of(
                    lambda: _request_mix(
                        service, workload, queries, windows, eps, delta,
                        single=False,
                    ),
                    repeats,
                    setup=lambda: _clear_caches(service, single=False),
                )
                summary = service.stats.summary()
                counters[f"{executor} K={k}"] = {
                    key: summary[key]
                    for key in ("compactions", "points_dropped", "bytes_base")
                }
    print("\ncompaction counters (exact policy; see bench_compaction.py for "
          "the simplifying-policy frontier)")
    for name, c in counters.items():
        print(
            f"{name:<16} compactions={c['compactions']} "
            f"points_dropped={c['points_dropped']} bytes_base={c['bytes_base']}"
        )
    return results


# ---------------------------------------------------------------------------
# Data-plane section: worker startup / broadcast latency / peak RSS per store
# ---------------------------------------------------------------------------

def _vm_hwm_kb(pid: int) -> int:
    """Peak resident set size of a live process in kB (Linux /proc)."""
    try:
        with open(f"/proc/{pid}/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def _child_measure(cfg: dict) -> dict:
    """One (store, K) data-plane measurement; runs in a fresh process.

    Isolation matters twice over: ``getrusage(RUSAGE_CHILDREN)`` is a
    monotone high-water mark over *all* waited-for children, so each
    configuration must own its process tree; and the ``spawn`` start
    method makes heap-store workers actually pay the snapshot
    pickle/unpickle that fork's copy-on-write would hide.
    """
    import resource

    db = load_database(cfg["db"])
    manager = ShardManager.create(db, cfg["shards"], "hash")
    store = make_store(cfg["store"])
    try:
        t0 = time.perf_counter()
        snapshots = manager.export_snapshots(store)
        export_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        executor = ProcessShardExecutor(snapshots, mp_context="spawn")
        executor.broadcast("info", {})  # workers up and answering
        startup_s = time.perf_counter() - t0

        # Workers are idle with engines unbuilt: what is resident now is
        # the data plane itself — a private unpickled snapshot per worker
        # under heap, a not-yet-touched mapping under shm.
        workers_rss_kb = sum(_vm_hwm_kb(p) for p in executor.worker_pids())

        broadcast_s = _best_of(
            lambda: executor.broadcast("info", {}), cfg["repeats"]
        )
        executor.close()
    finally:
        store.close()
    return {
        "store": cfg["store"],
        "shards": cfg["shards"],
        "export_s": export_s,
        "startup_s": startup_s,
        "broadcast_s": broadcast_s,
        "workers_total_peak_rss_kb": workers_rss_kb,
        "worker_max_rss_kb": resource.getrusage(
            resource.RUSAGE_CHILDREN
        ).ru_maxrss,
        "self_max_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def run_data_plane(
    n_trajectories: int,
    points_scale: float,
    shard_counts: tuple[int, ...],
    stores: tuple[str, ...],
    repeats: int = 3,
    seed: int = 7,
) -> list[dict]:
    """Per-(store, K) startup/latency/RSS rows, each from a fresh child."""
    db = synthetic_database(
        "geolife", n_trajectories=n_trajectories, points_scale=points_scale,
        seed=seed,
    )
    matrix_mb = db.point_matrix().nbytes / 1e6
    print(
        f"\n=== Data plane: {len(db)} trajectories, "
        f"{matrix_mb:.1f} MB columnar matrix, spawn workers ==="
    )
    rows: list[dict] = []
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench_db.npz")
        save_database(db, path)
        for store in stores:
            for k in shard_counts:
                cfg = {
                    "db": path, "store": store, "shards": k,
                    "repeats": repeats,
                }
                proc = subprocess.run(
                    [sys.executable, os.path.abspath(__file__),
                     "--child-measure", json.dumps(cfg)],
                    capture_output=True, text=True, env=os.environ,
                )
                if proc.returncode != 0:
                    raise RuntimeError(
                        f"data-plane child failed ({store}, K={k}):\n"
                        f"{proc.stderr}"
                    )
                rows.append(json.loads(proc.stdout.splitlines()[-1]))
    header = (
        f"{'store':<6}{'K':>3}{'export':>10}{'startup':>10}"
        f"{'broadcast':>11}{'workers RSS':>13}{'max worker':>12}"
    )
    print(header)
    for r in rows:
        print(
            f"{r['store']:<6}{r['shards']:>3}"
            f"{r['export_s'] * 1000:>8.1f}ms"
            f"{r['startup_s'] * 1000:>8.1f}ms"
            f"{r['broadcast_s'] * 1000:>9.2f}ms"
            f"{r['workers_total_peak_rss_kb'] / 1024:>10.1f}MB"
            f"{r['worker_max_rss_kb'] / 1024:>9.1f}MB"
        )
    return rows


# ---------------------------------------------------------------------------
# Replication section: failover recovery, watchdog restart, reshard pauses
# ---------------------------------------------------------------------------

def run_replication(
    n_trajectories: int,
    n_queries: int,
    repeats: int = 3,
    seed: int = 7,
) -> dict:
    """Fault-tolerance latencies of the replicated process data plane.

    * **failover_recovery** — SIGKILL one of a shard's two replicas, then
      time the next query burst: the gap over the pre-kill burst is what
      failover (detecting the dead pipe, retrying on the sibling) costs
      the caller.
    * **watchdog_restart** — `restart_dead()` wall time (snapshot attach +
      ingest-log replay + readiness ping), plus the per-replica
      `replication.restart_latency_s` histogram the executor records.
    * **split/merge pause** — wall time of online `split_shard` /
      `merge_shards`, the window during which the epoch write lock
      excludes queries. Parity is asserted around every fault.
    """
    import signal as _signal

    db = synthetic_database(
        "geolife", n_trajectories=n_trajectories, points_scale=0.1, seed=seed
    )
    workload = RangeQueryWorkload.from_data_distribution(
        db, n_queries, seed=seed
    )
    print(
        f"\n=== Replication: {len(db)} trajectories, 2 shards x 2 replicas, "
        f"{n_queries} range queries per burst ==="
    )
    row: dict = {"shards": 2, "replicas": 2}
    with QueryService(
        db,
        n_shards=2,
        executor="process",
        partitioner="spatial",
        replicas=2,
    ) as service:
        client = ServiceClient(service)
        executor = service._executor

        def burst():
            service.clear_cache(deep=True)
            start = time.perf_counter()
            counts = client.count(workload.boxes).counts
            return time.perf_counter() - start, counts

        reference = burst()[1]
        baseline_s = min(burst()[0] for _ in range(repeats))

        failover, restart = [], []
        for _ in range(repeats):
            victim = executor.replica_sets[0].replicas[0]
            os.kill(victim.proc.pid, _signal.SIGKILL)
            victim.proc.join(timeout=10.0)
            recovery_s, counts = burst()
            assert np.array_equal(counts, reference), "failover changed answers"
            failover.append(recovery_s)
            start = time.perf_counter()
            restarted = executor.restart_dead()
            restart.append(time.perf_counter() - start)
            assert restarted == 1

        split, merge = [], []
        for _ in range(repeats):
            start = time.perf_counter()
            service.split_shard(0)
            split.append(time.perf_counter() - start)
            start = time.perf_counter()
            service.merge_shards(0)
            merge.append(time.perf_counter() - start)
            _, counts = burst()
            assert np.array_equal(counts, reference), "reshard changed answers"

        stats = executor.replication_stats()
        row.update(
            query_burst_s=baseline_s,
            failover_recovery_s=min(failover),
            restart_s=min(restart),
            split_pause_s=min(split),
            merge_pause_s=min(merge),
            counters=stats["counters"]["counters"],
            restart_latency=stats["counters"]["histograms"].get(
                "replication.restart_latency_s"
            ),
        )
    print(
        f"query burst {baseline_s * 1000:>8.2f}ms   "
        f"failover recovery {row['failover_recovery_s'] * 1000:>8.2f}ms\n"
        f"replica restart {row['restart_s'] * 1000:>8.2f}ms   "
        f"split pause {row['split_pause_s'] * 1000:>8.2f}ms   "
        f"merge pause {row['merge_pause_s'] * 1000:>8.2f}ms"
    )
    return row


def _persist(
    path: str,
    config: dict,
    scaling: dict,
    data_plane: list,
    replication: dict | None = None,
) -> None:
    """Append this run to ``BENCH_service.json`` (config provenance kept)."""
    runs = []
    if os.path.exists(path):
        try:
            with open(path) as fh:
                runs = json.load(fh).get("runs", [])
        except (OSError, ValueError):
            runs = []
    runs.append(
        {
            "config": config,
            "scaling": scaling,
            "data_plane": data_plane,
            **({"replication": replication} if replication else {}),
        }
    )
    with open(path, "w") as fh:
        json.dump(
            {"schema": 1, "benchmark": "bench_service", "runs": runs},
            fh, indent=2, sort_keys=True,
        )
        fh.write("\n")
    print(f"\npersisted results -> {path}")


def _report(results: dict[str, float], header: str) -> None:
    print(f"\n=== {header} ===")
    print(f"visible CPU cores: {os.cpu_count()}")
    base = results["single engine"]
    for name, seconds in results.items():
        rel = base / max(seconds, 1e-12)
        print(f"{name:<16}{seconds * 1000:>10.3f} ms   ({rel:4.2f}x vs single)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny database + workload; checks exact parity, skips speed bars",
    )
    parser.add_argument("--trajectories", type=int, default=DEFAULT_TRAJECTORIES)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--knn-queries", type=int, default=DEFAULT_KNN_QUERIES)
    parser.add_argument(
        "--shards", type=int, nargs="+", default=list(DEFAULT_SHARDS)
    )
    parser.add_argument(
        "--executors", nargs="+", default=["serial", "process"],
        choices=["serial", "process"],
    )
    parser.add_argument(
        "--store", default="heap", choices=["heap", "shm"],
        help="array-store provider for the scaling section (parity is "
        "asserted either way; shm additionally exercises the zero-copy "
        "snapshot path)",
    )
    parser.add_argument(
        "--dp-trajectories", type=int, default=400,
        help="database size for the data-plane section (bigger shows the "
        "heap-vs-shm RSS gap above interpreter baseline)",
    )
    parser.add_argument("--dp-points-scale", type=float, default=1.0)
    parser.add_argument(
        "--skip-data-plane", action="store_true",
        help="scaling/parity section only",
    )
    parser.add_argument(
        "--skip-replication", action="store_true",
        help="skip the failover/restart/reshard latency section",
    )
    parser.add_argument(
        "--out", default=None,
        help="persist results as JSON (default: BENCH_service.json at the "
        "repo root for full runs; smoke runs persist only with an "
        "explicit --out)",
    )
    parser.add_argument("--child-measure", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child_measure:
        print(json.dumps(_child_measure(json.loads(args.child_measure))))
        return 0

    if args.smoke:
        n_trajectories, n_queries, n_knn = 20, 10, 4
        shard_counts: tuple[int, ...] = (1, 2)
        repeats = 1
        dp_trajectories, dp_points_scale = 20, 0.1
        dp_shards: tuple[int, ...] = (2,)
    else:
        n_trajectories, n_queries = args.trajectories, args.queries
        n_knn = args.knn_queries
        shard_counts = tuple(args.shards)
        repeats = 3
        dp_trajectories = args.dp_trajectories
        dp_points_scale = args.dp_points_scale
        dp_shards = tuple(k for k in shard_counts if k > 1) or shard_counts

    results = run_scaling(
        n_trajectories,
        n_queries,
        n_knn,
        shard_counts,
        repeats,
        tuple(args.executors),
        store=args.store,
    )
    _report(
        results,
        f"QueryService scaling ({n_trajectories} trajectories, "
        f"{n_queries} range + {n_knn} kNN queries, shard counts "
        f"{list(shard_counts)}, {args.store} store)",
    )

    data_plane: list[dict] = []
    if not args.skip_data_plane:
        stores = ("heap", "shm") if shared_memory_available() else ("heap",)
        data_plane = run_data_plane(
            dp_trajectories, dp_points_scale, dp_shards, stores,
            repeats=repeats,
        )

    replication: dict | None = None
    if not args.skip_replication:
        replication = run_replication(
            n_trajectories, n_queries, repeats=repeats
        )

    out = args.out
    if out is None and not args.smoke:
        out = os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "..", "BENCH_service.json",
        )
    if out:
        _persist(
            os.path.normpath(out),
            {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "platform": platform.platform(),
                "cpu_count": os.cpu_count(),
                "timestamp": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
                "smoke": bool(args.smoke),
                "scaling": {
                    "trajectories": n_trajectories,
                    "queries": n_queries,
                    "knn_queries": n_knn,
                    "shards": list(shard_counts),
                    "executors": list(args.executors),
                    "store": args.store,
                    "repeats": repeats,
                },
                "data_plane": {
                    "trajectories": dp_trajectories,
                    "points_scale": dp_points_scale,
                    "shards": list(dp_shards),
                    "mp_context": "spawn",
                    "rss_source": "resource.getrusage + /proc VmHWM",
                },
                "replication": None
                if replication is None
                else {
                    "trajectories": n_trajectories,
                    "queries": n_queries,
                    "shards": 2,
                    "replicas": 2,
                    "repeats": repeats,
                },
            },
            results,
            data_plane,
            replication,
        )
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
