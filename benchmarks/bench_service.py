"""Sharded QueryService vs the single-process QueryEngine.

Serving is only worth its indirection if fan-out buys wall-clock time, so
this benchmark reports the shard-count scaling curve: the same request mix
(a range workload, per-box counts, the density heatmap, an EDR kNN suite,
and a similarity suite) answered by one engine, then by the service at
K = 1, 2, 4, ... shards under both executors. Before any timing, every service configuration
must return results bit-identical to the single-engine path — the
acceptance gate of the subsystem; scaling numbers for wrong answers are
meaningless.

Expectations, not assertions, for the curve itself: the serial executor
tracks the single engine (same work, small fan-out overhead); the process
executor overlaps shards across cores, so it needs (a) more than one core
and (b) per-request compute that dwarfs the pipe round-trips before K > 1
beats the single engine. The report prints the visible core count — on a
single-core box the whole process column measures pure fan-out overhead.

Run standalone::

    python benchmarks/bench_service.py            # default scale
    python benchmarks/bench_service.py --smoke    # tiny CI smoke run
    python benchmarks/bench_service.py --shards 1 2 4 8
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.data import synthetic_database
from repro.data.stats import spatial_scale
from repro.eval.harness import QueryAccuracyEvaluator
from repro.queries.engine import QueryEngine
from repro.queries.knn import knn_query_batch
from repro.client import ServiceClient
from repro.service import QueryService
from repro.workloads import RangeQueryWorkload

DEFAULT_TRAJECTORIES = 200
DEFAULT_QUERIES = 100
DEFAULT_KNN_QUERIES = 8
DEFAULT_SHARDS = (1, 2, 4)


def _setup(n_trajectories: int, n_queries: int, n_knn: int, seed: int = 7):
    db = synthetic_database(
        "geolife", n_trajectories=n_trajectories, points_scale=0.1, seed=seed
    )
    workload = RangeQueryWorkload.from_data_distribution(db, n_queries, seed=seed)
    rng = np.random.default_rng(seed)
    qids = [int(i) for i in rng.choice(len(db), size=n_knn, replace=False)]
    queries = [db[q] for q in qids]
    windows = [QueryAccuracyEvaluator._central_window(q) for q in queries]
    eps = 0.10 * spatial_scale(db)
    delta = 0.15 * spatial_scale(db)
    return db, workload, queries, windows, eps, delta


def _best_of(fn, repeats: int, setup=None) -> float:
    """Best wall-clock of ``repeats`` runs; ``setup`` runs outside the timer."""
    best = float("inf")
    for _ in range(repeats):
        if setup is not None:
            setup()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _clear_caches(service_or_engine, single: bool) -> None:
    """Deep cache clear (request LRU *and* engine memos on both sides).

    Run OUTSIDE the timed region: the service's deep clear is a K-worker
    broadcast round-trip while the engine's is a local dict clear, so
    timing it would bias the curve against the service.
    """
    if single:
        service_or_engine.clear_cache()
    else:
        service_or_engine.clear_cache(deep=True)


def _request_mix(
    service_or_engine, workload, queries, windows, eps, delta, single: bool
):
    """The benchmark's request mix on either execution path.

    Callers clear caches first (see :func:`_clear_caches`), so this times
    warm batched execution, not memo lookups.
    """
    if single:
        engine = service_or_engine
        return (
            engine.evaluate(workload),
            engine.count(workload.boxes),
            engine.histogram(32),
            knn_query_batch(
                engine.db, queries, 3, windows, "edr", eps=eps, engine=engine
            ),
            engine.similarity(queries, delta),
        )
    client = ServiceClient(service_or_engine)
    return (
        client.range(workload).result_sets,
        client.count(workload.boxes).counts,
        client.histogram(32).histogram,
        client.knn(queries, 3, windows, eps=eps).neighbors,
        client.similarity(queries, delta).result_sets,
    )


def run_scaling(
    n_trajectories: int = DEFAULT_TRAJECTORIES,
    n_queries: int = DEFAULT_QUERIES,
    n_knn: int = DEFAULT_KNN_QUERIES,
    shard_counts: tuple[int, ...] = DEFAULT_SHARDS,
    repeats: int = 3,
    executors: tuple[str, ...] = ("serial", "process"),
) -> dict[str, float]:
    """Time the request mix per configuration; parity is asserted first."""
    db, workload, queries, windows, eps, delta = _setup(
        n_trajectories, n_queries, n_knn
    )
    engine = QueryEngine(db)
    _clear_caches(engine, single=True)
    reference = _request_mix(
        engine, workload, queries, windows, eps, delta, single=True
    )

    results: dict[str, float] = {}
    results["single engine"] = _best_of(
        lambda: _request_mix(
            engine, workload, queries, windows, eps, delta, single=True
        ),
        repeats,
        setup=lambda: _clear_caches(engine, single=True),
    )
    for executor in executors:
        for k in shard_counts:
            with QueryService(
                db, n_shards=k, partitioner="hash", executor=executor
            ) as service:
                _clear_caches(service, single=False)
                mix = _request_mix(
                    service, workload, queries, windows, eps, delta, single=False
                )
                assert mix[0] == reference[0], f"range diverged ({executor}, K={k})"
                assert np.array_equal(mix[1], reference[1]), (
                    f"count diverged ({executor}, K={k})"
                )
                assert np.array_equal(mix[2], reference[2]), (
                    f"histogram diverged ({executor}, K={k})"
                )
                assert mix[3] == reference[3], f"kNN diverged ({executor}, K={k})"
                assert mix[4] == reference[4], (
                    f"similarity diverged ({executor}, K={k})"
                )
                results[f"{executor} K={k}"] = _best_of(
                    lambda: _request_mix(
                        service, workload, queries, windows, eps, delta,
                        single=False,
                    ),
                    repeats,
                    setup=lambda: _clear_caches(service, single=False),
                )
    return results


def _report(results: dict[str, float], header: str) -> None:
    import os

    print(f"\n=== {header} ===")
    print(f"visible CPU cores: {os.cpu_count()}")
    base = results["single engine"]
    for name, seconds in results.items():
        rel = base / max(seconds, 1e-12)
        print(f"{name:<16}{seconds * 1000:>10.3f} ms   ({rel:4.2f}x vs single)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny database + workload; checks exact parity, skips speed bars",
    )
    parser.add_argument("--trajectories", type=int, default=DEFAULT_TRAJECTORIES)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--knn-queries", type=int, default=DEFAULT_KNN_QUERIES)
    parser.add_argument(
        "--shards", type=int, nargs="+", default=list(DEFAULT_SHARDS)
    )
    parser.add_argument(
        "--executors", nargs="+", default=["serial", "process"],
        choices=["serial", "process"],
    )
    args = parser.parse_args(argv)

    if args.smoke:
        n_trajectories, n_queries, n_knn = 20, 10, 4
        shard_counts: tuple[int, ...] = (1, 2)
        repeats = 1
    else:
        n_trajectories, n_queries = args.trajectories, args.queries
        n_knn = args.knn_queries
        shard_counts = tuple(args.shards)
        repeats = 3

    results = run_scaling(
        n_trajectories,
        n_queries,
        n_knn,
        shard_counts,
        repeats,
        tuple(args.executors),
    )
    _report(
        results,
        f"QueryService scaling ({n_trajectories} trajectories, "
        f"{n_queries} range + {n_knn} kNN queries, shard counts "
        f"{list(shard_counts)})",
    )
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
