"""Batch QueryEngine vs the per-query reference path.

The training loop evaluates its whole range-query workload on every reward
window, and the evaluation harness re-runs the same workload per simplified
database — so workload evaluation throughput bounds both. This bench times
three execution modes over the same workload:

* ``per-query``   — ``range_query_batch``: the trajectory-walking reference;
* ``engine cold`` — engine construction (flat matrices + grid) + evaluation;
* ``engine warm`` — a built engine with the result memo cleared each run
  (the steady-state cost of evaluating a *new* database state);
* ``engine memo`` — re-evaluating an unchanged state (a cache hit).

The engine must return results identical to the reference and (at default
scale) beat it by >= 5x warm.

Run standalone::

    python benchmarks/bench_query_engine.py            # default scale
    python benchmarks/bench_query_engine.py --smoke    # tiny CI smoke run
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.data import synthetic_database
from repro.queries.engine import QueryEngine
from repro.queries.range_query import range_query_batch
from repro.workloads import RangeQueryWorkload

#: Default scale: the acceptance scenario — 100 range queries over a
#: 200-trajectory synthetic database.
DEFAULT_TRAJECTORIES = 200
DEFAULT_QUERIES = 100


def _setup(n_trajectories: int, n_queries: int, seed: int = 7):
    db = synthetic_database(
        "geolife", n_trajectories=n_trajectories, points_scale=0.1, seed=seed
    )
    workload = RangeQueryWorkload.from_data_distribution(db, n_queries, seed=seed)
    return db, workload


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_comparison(
    n_trajectories: int = DEFAULT_TRAJECTORIES,
    n_queries: int = DEFAULT_QUERIES,
    repeats: int = 3,
) -> dict[str, float]:
    """Time all modes; returns seconds per mode (plus the warm speedup)."""
    db, workload = _setup(n_trajectories, n_queries)
    queries = list(workload.queries)

    engine = QueryEngine(db)
    reference = range_query_batch(db, queries)
    assert engine.evaluate(workload) == reference, "engine diverged from reference"

    t_naive = _best_of(lambda: range_query_batch(db, queries), repeats)

    def cold():
        QueryEngine(db).evaluate(workload)

    t_cold = _best_of(cold, repeats)

    def warm():
        engine.clear_cache()
        engine.evaluate(workload)

    t_warm = _best_of(warm, repeats)
    t_memo = _best_of(lambda: engine.evaluate(workload), repeats)

    return {
        "per-query": t_naive,
        "engine cold": t_cold,
        "engine warm": t_warm,
        "engine memo": t_memo,
        "speedup (warm)": t_naive / max(t_warm, 1e-12),
    }


def _report(results: dict[str, float], n_trajectories: int, n_queries: int) -> None:
    print(
        f"\n=== Batch QueryEngine vs per-query loop "
        f"({n_trajectories} trajectories, {n_queries} range queries) ==="
    )
    for name, value in results.items():
        if name.startswith("speedup"):
            print(f"{name:<16}{value:>10.1f}x")
        else:
            print(f"{name:<16}{value * 1000:>10.3f} ms")


def bench_query_engine(benchmark):
    """pytest-benchmark entry: steady-state engine evaluation."""
    db, workload = _setup(DEFAULT_TRAJECTORIES, DEFAULT_QUERIES)
    engine = QueryEngine(db)
    reference = range_query_batch(db, list(workload.queries))

    def warm():
        engine.clear_cache()
        return engine.evaluate(workload)

    assert benchmark(warm) == reference
    results = run_comparison()
    _report(results, DEFAULT_TRAJECTORIES, DEFAULT_QUERIES)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny database + workload; checks correctness, skips the speedup bar",
    )
    parser.add_argument("--trajectories", type=int, default=DEFAULT_TRAJECTORIES)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="fail unless the warm engine beats the per-query loop by this factor",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        n_trajectories, n_queries = 20, 10
    else:
        n_trajectories, n_queries = args.trajectories, args.queries
    results = run_comparison(n_trajectories, n_queries)
    _report(results, n_trajectories, n_queries)
    if not args.smoke and results["speedup (warm)"] < args.min_speedup:
        print(
            f"FAIL: warm speedup {results['speedup (warm)']:.1f}x is below "
            f"the {args.min_speedup:.1f}x bar"
        )
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
