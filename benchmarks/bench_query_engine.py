"""Batch QueryEngine vs the per-query reference paths.

The training loop evaluates its whole range-query workload on every reward
window, and the evaluation harness re-runs the same workload — plus kNN and
aggregate queries — per simplified database, so batched execution
throughput bounds both. Three benchmark sections, each asserting exact
equivalence with its per-query reference before timing:

* ``range``     — workload evaluation: the trajectory-walking
  ``range_query_batch`` vs the engine cold (construction + evaluation),
  warm (memo cleared each run), and memo (cache hit) modes;
* ``knn``       — the harness kNN scoring path: a ``knn_query`` loop over
  central-window queries vs ``knn_query_batch`` (CSR candidate generation
  + candidate-vectorized EDR);
* ``aggregate`` — per-box point counts and the density heatmap: the
  per-trajectory scans vs ``QueryEngine.count`` / ``.histogram``.

At default scale the engine must beat the references by >= 5x (range warm)
and >= 3x (kNN batch).

Run standalone::

    python benchmarks/bench_query_engine.py            # default scale
    python benchmarks/bench_query_engine.py --smoke    # tiny CI smoke run
    python benchmarks/bench_query_engine.py --section knn
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.data import synthetic_database
from repro.data.stats import spatial_scale
from repro.queries.aggregate import count_query_scan, density_histogram_scan
from repro.queries.engine import QueryEngine
from repro.queries.knn import knn_query, knn_query_batch
from repro.queries.range_query import range_query_batch
from repro.workloads import RangeQueryWorkload

#: Default scale: the acceptance scenario — 100 range queries over a
#: 200-trajectory synthetic database (8 kNN queries, 64 aggregate boxes).
DEFAULT_TRAJECTORIES = 200
DEFAULT_QUERIES = 100
DEFAULT_KNN_QUERIES = 8
DEFAULT_AGG_BOXES = 64
SECTIONS = ("range", "knn", "aggregate")


def _setup(n_trajectories: int, n_queries: int, seed: int = 7):
    db = synthetic_database(
        "geolife", n_trajectories=n_trajectories, points_scale=0.1, seed=seed
    )
    workload = RangeQueryWorkload.from_data_distribution(db, n_queries, seed=seed)
    return db, workload


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_comparison(
    n_trajectories: int = DEFAULT_TRAJECTORIES,
    n_queries: int = DEFAULT_QUERIES,
    repeats: int = 3,
) -> dict[str, float]:
    """Time all modes; returns seconds per mode (plus the warm speedup)."""
    db, workload = _setup(n_trajectories, n_queries)
    queries = list(workload.queries)

    engine = QueryEngine(db)
    reference = range_query_batch(db, queries)
    assert engine.evaluate(workload) == reference, "engine diverged from reference"

    t_naive = _best_of(lambda: range_query_batch(db, queries), repeats)

    def cold():
        QueryEngine(db).evaluate(workload)

    t_cold = _best_of(cold, repeats)

    def warm():
        engine.clear_cache()
        engine.evaluate(workload)

    t_warm = _best_of(warm, repeats)
    t_memo = _best_of(lambda: engine.evaluate(workload), repeats)

    return {
        "per-query": t_naive,
        "engine cold": t_cold,
        "engine warm": t_warm,
        "engine memo": t_memo,
        "speedup (warm)": t_naive / max(t_warm, 1e-12),
    }


def run_knn_comparison(
    n_trajectories: int = DEFAULT_TRAJECTORIES,
    n_queries: int = DEFAULT_KNN_QUERIES,
    repeats: int = 3,
) -> dict[str, float]:
    """Time the harness kNN scoring path: per-query loop vs batch engine.

    Mirrors :class:`repro.eval.harness.QueryAccuracyEvaluator`: central
    middle-half windows over sampled query trajectories, EDR at the
    dataset-relative threshold. The batch path must return results
    identical to the loop.
    """
    from repro.eval.harness import QueryAccuracyEvaluator

    db, _ = _setup(n_trajectories, 1)
    eps = 0.10 * spatial_scale(db)
    rng = np.random.default_rng(13)
    qids = [int(i) for i in rng.choice(len(db), size=n_queries, replace=False)]
    queries = [db[qid] for qid in qids]
    windows = [QueryAccuracyEvaluator._central_window(q) for q in queries]

    engine = QueryEngine(db)
    reference = [
        knn_query(db, q, 3, w, "edr", eps=eps) for q, w in zip(queries, windows)
    ]
    batched = knn_query_batch(db, queries, 3, windows, "edr", eps=eps, engine=engine)
    assert batched == reference, "batch kNN diverged from the per-query loop"

    t_loop = _best_of(
        lambda: [
            knn_query(db, q, 3, w, "edr", eps=eps)
            for q, w in zip(queries, windows)
        ],
        repeats,
    )

    def batch():
        engine.clear_cache()
        knn_query_batch(db, queries, 3, windows, "edr", eps=eps, engine=engine)

    t_batch = _best_of(batch, repeats)
    t_memo = _best_of(
        lambda: knn_query_batch(
            db, queries, 3, windows, "edr", eps=eps, engine=engine
        ),
        repeats,
    )
    return {
        "per-query": t_loop,
        "engine batch": t_batch,
        "candidate memo": t_memo,
        "speedup (batch)": t_loop / max(t_batch, 1e-12),
    }


def run_aggregate_comparison(
    n_trajectories: int = DEFAULT_TRAJECTORIES,
    n_boxes: int = DEFAULT_AGG_BOXES,
    grid: int = 32,
    repeats: int = 3,
) -> dict[str, float]:
    """Time batched counts + histogram vs the per-trajectory scans."""
    db, workload = _setup(n_trajectories, n_boxes)
    boxes = workload.boxes

    engine = QueryEngine(db)
    reference_counts = [count_query_scan(db, b) for b in boxes]
    assert engine.count(boxes).tolist() == reference_counts, (
        "engine counts diverged from the scan"
    )
    assert np.array_equal(
        engine.histogram(grid), density_histogram_scan(db, grid)
    ), "engine histogram diverged from the scan"

    t_count_scan = _best_of(
        lambda: [count_query_scan(db, b) for b in boxes], repeats
    )

    def count_batch():
        engine.clear_cache()
        engine.count(boxes)

    t_count_batch = _best_of(count_batch, repeats)
    t_hist_scan = _best_of(lambda: density_histogram_scan(db, grid), repeats)

    def hist_batch():
        engine.clear_cache()
        engine.histogram(grid)

    t_hist_batch = _best_of(hist_batch, repeats)
    return {
        "count scan": t_count_scan,
        "count batch": t_count_batch,
        "hist scan": t_hist_scan,
        "hist batch": t_hist_batch,
        "speedup (count)": t_count_scan / max(t_count_batch, 1e-12),
        "speedup (hist)": t_hist_scan / max(t_hist_batch, 1e-12),
    }


def _report(results: dict[str, float], header: str) -> None:
    print(f"\n=== {header} ===")
    for name, value in results.items():
        if name.startswith("speedup"):
            print(f"{name:<16}{value:>10.1f}x")
        else:
            print(f"{name:<16}{value * 1000:>10.3f} ms")


def bench_query_engine(benchmark):
    """pytest-benchmark entry: steady-state engine evaluation."""
    db, workload = _setup(DEFAULT_TRAJECTORIES, DEFAULT_QUERIES)
    engine = QueryEngine(db)
    reference = range_query_batch(db, list(workload.queries))

    def warm():
        engine.clear_cache()
        return engine.evaluate(workload)

    assert benchmark(warm) == reference
    results = run_comparison()
    _report(
        results,
        f"Batch QueryEngine vs per-query loop ({DEFAULT_TRAJECTORIES} "
        f"trajectories, {DEFAULT_QUERIES} range queries)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny database + workload; checks correctness, skips the speedup bars",
    )
    parser.add_argument(
        "--section",
        choices=SECTIONS + ("all",),
        default="all",
        help="which benchmark section(s) to run",
    )
    parser.add_argument("--trajectories", type=int, default=DEFAULT_TRAJECTORIES)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--knn-queries", type=int, default=DEFAULT_KNN_QUERIES)
    parser.add_argument("--agg-boxes", type=int, default=DEFAULT_AGG_BOXES)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="fail unless the warm engine beats the per-query range loop by this",
    )
    parser.add_argument(
        "--min-knn-speedup",
        type=float,
        default=3.0,
        help="fail unless batch kNN beats the per-query loop by this factor",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        n_trajectories, n_queries = 20, 10
        n_knn, n_boxes = 4, 8
    else:
        n_trajectories, n_queries = args.trajectories, args.queries
        n_knn, n_boxes = args.knn_queries, args.agg_boxes
    sections = SECTIONS if args.section == "all" else (args.section,)
    failures: list[str] = []

    if "range" in sections:
        results = run_comparison(n_trajectories, n_queries)
        _report(
            results,
            f"Batch QueryEngine vs per-query loop ({n_trajectories} "
            f"trajectories, {n_queries} range queries)",
        )
        if not args.smoke and results["speedup (warm)"] < args.min_speedup:
            failures.append(
                f"range: warm speedup {results['speedup (warm)']:.1f}x is "
                f"below the {args.min_speedup:.1f}x bar"
            )
    if "knn" in sections:
        results = run_knn_comparison(n_trajectories, n_knn)
        _report(
            results,
            f"Batch kNN (harness scoring path) vs knn_query loop "
            f"({n_trajectories} trajectories, {n_knn} kNN queries, EDR)",
        )
        if not args.smoke and results["speedup (batch)"] < args.min_knn_speedup:
            failures.append(
                f"knn: batch speedup {results['speedup (batch)']:.1f}x is "
                f"below the {args.min_knn_speedup:.1f}x bar"
            )
    if "aggregate" in sections:
        results = run_aggregate_comparison(n_trajectories, n_boxes)
        _report(
            results,
            f"Batch aggregates vs per-trajectory scans ({n_trajectories} "
            f"trajectories, {n_boxes} count boxes, 32x32 heatmap)",
        )

    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
