"""The unified client API: transport parity, round-trip cost, concurrency.

One typed ``Client`` surface serves three transports — in-process
(`LocalClient`), sharded (`ServiceClient`), socket (`RemoteClient`) — and
the contract is that transport choice changes latency, never answers. So
this benchmark asserts **parity first** (all five query kinds, before and
after a streamed ingest batch), then reports what each hop costs:

* per-kind round-trip latency: engine dispatch only (local), plus shard
  scatter/merge (service), plus JSON framing and a TCP round trip
  (socket);
* socket throughput at N concurrent clients against one asyncio server —
  each client checks every response id echo (nothing dropped or
  reordered) and validates results against the serving epoch stamped in
  each response while ingest batches interleave, and the run must end in
  a clean graceful shutdown.

Run standalone::

    python benchmarks/bench_client.py            # default scale
    python benchmarks/bench_client.py --smoke    # tiny CI smoke run
    python benchmarks/bench_client.py --clients 16
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

import numpy as np

from repro.client import LocalClient, RemoteClient, ServiceClient
from repro.data import synthetic_database
from repro.data.stats import spatial_scale
from repro.data.trajectory import Trajectory
from repro.eval.harness import QueryAccuracyEvaluator
from repro.service import QueryService
from repro.service.server import serve_in_thread
from repro.workloads import RangeQueryWorkload

DEFAULT_TRAJECTORIES = 150
DEFAULT_QUERIES = 60
DEFAULT_CLIENTS = 8
DEFAULT_REQUESTS_PER_CLIENT = 12


def _setup(n_trajectories: int, n_queries: int, seed: int = 7):
    db = synthetic_database(
        "geolife", n_trajectories=n_trajectories, points_scale=0.08, seed=seed
    )
    workload = RangeQueryWorkload.from_data_distribution(db, n_queries, seed=seed)
    rng = np.random.default_rng(seed)
    qids = [int(i) for i in rng.choice(len(db), size=4, replace=False)]
    queries = [db[q] for q in qids]
    windows = [QueryAccuracyEvaluator._central_window(q) for q in queries]
    eps = 0.10 * spatial_scale(db)
    delta = 0.15 * spatial_scale(db)
    return db, workload, queries, windows, eps, delta


def _ingest_batch(db, n: int, seed: int = 0) -> list[Trajectory]:
    rng = np.random.default_rng(seed)
    batch = []
    for _ in range(n):
        base = db[int(rng.integers(len(db)))].points
        shift = rng.uniform(-40.0, 40.0, size=2)
        batch.append(Trajectory(base + np.array([shift[0], shift[1], 0.0])))
    return batch


def _answers(client, workload, queries, windows, eps, delta):
    return (
        client.range(workload).result_sets,
        client.count(workload.boxes).counts,
        client.histogram(24).histogram,
        client.knn(queries, 3, windows, eps=eps).pairs,
        client.similarity(queries, delta).result_sets,
    )


def assert_parity(clients: dict, workload, queries, windows, eps, delta) -> None:
    """All clients must answer all five kinds identically (the contract)."""
    kinds = ("range", "count", "histogram", "knn", "similarity")
    reference = None
    for name, client in clients.items():
        answers = _answers(client, workload, queries, windows, eps, delta)
        if reference is None:
            reference = answers
            continue
        for kind, got, want in zip(kinds, answers, reference):
            same = (
                np.array_equal(got, want)
                if isinstance(want, np.ndarray)
                else got == want
            )
            assert same, f"{kind} diverged on the {name} transport"


def run_parity_and_latency(args) -> None:
    db, workload, queries, windows, eps, delta = _setup(
        args.trajectories, args.queries
    )
    service = QueryService(db, n_shards=args.shards, store=args.store)
    handle = serve_in_thread(
        QueryService(db, n_shards=args.shards, store=args.store),
        close_service=True,
    )
    clients = {
        "local": LocalClient(db),
        "service": ServiceClient(service, own_service=True),
        "socket": RemoteClient(handle.host, handle.port),
    }
    try:
        assert_parity(clients, workload, queries, windows, eps, delta)
        batch = _ingest_batch(db, max(3, args.trajectories // 20))
        epochs = {name: c.ingest(batch).epoch for name, c in clients.items()}
        assert len(set(epochs.values())) == 1, f"epochs diverged: {epochs}"
        assert_parity(clients, workload, queries, windows, eps, delta)
        print(
            "parity: all five kinds bit-identical across local / service / "
            "socket, before and after ingest"
        )

        print(f"\n{'kind':<12}" + "".join(f"{n:>12}" for n in clients))
        per_kind = {
            "range": lambda c: c.range(workload),
            "count": lambda c: c.count(workload.boxes),
            "histogram": lambda c: c.histogram(24),
            "knn": lambda c: c.knn(queries, 3, windows, eps=eps),
            "similarity": lambda c: c.similarity(queries, delta),
        }
        for kind, call in per_kind.items():
            row = f"{kind:<12}"
            for client in clients.values():
                best = float("inf")
                for _ in range(args.repeats):
                    # Cold-path timing: identical requests would otherwise
                    # serve from the (request, epoch) LRU after the first hit.
                    if hasattr(client, "service"):
                        client.service.clear_cache(deep=True)
                    elif isinstance(client, LocalClient):
                        client._cache.clear()
                    start = time.perf_counter()
                    call(client)
                    best = min(best, time.perf_counter() - start)
                row += f"{1000.0 * best:>10.2f}ms"
            print(row)
        print("(socket cache persists server-side; its column includes one "
              "warm LRU hit per repeat plus framing + TCP round trip)")
    finally:
        for client in clients.values():
            client.close()
        handle.stop()


def run_concurrency(args) -> dict:
    """N concurrent socket clients, mixed queries + interleaved ingest."""
    db, workload, queries, windows, eps, delta = _setup(
        args.trajectories, args.queries
    )
    handle = serve_in_thread(
        QueryService(db, n_shards=args.shards, store=args.store),
        close_service=True,
    )
    # Per-epoch expected range results: a response stamped with epoch e must
    # match the reference database state after e ingest batches.
    batch = _ingest_batch(db, max(3, args.trajectories // 30), seed=1)
    reference = LocalClient(db)
    expected = {0: reference.range(workload).result_sets}
    reference.ingest(batch)
    expected[1] = reference.range(workload).result_sets

    boxes = list(workload.boxes)
    errors: list[str] = []

    def _client_loop(client_idx: int) -> None:
        try:
            with RemoteClient(handle.host, handle.port) as client:
                for i in range(args.requests_per_client):
                    mode = (client_idx + i) % 3
                    if mode == 0:
                        response = client.range(workload)
                        want = expected[response.epoch]
                        if response.result_sets != want:
                            errors.append(
                                f"client {client_idx}: range mismatch at "
                                f"epoch {response.epoch}"
                            )
                    elif mode == 1:
                        client.count(boxes[: max(4, len(boxes) // 4)])
                    else:
                        client.knn(queries, 3, windows, eps=eps)
        except Exception as exc:  # surface, don't hang the join
            errors.append(f"client {client_idx}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=_client_loop, args=(i,))
        for i in range(args.clients)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    # One ingest lands mid-flight from the orchestrating thread: responses
    # before it must match epoch 0, responses after it epoch 1.
    with RemoteClient(handle.host, handle.port) as ingest_client:
        result = ingest_client.ingest(batch)
        assert result.epoch == 1
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    handle.stop()  # graceful: must not raise, thread must join

    assert not errors, "concurrent clients failed:\n" + "\n".join(errors)
    total = args.clients * args.requests_per_client + 1
    print(
        f"\nconcurrency: {args.clients} clients x "
        f"{args.requests_per_client} requests + 1 interleaved ingest = "
        f"{total} frames in {elapsed:.2f}s "
        f"({total / elapsed:.0f} req/s aggregate), zero dropped or "
        f"misordered responses, clean shutdown"
    )
    return {"clients": args.clients, "elapsed_s": elapsed, "requests": total}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for the CI smoke run")
    parser.add_argument("--trajectories", type=int, default=DEFAULT_TRAJECTORIES)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--store", default="heap", choices=["heap", "shm"],
                        help="array-store provider backing every service "
                        "in the run (parity must hold either way)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument("--requests-per-client", type=int,
                        default=DEFAULT_REQUESTS_PER_CLIENT)
    args = parser.parse_args(argv)
    if args.smoke:
        args.trajectories = min(args.trajectories, 60)
        args.queries = min(args.queries, 20)
        args.repeats = 1
        args.requests_per_client = min(args.requests_per_client, 6)
    run_parity_and_latency(args)
    run_concurrency(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
