"""Table II — ablation study of RL4QDTS (Geolife).

Four variants are trained and rolled out: the full model, without
Agent-Cube (the start-level cube is sampled by the query distribution and
returned immediately), without Agent-Point (the maximum-``v_s`` candidate is
inserted), and without both. The paper reports range-query F1 (mean ± std
over repeated stochastic rollouts) and the simplification time.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import (
    SETTINGS,
    inference_workload,
    make_evaluator,
    make_workload_factory,
)
from repro.core import RL4QDTS, RL4QDTSConfig

_RATIO = 0.045
_ROLLOUTS = 5  # paper: 50 random-start rollouts; scaled down


def _run_ablation(db):
    setting = SETTINGS["geolife"]
    evaluator = make_evaluator(db, setting, distribution="data", seed=0)
    factory = make_workload_factory("data", setting, db, 200)
    variants = {
        "RL4QDTS": (True, True),
        "w/o Agent-Cube": (False, True),
        "w/o Agent-Point": (True, False),
        "w/o Agent-Cube and Agent-Point": (False, False),
    }
    rows = {}
    for name, (use_cube, use_point) in variants.items():
        config = RL4QDTSConfig(
            start_level=6,
            end_level=9,
            delta=10,
            n_training_queries=200,
            n_inference_queries=1000,
            episodes=4,
            n_train_databases=2,
            train_db_size=80,
            train_budget_ratio=_RATIO,
            seed=0,
        )
        model = RL4QDTS.train(
            db,
            config=config,
            workload_factory=factory,
            use_agent_cube=use_cube,
            use_agent_point=use_point,
        )
        annotation = inference_workload(model, db, setting, "data")
        f1s = []
        start = time.perf_counter()
        for rollout in range(_ROLLOUTS):
            simplified = model.simplify(
                db, budget_ratio=_RATIO, seed=100 + rollout, workload=annotation
            )
            f1s.append(evaluator.evaluate(simplified, ("range",))["range"])
        elapsed = (time.perf_counter() - start) / _ROLLOUTS
        rows[name] = (float(np.mean(f1s)), float(np.std(f1s)), elapsed)
    return rows


def bench_table2_ablation(benchmark, geolife_bench_db):
    rows = benchmark.pedantic(
        _run_ablation, args=(geolife_bench_db,), rounds=1, iterations=1
    )

    print("\n=== Table II: ablation study (Geolife profile, range query) ===")
    header = "variant".ljust(34) + "Range F1".rjust(18) + "Time (s)".rjust(10)
    print(header)
    print("-" * len(header))
    for name, (mean, std, seconds) in rows.items():
        print(
            name.ljust(34)
            + f"{mean:.3f} ± {std:.3f}".rjust(18)
            + f"{seconds:.2f}".rjust(10)
        )
    print(
        "paper (0.25% Geolife): full 0.733, w/o cube 0.673, w/o point 0.716, "
        "w/o both 0.641"
    )

    full = rows["RL4QDTS"][0]
    neither = rows["w/o Agent-Cube and Agent-Point"][0]
    # The full model should not lose to the agent-free heuristic by more
    # than noise (the paper finds it strictly better).
    assert full >= neither - 0.05
