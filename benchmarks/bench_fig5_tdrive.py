"""Figure 5 — comparison with the skyline on T-Drive.

Same protocol as Figure 4 on the T-Drive profile (sparse ~177s taxi
sampling): data distribution (a-e) and Gaussian distribution (f-j).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SETTINGS, print_comparison, run_comparison


@pytest.mark.parametrize("distribution", ["data", "gaussian"])
def bench_fig5_tdrive(benchmark, tdrive_bench_db, rlts_policies, distribution):
    ratios, series = benchmark.pedantic(
        run_comparison,
        args=(tdrive_bench_db, SETTINGS["tdrive"], distribution, rlts_policies),
        rounds=1,
        iterations=1,
    )
    print_comparison(f"Figure 5 T-Drive ({distribution})", ratios, series)

    for task, rows in series.items():
        for method, values in rows.items():
            assert all(0.0 <= v <= 1.0 for v in values), (task, method)
