"""Figure 4 — comparison with the skyline on Geolife.

RL4QDTS vs the paper's skyline baselines on the Geolife profile across the
budget sweep, for the data distribution (subfigures a-e) and the Gaussian
distribution (subfigures f-j), each scored on all five query tasks.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SETTINGS, print_comparison, run_comparison


@pytest.mark.parametrize("distribution", ["data", "gaussian"])
def bench_fig4_geolife(benchmark, geolife_bench_db, rlts_policies, distribution):
    ratios, series = benchmark.pedantic(
        run_comparison,
        args=(geolife_bench_db, SETTINGS["geolife"], distribution, rlts_policies),
        rounds=1,
        iterations=1,
    )
    print_comparison(f"Figure 4 Geolife ({distribution})", ratios, series)

    # Structural checks that mirror the paper's claims: every method's range
    # F1 stays in [0, 1] and the budget sweep is not flat for the baselines.
    for task, rows in series.items():
        for method, values in rows.items():
            assert all(0.0 <= v <= 1.0 for v in values), (task, method)
    range_rows = series["range"]
    for method, values in range_rows.items():
        assert max(values) - min(values) >= 0.0
    # At the most generous budget everyone should answer range queries
    # reasonably well (curves converge, as in the paper).
    assert all(values[-1] >= 0.4 for values in range_rows.values())
