"""Extension bench — actual storage bytes, not point counts.

The paper's storage budget is a point count; real systems store bytes. This
bench encodes the original and simplified databases with the delta-varint
codec and reports the actual bytes per point and end-to-end storage
reduction, confirming that the point-budget proxy translates to byte
savings of the same order.
"""

from __future__ import annotations

from repro.baselines import get_baseline, simplify_database
from repro.data import CodecConfig, storage_report, synthetic_database
from repro.eval import ExperimentTable

_RATIOS = (0.045, 0.1, 0.2)
_CODEC = CodecConfig(quantum_xy=0.1, quantum_t=0.1)  # 10cm / 0.1s resolution


def _run_storage_study():
    db = synthetic_database(
        "tdrive", n_trajectories=80, points_scale=0.15, seed=11
    )
    spec = get_baseline("Top-Down(E,SED)")
    rows = []
    original = storage_report(db, _CODEC)
    rows.append(("original", 1.0, original))
    for ratio in _RATIOS:
        simplified = simplify_database(db, ratio, spec)
        rows.append((f"r={ratio:.1%}", ratio, storage_report(simplified, _CODEC)))
    return rows


def bench_codec_storage(benchmark):
    rows = benchmark.pedantic(_run_storage_study, rounds=1, iterations=1)
    table = ExperimentTable(
        "Actual storage of simplified databases "
        "(T-Drive profile, Top-Down(E,SED), delta-varint codec @10cm)",
        ["database", "points", "raw KiB", "encoded KiB",
         "bytes/point", "vs raw"],
    )
    original = rows[0][2]
    for name, _ratio, report in rows:
        table.add_row(
            name,
            report.n_points,
            report.raw_bytes / 1024,
            report.encoded_bytes / 1024,
            report.bytes_per_point,
            f"{report.compression_factor:.1f}x",
        )
    table.print()
    print(
        "end-to-end: simplification x codec = "
        f"{original.raw_bytes / rows[-1][2].encoded_bytes:.0f}x smaller than "
        "raw float64 storage"
    )

    # The codec must compress raw storage on its own...
    assert original.compression_factor > 2.0
    # ...every simplified database must be smaller than the original, and
    # encoded size must grow with the kept-point budget.
    encoded = [report.encoded_bytes for _, _, report in rows]
    assert all(e < encoded[0] for e in encoded[1:])
    assert all(a < b for a, b in zip(encoded[1:], encoded[2:]))
