"""Storage / accuracy / latency frontier of the compaction policies.

The tiered storage engine (``repro.service.compaction``) trades query
accuracy for base-tier storage: the exact policy keeps every point, the
simplifying policies (uniform, greedy QDTS, RL4QDTS) rebuild the cold
base through a simplifier under a per-trajectory error budget. This
benchmark charts that trade at K shards — for each policy it reports

* **storage** — base-tier points and delta-encoded bytes after the
  construction-time compaction pass (the exact row encodes the original
  database with the same codec, so the bytes column is comparable);
* **accuracy** — the paper's F1 harness (range, kNN-EDR, similarity)
  scored through a :class:`~repro.client.ServiceClient` over the
  compacting service, against ground truth on the original database;
* **latency** — the policy's mean per-pass compaction time (from
  :class:`~repro.service.ServiceStats`) and the warm wall-clock of the
  benchmark request mix on the compacted service.

Results append to ``BENCH_service.json`` (same file as
``bench_service.py``; rows are tagged ``"benchmark": "bench_compaction"``)
with config provenance.

Run standalone::

    python benchmarks/bench_compaction.py            # default scale
    python benchmarks/bench_compaction.py --smoke    # tiny CI smoke run
    python benchmarks/bench_compaction.py --policies exact uniform --shards 4
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from datetime import datetime, timezone

import numpy as np

from repro.client import ServiceClient
from repro.data import synthetic_database
from repro.data.codec import storage_report
from repro.data.stats import spatial_scale
from repro.eval.harness import QueryAccuracyEvaluator, QuerySuiteConfig
from repro.service import QueryService
from repro.service.compaction import COMPACTION_POLICIES

TASKS = ("range", "knn_edr", "similarity")
DEFAULT_TRAJECTORIES = 100
DEFAULT_SHARDS = 2
DEFAULT_BUDGET_FRACTION = 0.05


def _setup(n_trajectories: int, seed: int, smoke: bool):
    db = synthetic_database(
        "geolife", n_trajectories=n_trajectories, points_scale=0.1, seed=seed
    )
    config = (
        QuerySuiteConfig(
            n_range_queries=10, n_knn_queries=2, k=2,
            n_similarity_queries=2, clustering_subset=5, seed=seed,
        )
        if smoke
        else QuerySuiteConfig(
            n_range_queries=40, n_knn_queries=6, k=3,
            n_similarity_queries=6, clustering_subset=10, seed=seed,
        )
    )
    return db, QueryAccuracyEvaluator(db, config)


def _request_mix(client, evaluator) -> None:
    """The timed serving mix: the harness's own query suite."""
    client.range(evaluator.workload)
    client.count(evaluator.workload.boxes)
    client.histogram(16)


def _frontier_row(
    policy: str,
    db,
    evaluator,
    n_shards: int,
    budget: float | None,
    repeats: int,
) -> dict:
    """Build one compacting service; measure storage, accuracy, latency."""
    with ServiceClient.for_database(
        db,
        n_shards=n_shards,
        compaction=policy,
        error_budget=None if policy == "exact" else budget,
    ) as client:
        service = client.service
        stats = service.stats
        if policy == "exact":
            # no construction pass ran; encode the base with the same
            # codec so the storage column is comparable across rows
            report = storage_report(db)
            points_after = db.total_points
            bytes_after = report.encoded_bytes
            compaction_ms = 0.0
        else:
            points_after = db.total_points - stats.points_dropped
            bytes_after = stats.bytes_base
            compaction_ms = (
                1000.0 * stats.compaction_latency_s / max(stats.compactions, 1)
            )
        scores = evaluator.evaluate(db, tasks=TASKS, client=client)
        best = float("inf")
        for _ in range(repeats):
            service.clear_cache(deep=True)
            start = time.perf_counter()
            _request_mix(client, evaluator)
            best = min(best, time.perf_counter() - start)
    return {
        "policy": policy,
        "error_budget": None if policy == "exact" else budget,
        "shards": n_shards,
        "points_before": db.total_points,
        "points_after": int(points_after),
        "bytes_after": int(bytes_after),
        "compactions": stats.compactions,
        "compaction_mean_latency_ms": compaction_ms,
        "mix_latency_ms": 1000.0 * best,
        "scores": {task: float(scores[task]) for task in TASKS},
    }


def run_frontier(
    n_trajectories: int,
    policies: tuple[str, ...],
    n_shards: int,
    budget_fraction: float,
    repeats: int,
    seed: int = 7,
    smoke: bool = False,
) -> list[dict]:
    db, evaluator = _setup(n_trajectories, seed, smoke)
    budget = budget_fraction * spatial_scale(db)
    print(
        f"=== Compaction frontier: {len(db)} trajectories, "
        f"{db.total_points} points, K={n_shards} shards, "
        f"error budget {budget:.1f} ({budget_fraction:.0%} of scale) ==="
    )
    rows = [
        _frontier_row(policy, db, evaluator, n_shards, budget, repeats)
        for policy in policies
    ]
    header = (
        f"{'policy':<9}{'points kept':>16}{'bytes':>10}{'compact':>10}"
        f"{'mix':>9}" + "".join(f"{t:>12}" for t in TASKS)
    )
    print(header)
    for r in rows:
        kept = r["points_after"] / max(r["points_before"], 1)
        points = f"{r['points_after']} ({kept:.0%})"
        print(
            f"{r['policy']:<9}{points:>16}"
            f"{r['bytes_after'] / 1024:>7.1f}KB"
            f"{r['compaction_mean_latency_ms']:>8.1f}ms"
            f"{r['mix_latency_ms']:>7.1f}ms"
            + "".join(f"{r['scores'][t]:>12.3f}" for t in TASKS)
        )
    exact = next((r for r in rows if r["policy"] == "exact"), None)
    if exact is not None:
        for r in rows:
            if r["policy"] != "exact" and r["bytes_after"] > exact["bytes_after"]:
                print(
                    f"note: {r['policy']} stored more bytes than exact — "
                    "the error budget re-inserted nearly every point"
                )
    return rows


def _persist(path: str, config: dict, frontier: list[dict]) -> None:
    """Append to ``BENCH_service.json``; rows tagged with this benchmark."""
    payload = {"schema": 1, "benchmark": "bench_service", "runs": []}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                existing = json.load(fh)
            payload["benchmark"] = existing.get("benchmark", "bench_service")
            payload["runs"] = existing.get("runs", [])
        except (OSError, ValueError):
            pass
    payload["runs"].append(
        {"benchmark": "bench_compaction", "config": config, "frontier": frontier}
    )
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\npersisted results -> {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny database + query suite (CI gate: every policy builds, "
        "serves, and scores)",
    )
    parser.add_argument("--trajectories", type=int, default=DEFAULT_TRAJECTORIES)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument(
        "--policies", nargs="+", default=list(COMPACTION_POLICIES),
        choices=list(COMPACTION_POLICIES),
    )
    parser.add_argument(
        "--budget-fraction", type=float, default=DEFAULT_BUDGET_FRACTION,
        help="error budget as a fraction of the database's spatial scale",
    )
    parser.add_argument(
        "--out", default=None,
        help="persist results as JSON (default: BENCH_service.json at the "
        "repo root for full runs; smoke runs persist only with an "
        "explicit --out)",
    )
    args = parser.parse_args(argv)

    n_trajectories = 16 if args.smoke else args.trajectories
    repeats = 1 if args.smoke else 3

    frontier = run_frontier(
        n_trajectories,
        tuple(args.policies),
        args.shards,
        args.budget_fraction,
        repeats,
        smoke=args.smoke,
    )

    out = args.out
    if out is None and not args.smoke:
        out = os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "..", "BENCH_service.json",
        )
    if out:
        _persist(
            os.path.normpath(out),
            {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "platform": platform.platform(),
                "cpu_count": os.cpu_count(),
                "timestamp": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"
                ),
                "smoke": bool(args.smoke),
                "trajectories": n_trajectories,
                "shards": args.shards,
                "policies": list(args.policies),
                "budget_fraction": args.budget_fraction,
                "tasks": list(TASKS),
                "repeats": repeats,
            },
            frontier,
        )
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
