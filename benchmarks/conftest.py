"""Shared fixtures and scales for the benchmark harness.

Every paper table/figure has one ``bench_*.py`` module here. The benches run
the *same algorithms* as the paper at laptop scale (see DESIGN.md §4.3):
datasets are the synthetic profile analogues, a few hundred trajectories
instead of hundreds of thousands, and compression-ratio sweeps adjusted for
the ~10x shorter trajectories. Each bench prints the series/rows the paper
reports so the output can be compared figure-by-figure (EXPERIMENTS.md
records that comparison).

Heavy shared artifacts (databases, evaluators, trained models) are
session-scoped so the suite does each expensive step once.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.baselines import RLTSPolicy
from repro.core import RL4QDTS, RL4QDTSConfig
from repro.data import TrajectoryDatabase, synthetic_database
from repro.data.stats import spatial_scale
from repro.eval import QueryAccuracyEvaluator, QuerySuiteConfig
from repro.workloads import RangeQueryWorkload

#: Compression-ratio sweeps. The paper sweeps 0.25%-2% on Geolife/T-Drive
#: (trajectories of ~1.4k-1.7k points) and 2%-20% on Chengdu (~178 points).
#: Our scaled trajectories are ~10x shorter than Geolife's, so the ratios
#: scale up by ~10x to hit the same points-per-trajectory regime.
GEOLIFE_RATIOS = (0.02, 0.03, 0.045, 0.07, 0.1)
CHENGDU_RATIOS = (0.03, 0.045, 0.06, 0.1, 0.2)


@dataclass(frozen=True)
class BenchSetting:
    """One dataset's benchmark configuration."""

    profile: str
    n_trajectories: int
    points_scale: float
    ratios: tuple[float, ...]
    query_extent_factor: float = 0.15  # fraction of the spatial scale
    seed: int = 7


SETTINGS = {
    "geolife": BenchSetting("geolife", 150, 0.12, GEOLIFE_RATIOS, 0.25),
    "tdrive": BenchSetting("tdrive", 120, 0.1, GEOLIFE_RATIOS, 0.25),
    "chengdu": BenchSetting("chengdu", 200, 1.0, CHENGDU_RATIOS, 0.15),
}

#: Distribution-specific workload parameters (paper: Gaussian(0.5, 0.25);
#: we tighten sigma slightly so the concentration survives the scaled-down
#: region sizes).
DISTRIBUTION_KWARGS = {
    "gaussian": {"mu": 0.5, "sigma": 0.2},
}


def build_db(setting: BenchSetting) -> TrajectoryDatabase:
    return synthetic_database(
        setting.profile,
        n_trajectories=setting.n_trajectories,
        points_scale=setting.points_scale,
        seed=setting.seed,
    )


def query_extents(db: TrajectoryDatabase, setting: BenchSetting) -> tuple[float, float]:
    """(spatial, temporal) query extents for a database."""
    spatial = setting.query_extent_factor * spatial_scale(db)
    temporal = db.bounding_box.spans[2] / 2.0
    return spatial, temporal


def make_workload_factory(
    distribution: str,
    setting: BenchSetting,
    db: TrajectoryDatabase,
    n_queries: int,
):
    """A (db, seed) -> workload factory with dataset-scaled extents."""
    spatial, temporal = query_extents(db, setting)
    extra = DISTRIBUTION_KWARGS.get(distribution, {})

    def factory(target_db, seed):
        return RangeQueryWorkload.generate(
            distribution,
            target_db,
            n_queries,
            seed=seed,
            spatial_extent=spatial,
            temporal_extent=temporal,
            **extra,
        )

    return factory


def make_evaluator(
    db: TrajectoryDatabase,
    setting: BenchSetting,
    distribution: str = "data",
    n_range_queries: int = 100,
    seed: int = 0,
) -> QueryAccuracyEvaluator:
    workload = make_workload_factory(distribution, setting, db, n_range_queries)(
        db, seed
    )
    return QueryAccuracyEvaluator(
        db,
        QuerySuiteConfig(
            n_knn_queries=6,
            n_similarity_queries=6,
            clustering_subset=14,
            seed=seed,
        ),
        workload=workload,
    )


def train_model(
    db: TrajectoryDatabase,
    setting: BenchSetting,
    distribution: str = "data",
    seed: int = 0,
) -> RL4QDTS:
    """Train RL4QDTS for one dataset/distribution pair (benchmark scale)."""
    config = RL4QDTSConfig(
        start_level=6,
        end_level=9,
        delta=10,
        n_training_queries=200,
        n_inference_queries=1000,
        episodes=4,
        n_train_databases=3,
        train_db_size=min(80, len(db)),
        train_budget_ratio=setting.ratios[len(setting.ratios) // 2],
        seed=seed,
    )
    factory = make_workload_factory(distribution, setting, db, 200)
    return RL4QDTS.train(db, config=config, workload_factory=factory)


def inference_workload(
    model: RL4QDTS,
    db: TrajectoryDatabase,
    setting: BenchSetting,
    distribution: str,
    seed: int = 4242,
) -> RangeQueryWorkload:
    """The large annotation workload RL4QDTS simplifies against."""
    return make_workload_factory(distribution, setting, db, 1000)(db, seed)


def print_series(title: str, ratios, rows: dict[str, list[float]]) -> None:
    """Print one figure's series: methods x ratios."""
    print(f"\n=== {title} ===")
    header = "method".ljust(24) + "".join(f"{r:>9.3%}" for r in ratios)
    print(header)
    print("-" * len(header))
    for name, values in rows.items():
        print(name.ljust(24) + "".join(f"{v:>9.4f}" for v in values))


#: The paper's skyline baselines per query distribution (Section V-B(1)).
PAPER_SKYLINES = {
    "data": (
        "Top-Down(E,PED)",
        "Top-Down(W,PED)",
        "Bottom-Up(W,PED)",
        "Bottom-Up(E,DAD)",
        "Bottom-Up(E,SED)",
    ),
    "gaussian": (
        "Bottom-Up(E,SED)",
        "RLTS+(E,SED)",
        "Bottom-Up(E,PED)",
        "Top-Down(E,PED)",
    ),
    "real": ("Top-Down(W,PED)", "Top-Down(E,SAD)"),
}


def run_comparison(
    db: TrajectoryDatabase,
    setting: BenchSetting,
    distribution: str,
    rlts_policies: dict,
    ratios=None,
    tasks=("range", "knn_edr", "knn_t2vec", "similarity", "clustering"),
    seed: int = 0,
):
    """One comparison figure: RL4QDTS vs the paper's skyline baselines.

    Returns ``(ratios, {task: {method: [f1 per ratio]}})``.
    """
    from repro.baselines import get_baseline, simplify_database

    ratios = tuple(ratios if ratios is not None else setting.ratios)
    evaluator = make_evaluator(db, setting, distribution=distribution, seed=seed)
    model = train_model(db, setting, distribution=distribution, seed=seed)
    annotation = inference_workload(model, db, setting, distribution)

    methods = list(PAPER_SKYLINES[distribution]) + ["RL4QDTS"]
    series: dict[str, dict[str, list[float]]] = {
        task: {m: [] for m in methods} for task in tasks
    }
    for ratio in ratios:
        for name in methods:
            if name == "RL4QDTS":
                simplified = model.simplify(
                    db, budget_ratio=ratio, seed=seed + 1, workload=annotation
                )
            else:
                spec = get_baseline(name)
                simplified = simplify_database(
                    db, ratio, spec, rlts_policy=rlts_policies.get(spec.measure)
                )
            scores = evaluator.evaluate(simplified, tasks)
            for task in tasks:
                series[task][name].append(scores[task])
    return ratios, series


def print_comparison(title: str, ratios, series) -> None:
    for task, rows in series.items():
        print_series(f"{title} — {task}", ratios, rows)


# ------------------------------------------------------------------ fixtures
@pytest.fixture(scope="session")
def geolife_bench_db():
    return build_db(SETTINGS["geolife"])


@pytest.fixture(scope="session")
def tdrive_bench_db():
    return build_db(SETTINGS["tdrive"])


@pytest.fixture(scope="session")
def chengdu_bench_db():
    return build_db(SETTINGS["chengdu"])


@pytest.fixture(scope="session")
def rlts_policies(geolife_bench_db):
    """One trained RLTS+ policy per error measure (shared by all benches)."""
    policies = {}
    for measure in ("sed", "ped", "dad", "sad"):
        policies[measure] = RLTSPolicy(measure, seed=1).train(
            geolife_bench_db, n_trajectories=6, episodes=1, seed=1
        )
    return policies
