"""Training cost study (paper, Section V-B(11); details in its tech report).

Measures RL4QDTS training wall time and the resulting range-query F1 as two
knobs vary:

* the number of training trajectories (the paper: 6000 suffice),
* the reward period ``delta`` (the paper: 50 is the sweet spot — too small is
  noisy and slow, too large starves credit assignment).
"""

from __future__ import annotations

import time

from benchmarks.conftest import (
    SETTINGS,
    inference_workload,
    make_evaluator,
    make_workload_factory,
)
from repro.core import RL4QDTS, RL4QDTSConfig

_RATIO = 0.045
_TRAIN_SIZES = (20, 40, 80)
_DELTAS = (5, 10, 25)


def _train_once(db, setting, evaluator, train_db_size, delta):
    config = RL4QDTSConfig(
        start_level=6,
        end_level=9,
        delta=delta,
        n_training_queries=200,
        n_inference_queries=800,
        episodes=3,
        n_train_databases=2,
        train_db_size=train_db_size,
        train_budget_ratio=_RATIO,
        seed=0,
    )
    factory = make_workload_factory("data", setting, db, 200)
    start = time.perf_counter()
    model = RL4QDTS.train(db, config=config, workload_factory=factory)
    train_seconds = time.perf_counter() - start
    annotation = inference_workload(model, db, setting, "data")
    simplified = model.simplify(db, budget_ratio=_RATIO, seed=1, workload=annotation)
    f1 = evaluator.evaluate(simplified, ("range",))["range"]
    return train_seconds, f1


def _run_training_study(db):
    setting = SETTINGS["geolife"]
    evaluator = make_evaluator(db, setting, distribution="data", seed=0)
    by_size = {
        n: _train_once(db, setting, evaluator, n, 10) for n in _TRAIN_SIZES
    }
    by_delta = {
        d: _train_once(db, setting, evaluator, 40, d) for d in _DELTAS
    }
    return by_size, by_delta


def bench_training_time(benchmark, geolife_bench_db):
    by_size, by_delta = benchmark.pedantic(
        _run_training_study, args=(geolife_bench_db,), rounds=1, iterations=1
    )

    print("\n=== Training cost vs #training trajectories (delta=10) ===")
    print("trajs".ljust(8) + "train (s)".rjust(12) + "range F1".rjust(12))
    for n, (seconds, f1) in by_size.items():
        print(str(n).ljust(8) + f"{seconds:.2f}".rjust(12) + f"{f1:.4f}".rjust(12))

    print("\n=== Training cost vs delta (40 training trajectories) ===")
    print("delta".ljust(8) + "train (s)".rjust(12) + "range F1".rjust(12))
    for d, (seconds, f1) in by_delta.items():
        print(str(d).ljust(8) + f"{seconds:.2f}".rjust(12) + f"{f1:.4f}".rjust(12))
    print("paper: moderate training set suffices; moderate delta most effective")

    # Training time grows with the training-set size.
    sizes = sorted(by_size)
    assert by_size[sizes[-1]][0] >= by_size[sizes[0]][0] * 0.8
