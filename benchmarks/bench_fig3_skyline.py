"""Figure 3 — skyline selection over the 25 EDTS baselines.

For each query distribution (data, Gaussian, real) all 25 baselines simplify
the same database at a fixed budget; every baseline is scored on the five
query tasks and the non-dominated (skyline) set is reported — the paper's
method for picking which baselines Figures 4-6 compare against.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SETTINGS, make_evaluator
from repro.baselines import all_baselines, simplify_database, skyline
from repro.data import synthetic_database
from repro.eval import ALL_TASKS

#: One shared database for all three distributions (paper: ~1.5M-point DB).
_SETTING = SETTINGS["chengdu"]
_RATIO = 0.06
_DISTRIBUTIONS = ("data", "gaussian", "real")


@pytest.fixture(scope="module")
def fig3_db():
    return synthetic_database(
        "chengdu", n_trajectories=120, points_scale=0.7, seed=7
    )


def _run_skyline(db, rlts_policies, distribution):
    evaluator = make_evaluator(db, _SETTING, distribution=distribution, seed=0)
    scores: dict[str, list[float]] = {}
    for spec in all_baselines():
        simplified = simplify_database(
            db, _RATIO, spec, rlts_policy=rlts_policies.get(spec.measure)
        )
        per_task = evaluator.evaluate(simplified)
        scores[spec.name] = [per_task[t] for t in ALL_TASKS]
    return scores, skyline(scores)


@pytest.mark.parametrize("distribution", _DISTRIBUTIONS)
def bench_fig3_skyline(benchmark, fig3_db, rlts_policies, distribution):
    scores, selected = benchmark.pedantic(
        _run_skyline,
        args=(fig3_db, rlts_policies, distribution),
        rounds=1,
        iterations=1,
    )

    print(f"\n=== Figure 3 ({distribution} distribution): 25 baselines x 5 tasks ===")
    header = "baseline".ljust(22) + "".join(t.rjust(12) for t in ALL_TASKS)
    print(header)
    print("-" * len(header))
    for name, values in sorted(scores.items()):
        marker = " *" if name in selected else "  "
        print(
            name.ljust(20)
            + marker
            + "".join(f"{v:>12.4f}" for v in values)
        )
    print(f"skyline ({len(selected)}): {', '.join(sorted(selected))}")

    assert 1 <= len(selected) <= 25
    # Every skyline member must be undominated by construction; sanity-check
    # one: no other method beats it on every task.
    champion = selected[0]
    for other, values in scores.items():
        if other == champion:
            continue
        assert not all(
            v > c for v, c in zip(values, scores[champion])
        ), f"{other} dominates {champion}"
