"""Pluggable index backends: pruning cost vs workload shape + kNN shard skips.

Two sections, each asserting bit-parity before reporting any number:

* **backends** — for three workload shapes (selective boxes, whole-extent
  time slabs, zero-extent point probes), every backend answers the range
  workload through :class:`~repro.queries.engine.QueryEngine`; the report
  shows wall-clock per backend next to the cost-based planner's estimate
  and its pick, which is how to judge whether the planner's ranking tracks
  reality on this machine.
* **knn-skip** — a spatially clustered database served at K shards under
  the ``spatial`` partitioner: the kNN scatter must return exactly the
  single-database ranking while skipping every shard whose distance lower
  bound proves it irrelevant. The report shows dispatched/skipped counts
  per K and executor; the skip *rate* is the benchmark's headline.

Run standalone::

    python benchmarks/bench_planner.py            # default scale
    python benchmarks/bench_planner.py --smoke    # tiny CI smoke run
    python benchmarks/bench_planner.py --section knn-skip --shards 2 4 8
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.data import BoundingBox, Trajectory, TrajectoryDatabase, synthetic_database
from repro.queries import QueryEngine, knn_query_batch, plan_workload
from repro.queries.planner import PLANNER_BACKENDS
from repro.client import ServiceClient
from repro.service import QueryService
from repro.workloads import RangeQueryWorkload

DEFAULT_TRAJECTORIES = 150
DEFAULT_QUERIES = 80
DEFAULT_SHARDS = (2, 4, 8)


# ------------------------------------------------------------- backends section
def _workload_shapes(db, n_queries: int, seed: int = 7):
    """Three pruning regimes: boxes, temporal slabs, zero-extent probes."""
    ext = db.bounding_box
    rng = np.random.default_rng(seed)
    shapes = {"boxes": RangeQueryWorkload.from_data_distribution(db, n_queries, seed=seed)}
    t_span = ext.tmax - ext.tmin
    shapes["time slabs"] = [
        BoundingBox(
            ext.xmin, ext.xmax, ext.ymin, ext.ymax,
            ext.tmin + f * t_span, ext.tmin + (f + 0.02) * t_span,
        )
        for f in rng.uniform(0.0, 0.98, size=max(n_queries // 4, 4))
    ]
    points = db.point_matrix()
    probe_rows = rng.choice(len(points), size=max(n_queries // 4, 4), replace=False)
    shapes["point probes"] = [
        BoundingBox(p[0], p[0], p[1], p[1], p[2], p[2]) for p in points[probe_rows]
    ]
    return shapes


def run_backends(
    n_trajectories: int = DEFAULT_TRAJECTORIES,
    n_queries: int = DEFAULT_QUERIES,
    repeats: int = 3,
) -> list[tuple[str, str, dict[str, float], dict[str, float]]]:
    """Per (workload shape, backend): measured seconds + planner estimate."""
    db = synthetic_database(
        "geolife", n_trajectories=n_trajectories, points_scale=0.1, seed=7
    )
    rows = []
    for shape_name, workload in _workload_shapes(db, n_queries).items():
        reference = QueryEngine(db).evaluate(workload)
        plan = plan_workload(db, workload)
        measured: dict[str, float] = {}
        for name in PLANNER_BACKENDS:
            backend = plan_workload(db, workload, index=name).backend
            engine = QueryEngine(db, backend=backend)
            result = engine.evaluate(workload)
            assert result == reference, (
                f"{name} diverged on {shape_name!r} — backends must be "
                "answer-invariant"
            )
            best = float("inf")
            for _ in range(repeats):
                engine.clear_cache()
                start = time.perf_counter()
                engine.evaluate(workload)
                best = min(best, time.perf_counter() - start)
            measured[name] = best
        rows.append((shape_name, plan.name, measured, dict(plan.costs)))
    return rows


def _report_backends(rows) -> None:
    print("\n=== backend pruning cost vs workload shape (parity asserted) ===")
    for shape_name, pick, measured, costs in rows:
        fastest = min(measured, key=measured.get)
        print(f"\n{shape_name}:  planner picks '{pick}', fastest measured '{fastest}'")
        for name in PLANNER_BACKENDS:
            marker = " <- planned" if name == pick else ""
            print(
                f"  {name:<10}{measured[name] * 1000:>9.3f} ms   "
                f"(est. cost {costs[name]:>12.1f}){marker}"
            )


# ------------------------------------------------------------- knn-skip section
def _clustered_db(n_clusters: int, per_cluster: int, seed: int = 11):
    """Spatially separated clusters — the shard-skipping-friendly regime."""
    rng = np.random.default_rng(seed)
    trajs = []
    tid = 0
    for c in range(n_clusters):
        cx = 200.0 * c
        for _ in range(per_cluster):
            n = int(rng.integers(8, 20))
            xy = rng.uniform(-5.0, 5.0, size=(n, 2)) + [cx, 0.0]
            t = np.sort(rng.uniform(0.0, 100.0, size=n)) + np.arange(n) * 1e-3
            trajs.append(Trajectory(np.column_stack([xy, t]), traj_id=tid))
            tid += 1
    return TrajectoryDatabase(trajs)


def run_knn_skip(
    shard_counts: tuple[int, ...] = DEFAULT_SHARDS,
    per_cluster: int = 12,
    n_queries: int = 6,
    k: int = 5,
    executors: tuple[str, ...] = ("serial", "process"),
) -> list[tuple[str, int, int, int, float]]:
    """Per (executor, K): dispatched, skipped, and wall-clock — parity first."""
    n_clusters = max(shard_counts)
    db = _clustered_db(n_clusters, per_cluster)
    rng = np.random.default_rng(3)
    qids = [int(i) for i in rng.choice(per_cluster, size=n_queries, replace=False)]
    queries = [db[q] for q in qids]  # all inside the first cluster
    eps = 10.0
    reference = [
        [(float(d), int(t)) for d, t in pairs]
        for pairs in knn_query_batch(db, queries, k, eps=eps, return_pairs=True)
    ]
    rows = []
    for executor in executors:
        for shards in shard_counts:
            with QueryService(
                db, n_shards=shards, partitioner="spatial", executor=executor
            ) as service:
                start = time.perf_counter()
                response = ServiceClient(service).knn(queries, k, eps=eps)
                elapsed = time.perf_counter() - start
                got = [
                    [(float(d), int(t)) for d, t in pairs]
                    for pairs in response.pairs
                ]
                assert got == reference, (
                    f"kNN diverged under shard skipping ({executor}, K={shards})"
                )
                dispatched = service.stats.knn_shards_dispatched
                skipped = service.stats.knn_shards_skipped
                if shards > 1:
                    assert skipped >= 1, (
                        f"expected >= 1 skipped shard on spatially partitioned "
                        f"clusters ({executor}, K={shards}), got {skipped}"
                    )
                rows.append((executor, shards, dispatched, skipped, elapsed))
    return rows


def _report_knn_skip(rows) -> None:
    print("\n=== kNN shard skipping (top-k parity asserted per row) ===")
    print(f"{'executor':<10}{'K':>4}{'dispatched':>12}{'skipped':>9}{'rate':>7}{'ms':>10}")
    for executor, shards, dispatched, skipped, elapsed in rows:
        rate = skipped / max(dispatched + skipped, 1)
        print(
            f"{executor:<10}{shards:>4}{dispatched:>12}{skipped:>9}"
            f"{rate:>6.0%}{elapsed * 1000:>10.3f}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale; still asserts parity and >= 1 skipped shard",
    )
    parser.add_argument(
        "--section", default="all", choices=["all", "backends", "knn-skip"]
    )
    parser.add_argument("--trajectories", type=int, default=DEFAULT_TRAJECTORIES)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument("--shards", type=int, nargs="+", default=list(DEFAULT_SHARDS))
    parser.add_argument(
        "--executors", nargs="+", default=["serial", "process"],
        choices=["serial", "process"],
    )
    args = parser.parse_args(argv)

    if args.smoke:
        n_trajectories, n_queries, repeats = 25, 12, 1
        shard_counts: tuple[int, ...] = (2, 4)
        per_cluster = 6
    else:
        n_trajectories, n_queries, repeats = args.trajectories, args.queries, 3
        shard_counts = tuple(args.shards)
        per_cluster = 12

    if args.section in ("all", "backends"):
        _report_backends(run_backends(n_trajectories, n_queries, repeats))
    if args.section in ("all", "knn-skip"):
        _report_knn_skip(
            run_knn_skip(
                shard_counts,
                per_cluster=per_cluster,
                executors=tuple(args.executors),
            )
        )
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
