"""Figure 9 — transferability under query-distribution changes.

RL4QDTS is trained once with Gaussian(0.5, 0.2) range queries on the Geolife
profile, then evaluated on range workloads whose distribution drifts:

* Gaussian mean mu in 0.5..0.9 (moderate shift),
* Gaussian sigma in 0.2..0.85 (moderate spread change),
* Zipf exponent a in 4..8 (drastic change),

against the Bottom-Up(E,SED) baseline, as in the paper.
"""

from __future__ import annotations

from benchmarks.conftest import (
    SETTINGS,
    inference_workload,
    make_workload_factory,
    query_extents,
)
import numpy as np

from repro.baselines import get_baseline, simplify_database
from repro.core import RL4QDTS, RL4QDTSConfig
from repro.queries.metrics import f1_score
from repro.workloads import RangeQueryWorkload

_RATIO = 0.045
_MUS = (0.5, 0.6, 0.7, 0.8, 0.9)
_SIGMAS = (0.2, 0.4, 0.55, 0.7, 0.85)
_ZIPF_AS = (4.0, 5.0, 6.0, 7.0, 8.0)


def _train_gaussian_model(db):
    setting = SETTINGS["geolife"]
    factory = make_workload_factory("gaussian", setting, db, 200)
    config = RL4QDTSConfig(
        start_level=6,
        end_level=9,
        delta=10,
        n_training_queries=200,
        n_inference_queries=1000,
        episodes=4,
        n_train_databases=2,
        train_db_size=80,
        train_budget_ratio=_RATIO,
        seed=0,
    )
    return RL4QDTS.train(db, config=config, workload_factory=factory)


def _score(db, simplified, workload) -> float:
    truth = workload.evaluate(db)
    result = workload.evaluate(simplified)
    return float(np.mean([f1_score(t, r) for t, r in zip(truth, result)]))


def _run_transferability(db, rlts_policies):
    setting = SETTINGS["geolife"]
    spatial, temporal = query_extents(db, setting)
    model = _train_gaussian_model(db)
    annotation = inference_workload(model, db, setting, "gaussian")
    rl_simplified = model.simplify(
        db, budget_ratio=_RATIO, seed=1, workload=annotation
    )
    baseline = simplify_database(db, _RATIO, get_baseline("Bottom-Up(E,SED)"))

    def gaussian_wl(mu, sigma):
        return RangeQueryWorkload.from_gaussian(
            db, 100, mu=mu, sigma=sigma,
            spatial_extent=spatial, temporal_extent=temporal, seed=99,
        )

    def zipf_wl(a):
        return RangeQueryWorkload.from_zipf(
            db, 100, a=a,
            spatial_extent=spatial, temporal_extent=temporal, seed=99,
        )

    panels = {}
    panels["gaussian mu"] = (
        _MUS,
        {
            "RL4QDTS": [
                _score(db, rl_simplified, gaussian_wl(mu, 0.25)) for mu in _MUS
            ],
            "Bottom-Up(E,SED)": [
                _score(db, baseline, gaussian_wl(mu, 0.25)) for mu in _MUS
            ],
        },
    )
    panels["gaussian sigma"] = (
        _SIGMAS,
        {
            "RL4QDTS": [
                _score(db, rl_simplified, gaussian_wl(0.5, s)) for s in _SIGMAS
            ],
            "Bottom-Up(E,SED)": [
                _score(db, baseline, gaussian_wl(0.5, s)) for s in _SIGMAS
            ],
        },
    )
    panels["zipf a"] = (
        _ZIPF_AS,
        {
            "RL4QDTS": [_score(db, rl_simplified, zipf_wl(a)) for a in _ZIPF_AS],
            "Bottom-Up(E,SED)": [_score(db, baseline, zipf_wl(a)) for a in _ZIPF_AS],
        },
    )
    return panels


def bench_fig9_transferability(benchmark, geolife_bench_db, rlts_policies):
    panels = benchmark.pedantic(
        _run_transferability,
        args=(geolife_bench_db, rlts_policies),
        rounds=1,
        iterations=1,
    )

    for panel, (xs, rows) in panels.items():
        print(f"\n=== Figure 9 ({panel}): range F1 under distribution shift ===")
        header = "method".ljust(20) + "".join(f"{x:>9.2f}" for x in xs)
        print(header)
        print("-" * len(header))
        for name, values in rows.items():
            print(name.ljust(20) + "".join(f"{v:>9.4f}" for v in values))
    print(
        "paper: RL4QDTS stays at or above the baseline across all shifts "
        "(robustness of the learned, measure-free policy)"
    )

    for panel, (xs, rows) in panels.items():
        for name, values in rows.items():
            assert all(0.0 <= v <= 1.0 for v in values), (panel, name)
        # RL4QDTS should stay within reach of the baseline even under the
        # most drastic shift (the paper's robustness claim, loosely).
        gaps = [
            b - r
            for r, b in zip(rows["RL4QDTS"], rows["Bottom-Up(E,SED)"])
        ]
        assert max(gaps) < 0.35, panel
