"""Extension bench — how far from optimal are the practical heuristics?

The paper dismisses exact EDTS algorithms as impractical (cubic time;
Section II) and benchmarks heuristics only. With the exact DP from
:mod:`repro.baselines.optimal` we can quantify what that practicality costs:
the per-trajectory error gap of Top-Down / Bottom-Up / RLTS+ against the
true optimum, and the wall-clock ratio that justifies the paper's choice.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines import (
    RLTSPolicy,
    bottom_up,
    optimal_min_error,
    rlts_simplify,
    top_down,
)
from repro.data import synthetic_database
from repro.errors import trajectory_error
from repro.eval import ExperimentTable, summarize

_BUDGET_RATIO = 0.15
_MEASURE = "sed"


def _run_gap_study():
    db = synthetic_database(
        "chengdu", n_trajectories=30, points_scale=0.5, seed=3
    )
    rlts_policy = RLTSPolicy(_MEASURE, seed=0).train(
        db, n_trajectories=5, episodes=1, seed=0
    )
    heuristics = {
        "Top-Down": lambda t, b: top_down(t, b, _MEASURE),
        "Bottom-Up": lambda t, b: bottom_up(t, b, _MEASURE),
        "RLTS+": lambda t, b: rlts_simplify(t, b, _MEASURE, rlts_policy),
    }
    ratios: dict[str, list[float]] = {name: [] for name in heuristics}
    times: dict[str, float] = {name: 0.0 for name in heuristics}
    optimal_time = 0.0
    for traj in db:
        budget = max(3, int(round(_BUDGET_RATIO * len(traj))))
        start = time.perf_counter()
        best = optimal_min_error(traj, budget, _MEASURE)
        optimal_time += time.perf_counter() - start
        for name, fn in heuristics.items():
            start = time.perf_counter()
            kept = fn(traj, budget)
            times[name] += time.perf_counter() - start
            err = trajectory_error(traj, kept, measure=_MEASURE)
            # Gap ratio: 1.0 = optimal; guard the lossless-optimum case.
            if best.error < 1e-12:
                ratios[name].append(1.0 if err < 1e-9 else np.inf)
            else:
                ratios[name].append(err / best.error)
    finite = {
        name: [v for v in values if np.isfinite(v)]
        for name, values in ratios.items()
    }
    return finite, times, optimal_time


def bench_optimal_gap(benchmark):
    finite, times, optimal_time = benchmark.pedantic(
        _run_gap_study, rounds=1, iterations=1
    )
    table = ExperimentTable(
        f"Optimality gap of EDTS heuristics (SED, r={_BUDGET_RATIO:.0%}, "
        "Chengdu profile, 30 trajectories)",
        ["method", "error / optimal (mean)", "worst", "time vs optimal"],
    )
    for name, values in finite.items():
        summary = summarize(values)
        table.add_row(
            name, summary.mean, max(values), times[name] / optimal_time
        )
    table.print()
    print(f"exact DP total time: {optimal_time:.2f}s")

    for name, values in finite.items():
        arr = np.asarray(values)
        # Sanity: heuristics can never beat the optimum...
        assert (arr >= 1.0 - 1e-9).all(), f"{name} beat the optimum"
        # ...and the classical heuristics stay within a small constant of it
        # on realistic data (the reason the paper can use them as baselines).
        assert arr.mean() < 3.0, f"{name} gap unexpectedly large"
    # The DP must be far slower than any heuristic — the paper's stated
    # reason for excluding exact solvers.
    assert all(t < optimal_time for t in times.values())
