"""Seeded load harness against a live ``repro serve --listen``.

Two driving modes against the same deterministic schedule machinery:

**Open-loop** (default): the request schedule is generated *up front*
from one seed (so two runs with the same seed replay the identical
workload — the schedule digest printed and stored proves it), and
requests are dispatched at scheduled arrival times whether or not
earlier requests have returned, so a slow server accumulates queueing
delay in the measured latency instead of silently throttling the offered
load (closed-loop harnesses hide exactly the tail this repo's histograms
are built to expose). ``--rate-profile diurnal`` modulates the arrival
rate sinusoidally around ``--qps`` (one cycle over the run by default) —
the rate profile is part of the digested config, so diurnal schedules
prove their determinism the same way constant ones do.

**Closed-loop concurrency sweep** (``--sweep``): measures how serving
throughput *scales* with pipelined async clients. Level ``C`` drives the
query-only schedule through ``C`` :class:`repro.client.AsyncRemoteClient`
connections, each pipelining ``--pipeline`` requests; the baseline level
is one client at pipeline depth 1 (the historical strict request/reply
client). Per level the run records aggregate throughput, p50/p99, and
``scaling_vs_single`` — the throughput ratio against the baseline, which
is the machine-normalized number CI gates on.

The mix is Zipf-skewed twice over, mirroring the paper's skewed-workload
study: range-query centres come from
:meth:`repro.workloads.RangeQueryWorkload.from_zipf`, and *which* pooled
query a slot replays is itself Zipf-distributed — popular queries repeat,
so the server's ``(request, epoch)`` LRU sees a realistic hit rate.
Streamed ingest batches interleave at ``--ingest-ratio`` (open-loop
only), bumping the epoch mid-run the way a live service would.

Latencies are recorded client-side into the same log-bucketed
:class:`repro.obs.metrics.Histogram` the server uses, and every run is
appended to ``BENCH_load.json`` with full provenance (seed, config,
schedule digest, python/numpy versions) plus the server's own metrics
report fetched over the wire ``metrics`` op. ``--gate NEW --against
BASE`` turns the stored trajectory into a regression gate: each new run
is compared against the last stored run with the same config profile and
fails the build when its gate metric (open-loop: throughput; sweep: the
top level's scaling ratio) drops more than ``--gate-threshold``.

Run standalone::

    python benchmarks/bench_load.py --qps 50 --seed 7
    python benchmarks/bench_load.py --rate-profile diurnal --qps 50
    python benchmarks/bench_load.py --sweep --workers 8
    python benchmarks/bench_load.py --smoke --out BENCH_load_smoke.json
    python benchmarks/bench_load.py --validate BENCH_load_smoke.json
    python benchmarks/bench_load.py --gate BENCH_load_smoke.json \\
        --against BENCH_load.json
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import math
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.client import AsyncRemoteClient, RemoteClient
from repro.data import save_database, synthetic_database
from repro.data.stats import spatial_scale
from repro.data.trajectory import Trajectory
from repro.obs.metrics import Histogram
from repro.obs.provenance import build_provenance, load_runs, log_run, validate_run
from repro.workloads import RangeQueryWorkload

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_load.json"

#: Offered mix over the five query kinds (Zipf-ish: rank^-1 over the kinds
#: ordered by how often an analytics dashboard issues them).
KIND_WEIGHTS = {
    "range": 1.0,
    "count": 1.0 / 2.0,
    "histogram": 1.0 / 3.0,
    "knn": 1.0 / 4.0,
    "similarity": 1.0 / 5.0,
}

POOL_SIZE = 24  # distinct queries per kind; slots replay Zipf-ranked entries

#: The sweep measures serving concurrency, so its schedule keeps only the
#: bounded-payload kinds: knn/similarity frames inline full trajectory
#: point arrays (tens of KB each), which turns the measurement into wire
#: bandwidth on the single core the client and server share. The
#: open-loop run still exercises all five kinds.
SWEEP_KINDS = ("range", "count", "histogram")


# --------------------------------------------------------------- the schedule
def _zipf_pick(rng: np.random.Generator, n: int, a: float) -> int:
    """One Zipf(``a``)-distributed index into a pool of ``n`` entries."""
    ranks = np.arange(1, n + 1, dtype=float)
    probs = ranks**-a
    return int(rng.choice(n, p=probs / probs.sum()))


def rate_config(args) -> dict:
    """The arrival-rate profile as JSON-safe config (part of the digest)."""
    cfg = {"profile": args.rate_profile, "qps": args.qps}
    if args.rate_profile == "diurnal":
        cfg["amplitude"] = args.rate_amplitude
        cfg["period_s"] = args.rate_period  # None -> one cycle over the run
    return cfg


def arrival_offsets(args, n_slots: int) -> list[float]:
    """Deterministic open-loop arrival offsets (seconds from run start).

    ``constant`` is the historical ``i / qps`` grid. ``diurnal`` modulates
    the instantaneous rate sinusoidally, ``r(t) = qps * (1 + A sin(2πt/T))``,
    and integrates it by incremental inversion (``t += 1/r(t)``), so one
    run sweeps through a rush-hour peak and a trough. Pure arithmetic on
    the digested config — no RNG — so equal configs replay equal arrivals.
    """
    if args.rate_profile == "constant":
        return [i / args.qps for i in range(n_slots)]
    if args.rate_profile != "diurnal":
        raise ValueError(f"unknown rate profile {args.rate_profile!r}")
    amplitude = min(max(float(args.rate_amplitude), 0.0), 0.95)
    period = args.rate_period or n_slots / args.qps
    offsets: list[float] = []
    t = 0.0
    for _ in range(n_slots):
        offsets.append(t)
        rate = args.qps * (1.0 + amplitude * math.sin(2.0 * math.pi * t / period))
        t += 1.0 / max(rate, 1e-9)
    return offsets


def build_schedule(
    db, args, *, ingest_ratio: float | None = None, kinds=None
):
    """The full deterministic request schedule and its provenance digest.

    Returns ``(schedule, pools, digest)``: ``schedule`` is one JSON-safe
    entry per slot (op + pool index, or an ingest batch seed), ``pools``
    holds the concrete query payloads each entry references, and
    ``digest`` is the sha256 of the canonical JSON of both plus the
    arrival-rate config — identical seeds therefore prove themselves
    identical across runs and machines. ``ingest_ratio`` overrides the
    CLI value (the sweep forces 0: scaling measures query throughput);
    ``kinds`` keeps only those ops (filtered *before* digesting, so the
    digest always covers exactly the slots that run).
    """
    if ingest_ratio is None:
        ingest_ratio = args.ingest_ratio
    rng = np.random.default_rng(args.seed)
    pool_n = min(POOL_SIZE, args.requests)
    range_pool = RangeQueryWorkload.from_zipf(
        db, pool_n, a=args.zipf_a, seed=args.seed
    )
    boxes = [
        [b.xmin, b.xmax, b.ymin, b.ymax, b.tmin, b.tmax]
        for b in range_pool.boxes
    ]
    traj_ids = [
        int(i) for i in rng.choice(len(db), size=min(4, len(db)), replace=False)
    ]
    pools = {
        "boxes": boxes,
        "traj_ids": traj_ids,
        "grids": [16, 24, 32],
        "eps": round(0.10 * spatial_scale(db), 9),
        "delta": round(0.15 * spatial_scale(db), 9),
    }

    query_kinds = list(KIND_WEIGHTS)
    weights = np.array([KIND_WEIGHTS[k] for k in query_kinds], dtype=float)
    weights /= weights.sum()
    schedule: list[dict] = []
    for slot in range(args.requests):
        if ingest_ratio > 0 and rng.random() < ingest_ratio:
            schedule.append(
                {"op": "ingest", "batch_seed": int(args.seed + 1000 + slot)}
            )
            continue
        kind = query_kinds[int(rng.choice(len(query_kinds), p=weights))]
        entry: dict = {"op": kind}
        if kind in ("range", "count"):
            entry["pool"] = _zipf_pick(rng, len(boxes), args.zipf_a)
        elif kind == "histogram":
            entry["grid"] = pools["grids"][_zipf_pick(rng, 3, args.zipf_a)]
        elif kind in ("knn", "similarity"):
            entry["ids"] = traj_ids[: 1 + int(rng.integers(len(traj_ids)))]
        schedule.append(entry)

    if kinds is not None:
        schedule = [e for e in schedule if e["op"] in kinds]
    canonical = json.dumps(
        {"pools": pools, "rate": rate_config(args), "schedule": schedule},
        sort_keys=True,
    )
    digest = hashlib.sha256(canonical.encode()).hexdigest()
    return schedule, pools, digest


def _ingest_batch(db, batch_seed: int, n: int = 3) -> list[Trajectory]:
    """A small deterministic batch of jittered copies of existing tracks."""
    rng = np.random.default_rng(batch_seed)
    batch = []
    for _ in range(n):
        base = db[int(rng.integers(len(db)))].points
        shift = rng.uniform(-40.0, 40.0, size=2)
        batch.append(Trajectory(base + np.array([shift[0], shift[1], 0.0])))
    return batch


# ----------------------------------------------------------------- the server
def launch_server(db_path: Path, args, env: dict) -> tuple[subprocess.Popen, str]:
    """Start ``repro serve --listen 127.0.0.1:0``; return (proc, address)."""
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--db", str(db_path),
        "--shards", str(args.shards),
        "--partitioner", args.partitioner,
        "--executor", args.executor,
        "--index", args.index,
        "--store", args.store,
        "--listen", "127.0.0.1:0",
    ]
    if args.workers is not None:
        argv += ["--workers", str(args.workers)]
    if getattr(args, "server_max_inflight", None) is not None:
        argv += ["--max-inflight", str(args.server_max_inflight)]
    if getattr(args, "replicas", 1) != 1:
        argv += ["--replicas", str(args.replicas)]
    if getattr(args, "watchdog_interval", None):
        argv += ["--watchdog-interval", str(args.watchdog_interval)]
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    address = None
    deadline = time.monotonic() + 90
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            break
        if line.startswith("listening on "):
            address = line.split()[-1].strip()
            break
    if not address:
        proc.kill()
        raise RuntimeError("server never printed its listen address")
    # Keep draining stdout so the server can never block on a full pipe.
    threading.Thread(
        target=lambda: [None for _ in proc.stdout], daemon=True
    ).start()
    return proc, address


def server_replica_pids(server_pid: int) -> list[int]:
    """Pids of the server's shard worker children (chaos-injection targets).

    Workers are direct children of the serve process; multiprocessing's
    resource tracker (also a child) is filtered out by its cmdline.
    """
    try:
        out = subprocess.run(
            ["ps", "-o", "pid=,args=", "--ppid", str(server_pid)],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return []
    pids = []
    for line in out.splitlines():
        fields = line.strip().split(None, 1)
        if len(fields) != 2 or "tracker" in fields[1]:
            continue
        pids.append(int(fields[0]))
    return pids


def stop_server(proc: subprocess.Popen) -> int:
    proc.send_signal(signal.SIGINT)
    try:
        return proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        return proc.wait()


def _base_config(args, digest: str) -> dict:
    """Config scalars shared by both run modes (the gate's profile key)."""
    return {
        "seed": args.seed,
        "qps": args.qps,
        "requests": args.requests,
        "clients": args.clients,
        "ingest_ratio": args.ingest_ratio,
        "zipf_a": args.zipf_a,
        "trajectories": args.trajectories,
        "shards": args.shards,
        "partitioner": args.partitioner,
        "executor": args.executor,
        "index": args.index,
        "store": args.store,
        "workers": args.workers,
        "max_inflight": getattr(args, "server_max_inflight", None),
        # None (not 1) for the unreplicated default, so runs recorded
        # before replication existed keep matching this profile.
        "replicas": getattr(args, "replicas", 1)
        if getattr(args, "replicas", 1) != 1
        else None,
        "chaos": getattr(args, "chaos", None),
        "rate_profile": args.rate_profile,
        "rate_amplitude": args.rate_amplitude,
        "rate_period": args.rate_period,
        "provenance": build_provenance(),
        "workload_digest": digest,
    }


# ------------------------------------------------------------------- the run
def _issue(client: RemoteClient, entry: dict, pools: dict, db) -> None:
    from repro.data.bbox import BoundingBox

    op = entry["op"]
    if op == "ingest":
        client.ingest(_ingest_batch(db, entry["batch_seed"]))
    elif op == "range":
        client.range([BoundingBox(*pools["boxes"][entry["pool"]])])
    elif op == "count":
        client.count([BoundingBox(*pools["boxes"][entry["pool"]])])
    elif op == "histogram":
        client.histogram(entry["grid"])
    elif op == "knn":
        client.knn([db[i] for i in entry["ids"]], 3, eps=pools["eps"])
    elif op == "similarity":
        client.similarity([db[i] for i in entry["ids"]], pools["delta"])
    else:
        raise ValueError(f"unknown scheduled op {op!r}")


async def _issue_async(
    client: AsyncRemoteClient, entry: dict, pools: dict, db
) -> None:
    from repro.data.bbox import BoundingBox

    op = entry["op"]
    if op == "ingest":
        await client.ingest(_ingest_batch(db, entry["batch_seed"]))
    elif op == "range":
        await client.range([BoundingBox(*pools["boxes"][entry["pool"]])])
    elif op == "count":
        await client.count([BoundingBox(*pools["boxes"][entry["pool"]])])
    elif op == "histogram":
        await client.histogram(entry["grid"])
    elif op == "knn":
        await client.knn([db[i] for i in entry["ids"]], 3, eps=pools["eps"])
    elif op == "similarity":
        await client.similarity([db[i] for i in entry["ids"]], pools["delta"])
    else:
        raise ValueError(f"unknown scheduled op {op!r}")


def run_load(args) -> dict:
    """Generate, serve, drive open-loop, measure; return the run record."""
    db = synthetic_database(
        "geolife",
        n_trajectories=args.trajectories,
        points_scale=0.08,
        seed=args.seed,
    )
    schedule, pools, digest = build_schedule(db, args)
    offsets = arrival_offsets(args, len(schedule))
    print(
        f"schedule: {len(schedule)} slots ({args.rate_profile} arrivals), "
        f"digest {digest[:16]}..."
    )

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"

    overall = Histogram()
    per_kind: dict[str, Histogram] = {}
    samples: list[float] = []
    errors: list[str] = []
    record_lock = threading.Lock()

    with tempfile.TemporaryDirectory(prefix="bench_load_") as tmp:
        db_path = Path(tmp) / "db.npz"
        save_database(db, db_path)
        proc, address = launch_server(db_path, args, env)
        try:
            host, _, port = address.rpartition(":")
            clients = [
                RemoteClient(host, int(port)) for _ in range(args.clients)
            ]

            def _fire(slot: int, entry: dict) -> None:
                client = clients[slot % len(clients)]
                start = time.perf_counter()
                try:
                    _issue(client, entry, pools, db)
                except Exception as exc:
                    with record_lock:
                        errors.append(f"slot {slot} {entry['op']}: {exc}")
                    return
                elapsed = time.perf_counter() - start
                with record_lock:
                    overall.record(elapsed)
                    per_kind.setdefault(entry["op"], Histogram()).record(elapsed)
                    samples.append(elapsed)

            chaos = None
            if args.chaos == "kill-replica":
                targets = server_replica_pids(proc.pid)
                if not targets:
                    raise RuntimeError(
                        "chaos: found no shard worker children to kill"
                    )
                chaos = {
                    "mode": "kill-replica",
                    "victim_pid": targets[0],
                    "kill_slot": max(1, len(schedule) // 3),
                }

            # Open-loop: slot i is *offered* at t0 + offsets[i] regardless
            # of completions; the pool only bounds client-side concurrency.
            pool = ThreadPoolExecutor(max_workers=args.clients)
            t0 = time.perf_counter()
            futures = []
            for slot, entry in enumerate(schedule):
                wait = t0 + offsets[slot] - time.perf_counter()
                if wait > 0:
                    time.sleep(wait)
                if chaos is not None and slot == chaos["kill_slot"]:
                    # SIGKILL one replica mid-workload: with --replicas 2
                    # failover + the watchdog must absorb it completely.
                    os.kill(chaos["victim_pid"], signal.SIGKILL)
                futures.append(pool.submit(_fire, slot, entry))
            for f in futures:
                f.result()
            elapsed = time.perf_counter() - t0
            pool.shutdown()

            server_metrics = clients[0].metrics()
            for client in clients:
                client.close()
        finally:
            code = stop_server(proc)
    if code != 0:
        errors.append(f"server exited with code {code}")

    # Self-check: bucketed quantiles must sit within one bucket width of
    # the exact sample quantiles (the histogram's accuracy contract).
    arr = np.sort(np.asarray(samples))
    for q in (0.5, 0.95, 0.99):
        exact = float(np.quantile(arr, q, method="inverted_cdf"))
        approx = overall.quantile(q)
        idx = overall.bucket_index(exact)
        width = overall.upper_edge(idx) - overall.lower_edge(idx)
        assert abs(approx - exact) <= max(width, 1e-12), (
            f"p{int(q * 100)} drifted: bucketed {approx} vs exact {exact}"
        )

    completed = overall.count
    run = {
        "config": {"mode": "open-loop", **_base_config(args, digest)},
        "latency": {
            "p50_ms": 1000.0 * overall.quantile(0.5),
            "p95_ms": 1000.0 * overall.quantile(0.95),
            "p99_ms": 1000.0 * overall.quantile(0.99),
            "mean_ms": 1000.0 * overall.sum / max(completed, 1),
            "max_ms": 1000.0 * overall.max,
            "histogram": overall.to_json(),
            "per_kind": {k: h.to_json() for k, h in sorted(per_kind.items())},
        },
        "throughput_qps": completed / elapsed if elapsed > 0 else 0.0,
        "offered_qps": args.qps,
        "completed": completed,
        "errors": errors,
        "server_metrics": server_metrics,
    }
    if chaos is not None:
        chaos["failed_requests"] = len(errors)
        run["chaos"] = chaos
    problems = validate_run(run)
    assert not problems, f"run record failed validation: {problems}"
    return run


# ------------------------------------------------------------------ the sweep
async def _run_level_async(
    host: str,
    port: int,
    schedule: list[dict],
    pools: dict,
    db,
    n_clients: int,
    pipeline: int,
) -> tuple[Histogram, float, list[str]]:
    """One closed-loop level: ``n_clients`` async clients, each keeping
    ``pipeline`` requests in flight over its own connection. Returns the
    latency histogram, wall-clock seconds, and any errors."""
    clients: list[AsyncRemoteClient] = []
    hist = Histogram()
    errors: list[str] = []
    try:
        for _ in range(n_clients):
            clients.append(
                await AsyncRemoteClient.open(
                    host, port, max_inflight=pipeline, timeout=120.0,
                    trace=False,
                )
            )

        async def worker(client: AsyncRemoteClient, entries: list[dict]) -> None:
            for entry in entries:
                start = time.perf_counter()
                try:
                    await _issue_async(client, entry, pools, db)
                except Exception as exc:
                    errors.append(f"{entry['op']}: {exc}")
                    continue
                hist.record(time.perf_counter() - start)

        # Closed-loop with pipelining: each client runs `pipeline` worker
        # coroutines over disjoint slices of its slots, so it keeps up to
        # `pipeline` requests outstanding at all times (until its slots
        # drain). Total offered concurrency = n_clients * pipeline.
        tasks = []
        t0 = time.perf_counter()
        for ci, client in enumerate(clients):
            slots = schedule[ci::n_clients]
            for wi in range(pipeline):
                tasks.append(worker(client, slots[wi::pipeline]))
        await asyncio.gather(*tasks)
        elapsed = time.perf_counter() - t0
        return hist, elapsed, errors
    finally:
        for client in clients:
            await client.close()


def run_sweep(args) -> dict:
    """Closed-loop concurrency sweep; returns the provenance run record.

    One server process serves every level (its request LRU is warmed once
    up front, so all levels measure the same warm-cache serving path);
    the baseline level is 1 client at pipeline depth 1 and every level
    reports its throughput ratio against it (``scaling_vs_single``).
    """
    db = synthetic_database(
        "geolife",
        n_trajectories=args.trajectories,
        points_scale=0.08,
        seed=args.seed,
    )
    # Query-only, bounded-payload schedule: an ingest slot would
    # serialize every level behind the epoch write lock AND cold the
    # cache mid-level, and knn/similarity frames would turn the number
    # into wire bandwidth (see SWEEP_KINDS) — either way "scaling" would
    # stop measuring serving concurrency.
    schedule, pools, digest = build_schedule(
        db, args, ingest_ratio=0.0, kinds=SWEEP_KINDS
    )
    levels = [int(c) for c in str(args.sweep_levels).split(",") if c.strip()]
    pipeline = max(1, args.pipeline)
    if getattr(args, "server_max_inflight", None) is None:
        # The sweep's own concurrency must fit the server's admission
        # window — refusal/backoff cycles at the top level would measure
        # the retry policy, not the serving plane.
        args.server_max_inflight = 2 * max(max(levels) * pipeline, 4)
    print(
        f"sweep: {len(schedule)} query slots, levels {levels} "
        f"(pipeline depth {pipeline}), digest {digest[:16]}..."
    )

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"

    level_records: list[dict] = []
    errors: list[str] = []
    with tempfile.TemporaryDirectory(prefix="bench_sweep_") as tmp:
        db_path = Path(tmp) / "db.npz"
        save_database(db, db_path)
        proc, address = launch_server(db_path, args, env)
        try:
            host, _, port_s = address.rpartition(":")
            port = int(port_s)
            # Warmup: one full pass at high concurrency, discarded. Every
            # measured level then sees the same warm LRU / engine memos.
            asyncio.run(
                _run_level_async(
                    host, port, schedule, pools, db, max(levels), pipeline
                )
            )
            baseline_qps = None
            for n_clients in [1] + levels:
                depth = 1 if baseline_qps is None else pipeline
                hist, elapsed, level_errors = asyncio.run(
                    _run_level_async(
                        host, port, schedule, pools, db, n_clients, depth
                    )
                )
                errors.extend(
                    f"level {n_clients}x{depth}: {e}" for e in level_errors
                )
                qps = hist.count / elapsed if elapsed > 0 else 0.0
                record = {
                    "clients": n_clients,
                    "pipeline": depth,
                    "completed": hist.count,
                    "elapsed_s": elapsed,
                    "throughput_qps": qps,
                    "p50_ms": 1000.0 * hist.quantile(0.5),
                    "p99_ms": 1000.0 * hist.quantile(0.99),
                    "histogram": hist.to_json(),
                }
                if baseline_qps is None:
                    baseline_qps = qps
                    record["role"] = "baseline"
                record["scaling_vs_single"] = (
                    qps / baseline_qps if baseline_qps else 0.0
                )
                level_records.append(record)
                print(
                    f"  {n_clients} client(s) x pipeline {depth}: "
                    f"{qps:.1f} qps ({record['scaling_vs_single']:.2f}x), "
                    f"p99 {record['p99_ms']:.2f}ms"
                )
            server_metrics = asyncio.run(_fetch_metrics(host, port))
        finally:
            code = stop_server(proc)
    if code != 0:
        errors.append(f"server exited with code {code}")

    top = level_records[-1]
    run = {
        "config": {
            "mode": "sweep",
            "pipeline": pipeline,
            "sweep_levels": ",".join(str(c) for c in levels),
            **_base_config(args, digest),
        },
        # The headline latency/throughput is the top (max-concurrency)
        # level's, so validate/compare tooling works on sweep runs too.
        "latency": {
            "p50_ms": top["p50_ms"],
            "p95_ms": 1000.0
            * Histogram.from_json(top["histogram"]).quantile(0.95),
            "p99_ms": top["p99_ms"],
            "histogram": top["histogram"],
        },
        "throughput_qps": top["throughput_qps"],
        "completed": sum(r["completed"] for r in level_records),
        "sweep": {
            "baseline_qps": level_records[0]["throughput_qps"],
            "scaling_vs_single": top["scaling_vs_single"],
            "levels": level_records,
        },
        "errors": errors,
        "server_metrics": server_metrics,
    }
    problems = validate_run(run)
    assert not problems, f"run record failed validation: {problems}"
    return run


async def _fetch_metrics(host: str, port: int) -> dict:
    client = await AsyncRemoteClient.open(host, port)
    try:
        return await client.metrics()
    finally:
        await client.close()


def print_summary(run: dict) -> None:
    if run["config"].get("mode") == "sweep":
        sweep = run["sweep"]
        top = sweep["levels"][-1]
        print(
            f"sweep: baseline {sweep['baseline_qps']:.1f} qps -> "
            f"{top['clients']} clients x pipeline {top['pipeline']} at "
            f"{top['throughput_qps']:.1f} qps "
            f"({sweep['scaling_vs_single']:.2f}x), p99 {top['p99_ms']:.2f}ms"
        )
    else:
        latency = run["latency"]
        print(
            f"completed {run['completed']}/{run['config']['requests']} at "
            f"{run['throughput_qps']:.1f} qps (offered {run['offered_qps']}): "
            f"p50 {latency['p50_ms']:.2f}ms  p95 {latency['p95_ms']:.2f}ms  "
            f"p99 {latency['p99_ms']:.2f}ms"
        )
    chaos = run.get("chaos")
    if chaos:
        replication = run["server_metrics"].get("replication", {})
        counters = replication.get("counters", {}).get("counters", {})
        print(
            f"chaos [{chaos['mode']}]: killed pid {chaos['victim_pid']} at "
            f"slot {chaos['kill_slot']}, {chaos['failed_requests']} failed "
            f"requests, {replication.get('replicas_live', '?')}/"
            f"{replication.get('replicas_total', '?')} replicas live, "
            f"restarts={counters.get('replication.restarts', 0)}"
        )
    summary = run["server_metrics"].get("summary", {})
    hits = sum(v for k, v in summary.items() if k.endswith("_cache_hits"))
    misses = sum(v for k, v in summary.items() if k.endswith("_cache_misses"))
    if hits + misses:
        print(
            f"server cache: {hits} hits / {misses} misses "
            f"({hits / (hits + misses):.1%} hit rate), "
            f"knn shards skipped: {summary.get('knn_shards_skipped', 0)}"
        )
    if "queue_depth_hwm" in summary:
        print(
            f"server queue: depth hwm {summary['queue_depth_hwm']}, "
            f"wait p99 {summary.get('queue_wait_p99_ms', 0.0):.2f}ms"
        )
    if run["errors"]:
        print(f"errors ({len(run['errors'])}):")
        for line in run["errors"]:
            print(f"  {line}")


def validate_file(path: Path) -> int:
    """``--validate``: schema-check every stored run; exit nonzero on drift."""
    payload = json.loads(path.read_text())
    problems: list[str] = []
    if payload.get("benchmark") != "bench_load":
        problems.append(f"benchmark is {payload.get('benchmark')!r}")
    runs = load_runs(path)
    if not runs:
        problems.append("no runs recorded")
    for i, run in enumerate(runs):
        for issue in validate_run(run):
            problems.append(f"run {i}: {issue}")
        try:
            hist = Histogram.from_json(run["latency"]["histogram"])
            for q, key in ((0.5, "p50_ms"), (0.95, "p95_ms"), (0.99, "p99_ms")):
                stored = run["latency"][key]
                derived = 1000.0 * hist.quantile(q)
                if not np.isclose(stored, derived, rtol=1e-9, atol=1e-9):
                    problems.append(
                        f"run {i}: {key} {stored} != histogram-derived {derived}"
                    )
        except Exception as exc:
            problems.append(f"run {i}: histogram unreadable: {exc}")
    if problems:
        for line in problems:
            print(f"INVALID: {line}")
        return 1
    print(f"{path}: {len(runs)} run(s), schema valid, quantiles consistent")
    return 0


# ------------------------------------------------------------------- the gate
#: Config scalars that define a comparable profile: two runs gate against
#: each other only when ALL of these match (absent on both sides counts
#: as matching). Machine facts (provenance) deliberately excluded.
PROFILE_KEYS = (
    "mode", "seed", "qps", "requests", "clients", "pipeline", "sweep_levels",
    "workers", "max_inflight", "ingest_ratio", "zipf_a", "trajectories",
    "shards", "partitioner", "executor", "index", "store",
    "replicas", "chaos",
    "rate_profile", "rate_amplitude", "rate_period",
)


def _profile(run: dict) -> tuple:
    config = run.get("config", {})
    return tuple(config.get(k) for k in PROFILE_KEYS)


def _gate_metric(run: dict) -> tuple[str, float]:
    """The machine-robust regression metric of one run.

    Open-loop runs gate on achieved throughput — with a keeping-up server
    it approximates the *offered* qps, so it transfers across machines.
    Sweep runs gate on the top level's ``scaling_vs_single`` ratio, which
    normalizes out absolute machine speed entirely.
    """
    if run.get("config", {}).get("mode") == "sweep":
        return "sweep.scaling_vs_single", float(
            run["sweep"]["scaling_vs_single"]
        )
    return "throughput_qps", float(run["throughput_qps"])


def gate_files(new_path: Path, base_path: Path, threshold: float) -> int:
    """``--gate``: fail when any new run regresses its stored baseline.

    Every run in ``new_path`` must find a baseline in ``base_path`` with
    an identical config profile (the last stored one wins); its gate
    metric must not drop more than ``threshold`` relative. A new run with
    no matching baseline fails too — an unguarded profile is exactly how
    regressions slip into the trajectory.
    """
    new_runs = load_runs(new_path)
    base_runs = load_runs(base_path)
    if not new_runs:
        print(f"GATE FAIL: {new_path} holds no runs")
        return 1
    failures = 0
    for i, run in enumerate(new_runs):
        matches = [b for b in base_runs if _profile(b) == _profile(run)]
        if not matches:
            print(
                f"GATE FAIL: run {i} ({run.get('config', {}).get('mode')}) "
                f"has no baseline with a matching profile in {base_path}"
            )
            failures += 1
            continue
        base = matches[-1]
        if run["config"].get("workload_digest") != base["config"].get(
            "workload_digest"
        ):
            # Digest differences on equal configs mean the generator (or a
            # dependency's RNG stream) changed — worth a loud warning, but
            # latency/throughput comparison is still meaningful.
            print(
                f"GATE WARN: run {i} workload digest differs from baseline "
                "(schedule generator changed?)"
            )
        key, new_value = _gate_metric(run)
        _, base_value = _gate_metric(base)
        drop = 0.0 if base_value == 0 else (base_value - new_value) / base_value
        status = "FAIL" if drop > threshold else "ok"
        print(
            f"gate run {i} [{key}]: baseline {base_value:.2f} -> "
            f"{new_value:.2f} ({-drop:+.1%} vs -{threshold:.0%} allowed) "
            f"{status}"
        )
        if drop > threshold:
            failures += 1
    if failures:
        print(f"GATE FAIL: {failures} run(s) regressed")
        return 1
    print("gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qps", type=float, default=50.0,
                        help="offered load (open-loop slot rate)")
    parser.add_argument("--seed", type=int, default=7,
                        help="single seed for database, pools, and schedule")
    parser.add_argument("--requests", type=int, default=200,
                        help="total schedule slots (queries + ingests)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent socket connections (open-loop)")
    parser.add_argument("--ingest-ratio", type=float, default=0.05,
                        help="fraction of slots that stream an ingest batch")
    parser.add_argument("--zipf-a", type=float, default=1.5,
                        help="skew of both query centres and pool popularity")
    parser.add_argument("--trajectories", type=int, default=120)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--partitioner", default="hash")
    parser.add_argument("--executor", default="serial")
    parser.add_argument("--index", default="grid")
    parser.add_argument("--store", default="heap")
    parser.add_argument("--workers", type=int, default=None,
                        help="server worker threads (--workers of repro "
                        "serve; default lets the server pick)")
    parser.add_argument("--server-max-inflight", type=int, default=None,
                        help="server admission window (--max-inflight of "
                        "repro serve); the sweep defaults it to twice its "
                        "own top-level concurrency")
    parser.add_argument("--rate-profile", default="constant",
                        choices=["constant", "diurnal"],
                        help="open-loop arrival-rate shape: 'diurnal' "
                        "modulates qps sinusoidally (one cycle per run "
                        "unless --rate-period is given)")
    parser.add_argument("--rate-amplitude", type=float, default=0.6,
                        help="diurnal modulation depth in [0, 0.95]: rate "
                        "swings between qps*(1-A) and qps*(1+A)")
    parser.add_argument("--rate-period", type=float, default=None,
                        help="diurnal cycle length in seconds (default: one "
                        "full cycle over the run)")
    parser.add_argument("--sweep", action="store_true",
                        help="closed-loop concurrency sweep over pipelined "
                        "async clients instead of the open-loop run")
    parser.add_argument("--pipeline", type=int, default=4,
                        help="sweep: in-flight requests per async client")
    parser.add_argument("--sweep-levels", default="1,2,4,8",
                        help="sweep: comma-separated client counts (a 1-"
                        "client pipeline-1 baseline always runs first)")
    parser.add_argument("--replicas", type=int, default=1,
                        help="server replicas per shard (--replicas of "
                        "repro serve; needs --executor process)")
    parser.add_argument("--watchdog-interval", type=float, default=None,
                        help="server watchdog poll interval in seconds "
                        "(--watchdog-interval of repro serve)")
    parser.add_argument("--chaos", choices=["kill-replica"], default=None,
                        help="inject a fault mid-run: 'kill-replica' "
                        "SIGKILLs one shard worker a third of the way "
                        "through the schedule (forces a process executor "
                        "with >= 2 replicas and a fast watchdog) and the "
                        "run fails unless zero requests are lost")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for the CI smoke run")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="provenance log to append the run to")
    parser.add_argument("--validate", type=Path, metavar="FILE",
                        help="validate an existing provenance log and exit")
    parser.add_argument("--gate", type=Path, metavar="NEW",
                        help="regression-gate the runs in NEW against "
                        "--against and exit")
    parser.add_argument("--against", type=Path, default=DEFAULT_OUT,
                        metavar="BASE",
                        help="baseline provenance log for --gate "
                        "(default: the committed BENCH_load.json)")
    parser.add_argument("--gate-threshold", type=float, default=0.30,
                        help="max allowed relative drop of the gate metric")
    args = parser.parse_args(argv)
    if args.validate:
        return validate_file(args.validate)
    if args.gate:
        return gate_files(args.gate, args.against, args.gate_threshold)
    if args.chaos:
        # Chaos needs something to fail over to: out-of-process workers,
        # a live sibling replica, and a watchdog to put the victim back.
        args.executor = "process"
        args.replicas = max(args.replicas, 2)
        if args.watchdog_interval is None:
            args.watchdog_interval = 0.25
    if args.smoke:
        args.qps = min(args.qps, 20.0)
        args.requests = min(args.requests, 30 if not args.sweep else 48)
        args.trajectories = min(args.trajectories, 40)
        args.clients = min(args.clients, 2)
        if args.sweep:
            args.sweep_levels = "1,2"
            args.pipeline = min(args.pipeline, 2)
            args.workers = 2 if args.workers is None else args.workers
    run = run_sweep(args) if args.sweep else run_load(args)
    log_run(args.out, "bench_load", run)
    print_summary(run)
    print(f"appended run to {args.out}")
    return 1 if run["errors"] else 0


if __name__ == "__main__":
    sys.exit(main())
