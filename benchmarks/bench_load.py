"""Seeded open-loop load harness against a live ``repro serve --listen``.

Drives the socket server the way a latency benchmark must be driven: the
request schedule is generated *up front* from one seed (so two runs with
the same seed replay the identical workload — the schedule digest printed
and stored proves it), and requests are dispatched **open-loop** at a
target QPS: slot ``i`` fires at ``t0 + i/qps`` whether or not earlier
requests have returned, so a slow server accumulates queueing delay in
the measured latency instead of silently throttling the offered load
(closed-loop harnesses hide exactly the tail this repo's histograms are
built to expose).

The mix is Zipf-skewed twice over, mirroring the paper's skewed-workload
study: range-query centres come from
:meth:`repro.workloads.RangeQueryWorkload.from_zipf`, and *which* pooled
query a slot replays is itself Zipf-distributed — popular queries repeat,
so the server's ``(request, epoch)`` LRU sees a realistic hit rate.
Streamed ingest batches interleave at ``--ingest-ratio``, bumping the
epoch mid-run the way a live service would.

Latencies are recorded client-side into the same log-bucketed
:class:`repro.obs.metrics.Histogram` the server uses, and every run is
appended to ``BENCH_load.json`` with full provenance (seed, config,
schedule digest, python/numpy versions) plus the server's own metrics
report fetched over the wire ``metrics`` op — so a regression can be
traced to a config change, a code change, or neither.

Run standalone::

    python benchmarks/bench_load.py --qps 50 --seed 7
    python benchmarks/bench_load.py --smoke --out BENCH_load_smoke.json
    python benchmarks/bench_load.py --validate BENCH_load_smoke.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.client import RemoteClient
from repro.data import save_database, synthetic_database
from repro.data.stats import spatial_scale
from repro.data.trajectory import Trajectory
from repro.obs.metrics import Histogram
from repro.obs.provenance import build_provenance, load_runs, log_run, validate_run
from repro.workloads import RangeQueryWorkload

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_load.json"

#: Offered mix over the five query kinds (Zipf-ish: rank^-1 over the kinds
#: ordered by how often an analytics dashboard issues them).
KIND_WEIGHTS = {
    "range": 1.0,
    "count": 1.0 / 2.0,
    "histogram": 1.0 / 3.0,
    "knn": 1.0 / 4.0,
    "similarity": 1.0 / 5.0,
}

POOL_SIZE = 24  # distinct queries per kind; slots replay Zipf-ranked entries


# --------------------------------------------------------------- the schedule
def _zipf_pick(rng: np.random.Generator, n: int, a: float) -> int:
    """One Zipf(``a``)-distributed index into a pool of ``n`` entries."""
    ranks = np.arange(1, n + 1, dtype=float)
    probs = ranks**-a
    return int(rng.choice(n, p=probs / probs.sum()))


def build_schedule(db, args) -> tuple[list[dict], dict, str]:
    """The full deterministic request schedule and its provenance digest.

    Returns ``(schedule, pools, digest)``: ``schedule`` is one JSON-safe
    entry per slot (op + pool index, or an ingest batch seed), ``pools``
    holds the concrete query payloads each entry references, and
    ``digest`` is the sha256 of the canonical JSON of both — identical
    seeds therefore prove themselves identical across runs and machines.
    """
    rng = np.random.default_rng(args.seed)
    pool_n = min(POOL_SIZE, args.requests)
    range_pool = RangeQueryWorkload.from_zipf(
        db, pool_n, a=args.zipf_a, seed=args.seed
    )
    boxes = [
        [b.xmin, b.xmax, b.ymin, b.ymax, b.tmin, b.tmax]
        for b in range_pool.boxes
    ]
    traj_ids = [
        int(i) for i in rng.choice(len(db), size=min(4, len(db)), replace=False)
    ]
    pools = {
        "boxes": boxes,
        "traj_ids": traj_ids,
        "grids": [16, 24, 32],
        "eps": round(0.10 * spatial_scale(db), 9),
        "delta": round(0.15 * spatial_scale(db), 9),
    }

    kinds = list(KIND_WEIGHTS)
    weights = np.array([KIND_WEIGHTS[k] for k in kinds], dtype=float)
    weights /= weights.sum()
    schedule: list[dict] = []
    for slot in range(args.requests):
        if args.ingest_ratio > 0 and rng.random() < args.ingest_ratio:
            schedule.append(
                {"op": "ingest", "batch_seed": int(args.seed + 1000 + slot)}
            )
            continue
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        entry: dict = {"op": kind}
        if kind in ("range", "count"):
            entry["pool"] = _zipf_pick(rng, len(boxes), args.zipf_a)
        elif kind == "histogram":
            entry["grid"] = pools["grids"][_zipf_pick(rng, 3, args.zipf_a)]
        elif kind in ("knn", "similarity"):
            entry["ids"] = traj_ids[: 1 + int(rng.integers(len(traj_ids)))]
        schedule.append(entry)

    canonical = json.dumps({"pools": pools, "schedule": schedule}, sort_keys=True)
    digest = hashlib.sha256(canonical.encode()).hexdigest()
    return schedule, pools, digest


def _ingest_batch(db, batch_seed: int, n: int = 3) -> list[Trajectory]:
    """A small deterministic batch of jittered copies of existing tracks."""
    rng = np.random.default_rng(batch_seed)
    batch = []
    for _ in range(n):
        base = db[int(rng.integers(len(db)))].points
        shift = rng.uniform(-40.0, 40.0, size=2)
        batch.append(Trajectory(base + np.array([shift[0], shift[1], 0.0])))
    return batch


# ----------------------------------------------------------------- the server
def launch_server(db_path: Path, args, env: dict) -> tuple[subprocess.Popen, str]:
    """Start ``repro serve --listen 127.0.0.1:0``; return (proc, address)."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--db", str(db_path),
            "--shards", str(args.shards),
            "--partitioner", args.partitioner,
            "--executor", args.executor,
            "--index", args.index,
            "--store", args.store,
            "--listen", "127.0.0.1:0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    address = None
    deadline = time.monotonic() + 90
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            break
        if line.startswith("listening on "):
            address = line.split()[-1].strip()
            break
    if not address:
        proc.kill()
        raise RuntimeError("server never printed its listen address")
    # Keep draining stdout so the server can never block on a full pipe.
    threading.Thread(
        target=lambda: [None for _ in proc.stdout], daemon=True
    ).start()
    return proc, address


def stop_server(proc: subprocess.Popen) -> int:
    proc.send_signal(signal.SIGINT)
    try:
        return proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        return proc.wait()


# ------------------------------------------------------------------- the run
def _issue(client: RemoteClient, entry: dict, pools: dict, db) -> None:
    from repro.data.bbox import BoundingBox

    op = entry["op"]
    if op == "ingest":
        client.ingest(_ingest_batch(db, entry["batch_seed"]))
    elif op == "range":
        client.range([BoundingBox(*pools["boxes"][entry["pool"]])])
    elif op == "count":
        client.count([BoundingBox(*pools["boxes"][entry["pool"]])])
    elif op == "histogram":
        client.histogram(entry["grid"])
    elif op == "knn":
        client.knn([db[i] for i in entry["ids"]], 3, eps=pools["eps"])
    elif op == "similarity":
        client.similarity([db[i] for i in entry["ids"]], pools["delta"])
    else:
        raise ValueError(f"unknown scheduled op {op!r}")


def run_load(args) -> dict:
    """Generate, serve, drive, measure; return the provenance run record."""
    db = synthetic_database(
        "geolife",
        n_trajectories=args.trajectories,
        points_scale=0.08,
        seed=args.seed,
    )
    schedule, pools, digest = build_schedule(db, args)
    print(f"schedule: {len(schedule)} slots, digest {digest[:16]}...")

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"

    overall = Histogram()
    per_kind: dict[str, Histogram] = {}
    samples: list[float] = []
    errors: list[str] = []
    record_lock = threading.Lock()

    with tempfile.TemporaryDirectory(prefix="bench_load_") as tmp:
        db_path = Path(tmp) / "db.npz"
        save_database(db, db_path)
        proc, address = launch_server(db_path, args, env)
        try:
            host, _, port = address.rpartition(":")
            clients = [
                RemoteClient(host, int(port)) for _ in range(args.clients)
            ]

            def _fire(slot: int, entry: dict) -> None:
                client = clients[slot % len(clients)]
                start = time.perf_counter()
                try:
                    _issue(client, entry, pools, db)
                except Exception as exc:
                    with record_lock:
                        errors.append(f"slot {slot} {entry['op']}: {exc}")
                    return
                elapsed = time.perf_counter() - start
                with record_lock:
                    overall.record(elapsed)
                    per_kind.setdefault(entry["op"], Histogram()).record(elapsed)
                    samples.append(elapsed)

            # Open-loop: slot i is *offered* at t0 + i/qps regardless of
            # completions; the pool only bounds client-side concurrency.
            pool = ThreadPoolExecutor(max_workers=args.clients)
            t0 = time.perf_counter()
            futures = []
            for slot, entry in enumerate(schedule):
                wait = t0 + slot / args.qps - time.perf_counter()
                if wait > 0:
                    time.sleep(wait)
                futures.append(pool.submit(_fire, slot, entry))
            for f in futures:
                f.result()
            elapsed = time.perf_counter() - t0
            pool.shutdown()

            server_metrics = clients[0].metrics()
            for client in clients:
                client.close()
        finally:
            code = stop_server(proc)
    if code != 0:
        errors.append(f"server exited with code {code}")

    # Self-check: bucketed quantiles must sit within one bucket width of
    # the exact sample quantiles (the histogram's accuracy contract).
    arr = np.sort(np.asarray(samples))
    for q in (0.5, 0.95, 0.99):
        exact = float(np.quantile(arr, q, method="inverted_cdf"))
        approx = overall.quantile(q)
        idx = overall.bucket_index(exact)
        width = overall.upper_edge(idx) - overall.lower_edge(idx)
        assert abs(approx - exact) <= max(width, 1e-12), (
            f"p{int(q * 100)} drifted: bucketed {approx} vs exact {exact}"
        )

    completed = overall.count
    run = {
        "config": {
            "seed": args.seed,
            "qps": args.qps,
            "requests": args.requests,
            "clients": args.clients,
            "ingest_ratio": args.ingest_ratio,
            "zipf_a": args.zipf_a,
            "trajectories": args.trajectories,
            "shards": args.shards,
            "partitioner": args.partitioner,
            "executor": args.executor,
            "index": args.index,
            "store": args.store,
            "provenance": build_provenance(),
            "workload_digest": digest,
        },
        "latency": {
            "p50_ms": 1000.0 * overall.quantile(0.5),
            "p95_ms": 1000.0 * overall.quantile(0.95),
            "p99_ms": 1000.0 * overall.quantile(0.99),
            "mean_ms": 1000.0 * overall.sum / max(completed, 1),
            "max_ms": 1000.0 * overall.max,
            "histogram": overall.to_json(),
            "per_kind": {k: h.to_json() for k, h in sorted(per_kind.items())},
        },
        "throughput_qps": completed / elapsed if elapsed > 0 else 0.0,
        "offered_qps": args.qps,
        "completed": completed,
        "errors": errors,
        "server_metrics": server_metrics,
    }
    problems = validate_run(run)
    assert not problems, f"run record failed validation: {problems}"
    return run


def print_summary(run: dict) -> None:
    latency = run["latency"]
    summary = run["server_metrics"].get("summary", {})
    print(
        f"completed {run['completed']}/{run['config']['requests']} at "
        f"{run['throughput_qps']:.1f} qps (offered {run['offered_qps']}): "
        f"p50 {latency['p50_ms']:.2f}ms  p95 {latency['p95_ms']:.2f}ms  "
        f"p99 {latency['p99_ms']:.2f}ms"
    )
    hits = sum(v for k, v in summary.items() if k.endswith("_cache_hits"))
    misses = sum(v for k, v in summary.items() if k.endswith("_cache_misses"))
    if hits + misses:
        print(
            f"server cache: {hits} hits / {misses} misses "
            f"({hits / (hits + misses):.1%} hit rate), "
            f"knn shards skipped: {summary.get('knn_shards_skipped', 0)}"
        )
    if run["errors"]:
        print(f"errors ({len(run['errors'])}):")
        for line in run["errors"]:
            print(f"  {line}")


def validate_file(path: Path) -> int:
    """``--validate``: schema-check every stored run; exit nonzero on drift."""
    payload = json.loads(path.read_text())
    problems: list[str] = []
    if payload.get("benchmark") != "bench_load":
        problems.append(f"benchmark is {payload.get('benchmark')!r}")
    runs = load_runs(path)
    if not runs:
        problems.append("no runs recorded")
    for i, run in enumerate(runs):
        for issue in validate_run(run):
            problems.append(f"run {i}: {issue}")
        try:
            hist = Histogram.from_json(run["latency"]["histogram"])
            for q, key in ((0.5, "p50_ms"), (0.95, "p95_ms"), (0.99, "p99_ms")):
                stored = run["latency"][key]
                derived = 1000.0 * hist.quantile(q)
                if not np.isclose(stored, derived, rtol=1e-9, atol=1e-9):
                    problems.append(
                        f"run {i}: {key} {stored} != histogram-derived {derived}"
                    )
        except Exception as exc:
            problems.append(f"run {i}: histogram unreadable: {exc}")
    if problems:
        for line in problems:
            print(f"INVALID: {line}")
        return 1
    print(f"{path}: {len(runs)} run(s), schema valid, quantiles consistent")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qps", type=float, default=50.0,
                        help="offered load (open-loop slot rate)")
    parser.add_argument("--seed", type=int, default=7,
                        help="single seed for database, pools, and schedule")
    parser.add_argument("--requests", type=int, default=200,
                        help="total schedule slots (queries + ingests)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent socket connections")
    parser.add_argument("--ingest-ratio", type=float, default=0.05,
                        help="fraction of slots that stream an ingest batch")
    parser.add_argument("--zipf-a", type=float, default=1.5,
                        help="skew of both query centres and pool popularity")
    parser.add_argument("--trajectories", type=int, default=120)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--partitioner", default="hash")
    parser.add_argument("--executor", default="serial")
    parser.add_argument("--index", default="grid")
    parser.add_argument("--store", default="heap")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for the CI smoke run")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="provenance log to append the run to")
    parser.add_argument("--validate", type=Path, metavar="FILE",
                        help="validate an existing provenance log and exit")
    args = parser.parse_args(argv)
    if args.validate:
        return validate_file(args.validate)
    if args.smoke:
        args.qps = min(args.qps, 20.0)
        args.requests = min(args.requests, 30)
        args.trajectories = min(args.trajectories, 40)
        args.clients = min(args.clients, 2)
    run = run_load(args)
    log_run(args.out, "bench_load", run)
    print_summary(run)
    print(f"appended run to {args.out}")
    return 1 if run["errors"] else 0


if __name__ == "__main__":
    sys.exit(main())
