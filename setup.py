"""Legacy setup shim.

The environment ships an older setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build an editable
wheel offline. ``python setup.py develop`` (or ``pip install -e .`` on a
newer toolchain) installs the package identically; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
