"""The unified query client API: one typed surface, three transports.

Every query workload in the repository — the evaluation harness, the CLI,
benchmarks, examples — speaks to a database through the same
:class:`Client` protocol over the canonical wire schema
(:mod:`repro.service.requests`):

* :class:`LocalClient` — a :class:`~repro.queries.engine.QueryEngine`
  over one in-process database (the single-machine reference);
* :class:`ServiceClient` — a sharded
  :class:`~repro.service.service.QueryService` with scatter/gather
  executors and streaming ingest;
* :class:`RemoteClient` — a synchronous facade over the asyncio socket
  front-end (:mod:`repro.service.server`, ``repro serve --listen``);
* :class:`AsyncRemoteClient` — the pipelined asyncio core under
  :class:`RemoteClient`: connection pooling, in-flight pipelining with a
  backpressure cap, retry-with-backoff (see :mod:`repro.client.aio`).

The three are property-tested **bit-identical** for all five query kinds
(range, count, histogram, kNN, similarity) under interleaved ingest —
switching transports changes latency, never answers.

Quickstart::

    from repro import LocalClient, synthetic_database
    from repro.service.server import serve_in_thread
    from repro.client import RemoteClient, ServiceClient

    db = synthetic_database("geolife", n_trajectories=100, seed=7)
    with LocalClient(db) as client:                 # in-process
        hits = client.range(workload).result_sets

    with ServiceClient.for_database(db, n_shards=4) as client:  # sharded
        client.ingest(more_trajectories)
        counts = client.count(boxes).counts

    handle = serve_in_thread(QueryService(db), port=0)          # networked
    with RemoteClient(handle.host, handle.port) as client:
        neighbors = client.knn(queries, k=3).neighbors
    handle.stop()
"""

from repro.client.aio import AsyncRemoteClient, OverloadedError
from repro.client.base import Client, IngestResult
from repro.client.local import LocalClient
from repro.client.remote import RemoteClient, ServerError
from repro.client.service import ServiceClient
from repro.service.requests import PROTOCOL_VERSION, RequestError

__all__ = [
    "Client",
    "IngestResult",
    "LocalClient",
    "ServiceClient",
    "RemoteClient",
    "AsyncRemoteClient",
    "ServerError",
    "OverloadedError",
    "RequestError",
    "PROTOCOL_VERSION",
]
