""":class:`RemoteClient` — a synchronous facade over the socket front-end.

Speaks the length-prefixed JSON frame protocol of
:mod:`repro.service.server` over one blocking TCP connection: a version
handshake at connect time, then strictly request/reply. Requests carry a
monotonically increasing ``id`` that the server echoes; a mismatched echo
raises — the client *proves* nothing was dropped or reordered rather than
assuming it. Server-side failures arrive as structured error frames and
re-raise here as :class:`~repro.service.requests.RequestError` (the
request was malformed or unsupported) or :class:`ServerError` (the server
failed executing it). The client is thread-safe: a lock serializes the
frame round-trip, so concurrent benchmark threads can share a connection
or open one each.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Iterable

from repro.client.base import Client, IngestResult
from repro.data.trajectory import Trajectory
from repro.obs.tracing import mint_trace_id
from repro.service.requests import (
    PROTOCOL_VERSION,
    RequestError,
    Response,
    request_to_json,
    response_from_json,
    trajectory_to_json,
)
from repro.service.server import FRAME_HEADER, MAX_FRAME_BYTES, encode_frame


class ServerError(RuntimeError):
    """The server answered with an error frame for a well-formed request."""


class RemoteClient(Client):
    """Typed query client over a ``repro serve --listen`` socket server.

    Parameters
    ----------
    host, port:
        The server's listen address (see
        :func:`repro.service.server.serve_in_thread` and the
        ``repro serve --listen`` CLI).
    timeout:
        Socket timeout in seconds for connect and each reply.
    """

    transport = "remote"

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        self._sock = socket.create_connection((host, port), timeout=timeout)
        try:
            self._sock.sendall(
                encode_frame({"type": "hello", "version": PROTOCOL_VERSION})
            )
            hello = self._read_frame()
            if hello.get("type") == "error":
                raise RequestError(hello["error"]["message"])
            if hello.get("type") != "hello" or hello.get("version") != PROTOCOL_VERSION:
                raise ServerError(f"unexpected handshake reply: {hello!r}")
            #: Serving metadata from the handshake (shard layout, epoch, ...).
            self.server_info: dict = hello.get("server", {})
        except BaseException:
            self._sock.close()
            self._closed = True
            raise

    @classmethod
    def connect(cls, address: str, *, timeout: float = 60.0) -> "RemoteClient":
        """Connect to a ``HOST:PORT`` string (the CLI's ``--connect`` form)."""
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"expected HOST:PORT, got {address!r}")
        return cls(host, int(port), timeout=timeout)

    # ----------------------------------------------------------------- framing
    def _recv_exact(self, n: int) -> bytes:
        buf = bytearray()
        while len(buf) < n:
            chunk = self._sock.recv(n - len(buf))
            if not chunk:
                raise ConnectionError("server closed the connection")
            buf += chunk
        return bytes(buf)

    def _read_frame(self) -> dict:
        (length,) = FRAME_HEADER.unpack(self._recv_exact(FRAME_HEADER.size))
        if length > MAX_FRAME_BYTES:
            raise ServerError(f"oversized frame announced ({length} bytes)")
        return json.loads(self._recv_exact(length))

    def _round_trip(self, frame: dict) -> dict:
        """Send one frame, return the matching reply body (id-checked)."""
        if self._closed:
            raise RuntimeError("client is closed")
        with self._lock:
            rid = self._next_id
            self._next_id += 1
            frame = {**frame, "id": rid}
            self._sock.sendall(encode_frame(frame))
            reply = self._read_frame()
        if reply.get("type") == "error":
            # An error frame for a DIFFERENT id is a stale reply (e.g. after
            # a timeout), not this request's verdict — fail loudly instead
            # of blaming a well-formed request. Framing-level errors carry
            # id None and are accepted as ours.
            if reply.get("id") not in (None, rid):
                raise ServerError(
                    f"response out of order: sent id {rid}, got {reply!r}"
                )
            error = reply.get("error", {})
            message = error.get("message", "unknown server error")
            if error.get("type") == "RequestError":
                raise RequestError(message)
            raise ServerError(f"{error.get('type', 'Error')}: {message}")
        if reply.get("type") != "response" or reply.get("id") != rid:
            raise ServerError(
                f"response out of order: sent id {rid}, got {reply!r}"
            )
        return reply["response"]

    # ---------------------------------------------------------------- protocol
    def execute(self, request, *, trace_id: str | None = None) -> Response:
        """Serve one typed request over the socket.

        A trace id (minted here unless the caller supplies one) travels in
        the frame's ``"trace"`` key; the server propagates it through its
        span buffer, so this exact id appears verbatim in the server-side
        ``QueryService.trace_export()`` output.
        """
        self.last_trace_id = trace_id if trace_id is not None else mint_trace_id()
        body = self._round_trip(
            {
                "type": "request",
                "request": request_to_json(request),
                "trace": self.last_trace_id,
            }
        )
        return response_from_json(body)

    def ingest(
        self,
        trajectories: Iterable[Trajectory],
        *,
        trace_id: str | None = None,
    ) -> IngestResult:
        self.last_trace_id = trace_id if trace_id is not None else mint_trace_id()
        body = self._round_trip(
            {
                "type": "ingest",
                "trajectories": [trajectory_to_json(t) for t in trajectories],
                "trace": self.last_trace_id,
            }
        )
        return IngestResult(added=int(body["added"]), epoch=int(body["epoch"]))

    def describe(self) -> dict:
        body = self._round_trip({"type": "describe"})
        return {"transport": self.transport, **body["info"]}

    def metrics(self) -> dict:
        """The live server's metrics report (the wire ``metrics`` op)."""
        body = self._round_trip({"type": "metrics"})
        return body["metrics"]

    def close(self) -> None:
        """Send a best-effort goodbye and close the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            with self._lock:
                self._sock.sendall(encode_frame({"type": "bye"}))
                self._read_frame()  # the server's bye ack
        except OSError:
            pass
        finally:
            self._sock.close()
