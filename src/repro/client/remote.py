""":class:`RemoteClient` — a synchronous facade over the socket front-end.

The wire code lives exactly once, in
:class:`repro.client.aio.AsyncRemoteClient`; this class runs one on a
private event-loop thread and blocks on each call with
``asyncio.run_coroutine_threadsafe``. Requests carry a monotonically
increasing ``id`` that the server echoes; a mismatched echo raises — the
client *proves* nothing was dropped or reordered rather than assuming
it. Server-side failures arrive as structured error frames and re-raise
here as :class:`~repro.service.requests.RequestError` (the request was
malformed or unsupported), :class:`OverloadedError` (the server's
admission control refused it and the retry budget ran out), or
:class:`ServerError` (the server failed executing it). The client is
thread-safe: ``run_coroutine_threadsafe`` serializes nothing but is safe
from any thread, and the async core keys every reply by id.

The facade's pipeline depth is its caller's concurrency: each blocking
call occupies one slot of the async core's ``max_inflight`` window, so
one thread gets the historical strict request/reply behaviour while many
threads sharing one client genuinely pipeline over its pooled
connections.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Iterable

from repro.client.aio import AsyncRemoteClient, OverloadedError, ServerError
from repro.client.base import Client, IngestResult
from repro.data.trajectory import Trajectory
from repro.obs.tracing import mint_trace_id
from repro.service.requests import (
    Response,
    request_to_json,
    response_from_json,
    trajectory_to_json,
)

__all__ = ["RemoteClient", "ServerError", "OverloadedError"]


class RemoteClient(Client):
    """Typed query client over a ``repro serve --listen`` socket server.

    Parameters
    ----------
    host, port:
        The server's listen address (see
        :func:`repro.service.server.serve_in_thread` and the
        ``repro serve --listen`` CLI).
    timeout:
        Seconds to wait for connect and for each reply.
    auth_token:
        Handshake token for servers started with ``--auth-token``.
    connections, max_inflight, retries:
        Forwarded to the async core (useful when many threads share one
        client); the single-threaded defaults reproduce the historical
        one-connection strict request/reply behaviour.
    """

    transport = "remote"

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        auth_token: str | None = None,
        connections: int = 1,
        max_inflight: int = 32,
        retries: int = 2,
    ) -> None:
        self._closed = False
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-client", daemon=True
        )
        self._thread.start()
        try:
            self._aclient: AsyncRemoteClient = self._call(
                AsyncRemoteClient.open(
                    host,
                    port,
                    timeout=timeout,
                    auth_token=auth_token,
                    connections=connections,
                    max_inflight=max_inflight,
                    retries=retries,
                )
            )
        except BaseException:
            self._closed = True
            self._stop_loop()
            raise
        #: Serving metadata from the handshake (shard layout, epoch, ...).
        self.server_info: dict = self._aclient.server_info

    @classmethod
    def connect(cls, address: str, **kwargs) -> "RemoteClient":
        """Connect to a ``HOST:PORT`` string (the CLI's ``--connect`` form)."""
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"expected HOST:PORT, got {address!r}")
        return cls(host, int(port), **kwargs)

    # ------------------------------------------------------------ loop plumbing
    def _call(self, coro):
        """Run one coroutine on the client loop, blocking for its result."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        if not self._thread.is_alive():
            self._loop.close()

    # ----------------------------------------------------------------- framing
    def _round_trip(self, frame: dict) -> dict:
        """Send one frame, return the matching reply body (id-checked).

        Ingest frames keep their no-retry-on-reset contract; everything
        else is idempotent (see :mod:`repro.client.aio`).
        """
        if self._closed:
            raise RuntimeError("client is closed")
        return self._call(
            self._aclient._round_trip(
                frame, idempotent=frame.get("type") != "ingest"
            )
        )

    # ---------------------------------------------------------------- protocol
    def execute(self, request, *, trace_id: str | None = None) -> Response:
        """Serve one typed request over the socket.

        A trace id (minted here unless the caller supplies one) travels in
        the frame's ``"trace"`` key; the server propagates it through its
        span buffer, so this exact id appears verbatim in the server-side
        ``QueryService.trace_export()`` output.
        """
        self.last_trace_id = trace_id if trace_id is not None else mint_trace_id()
        body = self._round_trip(
            {
                "type": "request",
                "request": request_to_json(request),
                "trace": self.last_trace_id,
            }
        )
        return response_from_json(body)

    def ingest(
        self,
        trajectories: Iterable[Trajectory],
        *,
        trace_id: str | None = None,
    ) -> IngestResult:
        self.last_trace_id = trace_id if trace_id is not None else mint_trace_id()
        body = self._round_trip(
            {
                "type": "ingest",
                "trajectories": [trajectory_to_json(t) for t in trajectories],
                "trace": self.last_trace_id,
            }
        )
        return IngestResult(added=int(body["added"]), epoch=int(body["epoch"]))

    def describe(self) -> dict:
        body = self._round_trip({"type": "describe"})
        return {"transport": self.transport, **body["info"]}

    def metrics(self) -> dict:
        """The live server's metrics report (the wire ``metrics`` op)."""
        body = self._round_trip({"type": "metrics"})
        return body["metrics"]

    def close(self) -> None:
        """Send best-effort goodbyes and stop the loop thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._call(self._aclient.close())
        except Exception:
            pass
        finally:
            self._stop_loop()
