""":class:`ServiceClient` — the Client protocol over a sharded QueryService.

A thin adapter: requests go straight to
:meth:`~repro.service.service.QueryService.execute` (caching, stats, and
the exact shard merges live in the service), ingest routes through the
manager's transactional streaming path. The client can either wrap an
existing service (``ServiceClient(service)``) or own one built from a
database (``ServiceClient.for_database(db, n_shards=4, ...)``), in which
case ``close()`` also releases the service's executor workers.
"""

from __future__ import annotations

from typing import Iterable

from repro.client.base import Client, IngestResult
from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory
from repro.obs.tracing import mint_trace_id
from repro.service.requests import Response
from repro.service.service import QueryService


class ServiceClient(Client):
    """Typed query client over a (possibly multi-process) sharded service."""

    transport = "service"

    def __init__(self, service: QueryService, *, own_service: bool = False) -> None:
        self.service = service
        self._own_service = bool(own_service)

    @classmethod
    def for_database(cls, db: TrajectoryDatabase, **service_kwargs) -> "ServiceClient":
        """Build (and own) a :class:`QueryService` over ``db``."""
        return cls(QueryService(db, **service_kwargs), own_service=True)

    # ---------------------------------------------------------------- protocol
    @property
    def epoch(self) -> int:
        return self.service.manager.epoch

    def execute(self, request, *, trace_id: str | None = None) -> Response:
        self.last_trace_id = trace_id if trace_id is not None else mint_trace_id()
        return self.service.execute(request, trace_id=self.last_trace_id)

    def ingest(self, trajectories: Iterable[Trajectory]) -> IngestResult:
        added = self.service.ingest(trajectories)
        return IngestResult(added=added, epoch=self.service.manager.epoch)

    def metrics(self) -> dict:
        return self.service.metrics_report()

    def describe(self) -> dict:
        return {"transport": self.transport, **self.service.describe()}

    def close(self) -> None:
        if self._own_service:
            self.service.close()
