""":class:`LocalClient` — the Client protocol over one in-process engine.

The reference transport: requests dispatch straight onto the database's
shared :class:`~repro.queries.engine.QueryEngine` (so repeated scoring of
the same database state hits the engine memo that the training and
evaluation paths already share). Semantics mirror the sharded service
exactly — the same ``(cache key, epoch)`` result LRU, the same canonical
payload forms, the same response metadata — which is what makes the
three-transport parity property testable bit for bit.

Ingest materializes ``db.extended(batch)`` and bumps the epoch: the
documented reference behavior that the sharded service's streaming path
is property-tested against.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

import numpy as np

from repro.client.base import Client, IngestResult
from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory
from repro.obs.tracing import Tracer, mint_trace_id
from repro.queries.engine import QueryEngine
from repro.queries.knn import knn_query_batch
from repro.service.requests import Response, serve_cached
from repro.service.service import ServiceStats


class LocalClient(Client):
    """Typed query client over a single in-process database.

    Parameters
    ----------
    db:
        The served database.
    resolution, index:
        Engine grid resolution / index backend name, applied when this
        client creates the database's shared engine (an engine that already
        exists is reused unchanged).
    cache_size:
        LRU entries of whole-request results, keyed on
        ``(request cache key, epoch)`` — the service's cache semantics.
    """

    transport = "local"

    def __init__(
        self,
        db: TrajectoryDatabase,
        *,
        resolution: tuple[int, int, int] = (32, 32, 16),
        index: str = "grid",
        cache_size: int = 64,
    ) -> None:
        self._resolution = resolution
        self._index = index
        self._db = db
        self._engine = self._build_engine(db)
        self._epoch = 0
        self._cache: OrderedDict[tuple, object] = OrderedDict()
        self._cache_size = int(cache_size)
        self.stats = ServiceStats()
        self.tracer = Tracer()
        self._closed = False

    def _build_engine(self, db: TrajectoryDatabase) -> QueryEngine:
        # Backend choice never changes answers, only pruning cost — so when
        # the database already has a shared engine, it is reused unchanged.
        if self._index == "grid":
            return QueryEngine.for_database(db, resolution=self._resolution)
        from repro.index.backend import make_backend

        return QueryEngine.for_database(db, backend=make_backend(self._index, db))

    # ---------------------------------------------------------------- protocol
    @property
    def database(self) -> TrajectoryDatabase:
        """The currently served database state (grows with ingest)."""
        return self._db

    @property
    def epoch(self) -> int:
        return self._epoch

    def execute(self, request, *, trace_id: str | None = None) -> Response:
        if self._closed:
            raise RuntimeError("client is closed")
        self.last_trace_id = trace_id if trace_id is not None else mint_trace_id()
        # The same serving loop as QueryService.execute (serve_cached), so
        # cache/epoch/stats semantics cannot drift between transports.
        return serve_cached(
            request,
            epoch=self._epoch,
            n_shards=1,
            cache=self._cache,
            cache_size=self._cache_size,
            stats=self.stats,
            dispatch=self._dispatch,
            tracer=self.tracer,
            trace_id=self.last_trace_id,
        )

    def metrics(self) -> dict:
        """Summary + latency histograms of this client's serving loop
        (shape-compatible with the sharded service's report)."""
        return {
            "summary": self.stats.summary(),
            "histograms": self.stats.histograms(),
            "epoch": self._epoch,
            "n_shards": 1,
            "executor": "local",
            "trace": {
                "buffered_spans": len(self.tracer),
                "recorded_spans": self.tracer.recorded,
            },
        }

    def _dispatch(self, request):
        """Run one request on the engine, in canonical payload form."""
        kind = request.kind
        if kind == "range":
            results = self._engine.evaluate(list(request.boxes))
            return tuple(frozenset(s) for s in results)
        if kind == "count":
            counts = np.asarray(self._engine.count(request.boxes), dtype=np.int64)
            counts.setflags(write=False)
            return counts
        if kind == "histogram":
            hist = np.asarray(
                self._engine.histogram(
                    grid=request.grid, box=request.box, normalize=request.normalize
                ),
                dtype=float,
            )
            hist.setflags(write=False)
            return hist
        if kind == "knn":
            pairs = knn_query_batch(
                self._db,
                list(request.queries),
                request.k,
                None if request.time_windows is None else list(request.time_windows),
                request.measure,
                eps=request.eps,
                engine=self._engine,
                return_pairs=True,
            )
            return tuple(tuple(tuple(p) for p in query_pairs) for query_pairs in pairs)
        if kind == "similarity":
            results = self._engine.similarity(
                list(request.queries),
                request.delta,
                None if request.time_windows is None else list(request.time_windows),
                n_checkpoints=request.n_checkpoints,
            )
            return tuple(frozenset(s) for s in results)
        raise ValueError(f"unknown request kind {kind!r}")

    def ingest(self, trajectories: Iterable[Trajectory]) -> IngestResult:
        if self._closed:
            raise RuntimeError("client is closed")
        batch = list(trajectories)
        if not batch:
            return IngestResult(added=0, epoch=self._epoch)
        for t in batch:
            if not isinstance(t, Trajectory):
                raise TypeError(f"expected Trajectory, got {type(t).__name__}")
        self._db = self._db.extended(batch)
        self._engine = self._build_engine(self._db)
        self._epoch += 1
        self.stats.record_ingest(batch)
        return IngestResult(added=len(batch), epoch=self._epoch)

    def describe(self) -> dict:
        return {
            "transport": self.transport,
            "n_shards": 1,
            "executor": "local",
            "index": self._index,
            "epoch": self._epoch,
            "trajectories": len(self._db),
            "points": self._db.total_points,
            # The local transport has no storage engine to compact: it is
            # always exact (same key shape as the sharded describe()).
            "compaction": {"policy": "exact"},
            # One in-process engine == one replica (same key shape as the
            # replicated sharded describe()).
            "replicas": 1,
        }

    def close(self) -> None:
        self._closed = True
        self._cache.clear()
