"""The :class:`Client` protocol — one typed query surface, any transport.

A client answers the five query kinds of the wire schema
(:mod:`repro.service.requests`) and streams ingest batches. The three
implementations are interchangeable and property-tested bit-identical:

* :class:`~repro.client.local.LocalClient` — a
  :class:`~repro.queries.engine.QueryEngine` over one in-process database;
* :class:`~repro.client.service.ServiceClient` — a sharded
  :class:`~repro.service.service.QueryService` (serial or process
  executor);
* :class:`~repro.client.remote.RemoteClient` — a synchronous facade over
  the asyncio socket front-end (:mod:`repro.service.server`).

Subclasses implement :meth:`execute`, :meth:`ingest`, :meth:`describe`,
and :meth:`close`; the typed convenience methods (``range``, ``count``,
``histogram``, ``knn``, ``similarity``) are shared here and only build
the corresponding request dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.data.trajectory import Trajectory
from repro.service.requests import (
    CountRequest,
    CountResponse,
    HistogramRequest,
    HistogramResponse,
    KnnRequest,
    KnnResponse,
    RangeRequest,
    RangeResponse,
    Response,
    SimilarityRequest,
    SimilarityResponse,
)


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one streamed ingest batch."""

    #: Trajectories accepted into the served database.
    added: int
    #: The serving epoch after the batch (bumped once per non-empty batch).
    epoch: int


class Client:
    """Abstract typed query client; see the module docstring."""

    #: Transport name, for banners and benchmarks.
    transport = "abstract"

    #: Trace id of the most recent :meth:`execute` call. Every transport
    #: mints one per request (or forwards the caller's), so any response
    #: can be correlated with the serving side's exported spans.
    last_trace_id: str | None = None

    # ------------------------------------------------------------- core surface
    def execute(self, request, *, trace_id: str | None = None) -> Response:
        """Serve one typed request from :mod:`repro.service.requests`.

        ``trace_id`` propagates to the serving side's span buffer; when
        omitted the transport mints one (see :attr:`last_trace_id`).
        """
        raise NotImplementedError

    def metrics(self) -> dict:
        """The serving side's metrics report (summary + latency histograms).

        Shape matches :meth:`repro.service.service.QueryService.metrics_report`;
        over the socket transport this is the wire ``metrics`` op.
        """
        raise NotImplementedError

    def ingest(self, trajectories: Iterable[Trajectory]) -> IngestResult:
        """Stream a trajectory batch into the served database."""
        raise NotImplementedError

    def describe(self) -> dict:
        """Serving metadata; always includes ``trajectories``, ``points``,
        ``n_shards``, and ``epoch``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release transport resources (idempotent)."""
        raise NotImplementedError

    # ------------------------------------------------------------- conveniences
    def range(self, workload) -> RangeResponse:
        """Evaluate a range workload (a workload object or box iterable)."""
        return self.execute(RangeRequest.from_workload(workload))

    def count(self, boxes) -> CountResponse:
        """Per-box point counts."""
        return self.execute(CountRequest.from_workload(boxes))

    def histogram(
        self, grid: int = 32, box=None, normalize: bool = False
    ) -> HistogramResponse:
        """The spatial density heatmap (served extent when ``box`` is None)."""
        return self.execute(HistogramRequest(grid, box, normalize))

    def knn(
        self,
        queries,
        k: int,
        time_windows=None,
        measure="edr",
        eps: float = 2000.0,
    ) -> KnnResponse:
        """k nearest trajectories per query trajectory."""
        return self.execute(
            KnnRequest(
                tuple(queries),
                k,
                None if time_windows is None else tuple(time_windows),
                measure,
                eps,
            )
        )

    def similarity(
        self, queries, delta: float, time_windows=None, n_checkpoints: int = 32
    ) -> SimilarityResponse:
        """Synchronized-distance threshold matches per query trajectory."""
        return self.execute(
            SimilarityRequest(
                tuple(queries),
                delta,
                None if time_windows is None else tuple(time_windows),
                n_checkpoints,
            )
        )

    # --------------------------------------------------------------- lifecycle
    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
