""":class:`AsyncRemoteClient` — the pipelined asyncio socket client.

This module is the single home of the client-side wire code: the
synchronous :class:`~repro.client.remote.RemoteClient` is a thin facade
that runs one of these on a private event-loop thread, so the framing,
handshake, id bookkeeping, and error mapping exist exactly once.

Protocol position (server side documented in
:mod:`repro.service.server`):

* **Pipelining** — requests carry a client-unique ``id`` and the server
  answers out of order, so the client keeps a per-connection in-flight
  table ``{id: Future}`` and resolves each future from the echoed id.
  ``max_inflight`` bounds the total outstanding requests (an
  :class:`asyncio.Semaphore`), which keeps a fast producer from running
  arbitrarily far ahead of the server's admission window.
* **Pooling** — up to ``connections`` TCP connections, opened lazily;
  each round trip picks the live connection with the fewest in-flight
  requests.
* **Retry** — connect failures and mid-request resets are retried with
  exponential backoff for **idempotent** operations only (query,
  describe, metrics). Ingest is *never* retried after a reset: the
  server may have applied the batch before the connection died, and
  replaying it would double-ingest. A typed ``Overloaded`` refusal, by
  contrast, is issued *before* execution, so it is retried for every
  operation — including ingest — up to the retry budget, after which it
  surfaces as :class:`OverloadedError`.
* **Auth** — an ``auth_token`` travels in the hello; a server-side
  ``AuthError`` raises here as :class:`ServerError` (never retried).
"""

from __future__ import annotations

import asyncio
import json
from typing import Iterable

from repro.client.base import IngestResult
from repro.data.trajectory import Trajectory
from repro.obs.tracing import mint_trace_id
from repro.service.requests import (
    CountRequest,
    HistogramRequest,
    KnnRequest,
    PROTOCOL_VERSION,
    RangeRequest,
    RequestError,
    Response,
    SimilarityRequest,
    request_to_json,
    response_from_json,
    trajectory_to_json,
)
from repro.service.server import FRAME_HEADER, MAX_FRAME_BYTES, encode_frame


class ServerError(RuntimeError):
    """The server answered with an error frame for a well-formed request."""


class OverloadedError(ServerError):
    """The server refused the frame at admission (``max_inflight`` hit).

    The request never executed, so retrying it is safe for every
    operation; this surfaces only after the client's retry budget is
    spent."""


def _map_error(error: dict) -> Exception:
    """One error frame body -> the exception the caller sees."""
    message = error.get("message", "unknown server error")
    etype = error.get("type", "Error")
    if etype == "RequestError":
        return RequestError(message)
    if etype == "Overloaded":
        return OverloadedError(message)
    return ServerError(f"{etype}: {message}")


async def _read_frame(reader: asyncio.StreamReader) -> dict:
    header = await reader.readexactly(FRAME_HEADER.size)
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServerError(f"oversized frame announced ({length} bytes)")
    return json.loads(await reader.readexactly(length))


class _Connection:
    """One live TCP connection: streams, in-flight table, reader task."""

    def __init__(self, reader, writer, server_info: dict) -> None:
        self.reader = reader
        self.writer = writer
        self.server_info = server_info
        #: Futures awaiting the response frame with the matching id.
        self.inflight: dict[int, asyncio.Future] = {}
        #: Serializes frame writes: two coroutine sends interleaving their
        #: write()+drain() would corrupt the stream mid-frame.
        self.send_lock = asyncio.Lock()
        self.reader_task: asyncio.Task | None = None
        self.bye_received: asyncio.Future | None = None
        self.dead = False

    def fail(self, exc: Exception) -> None:
        """Mark dead and deliver ``exc`` to every in-flight future."""
        self.dead = True
        for fut in self.inflight.values():
            if not fut.done():
                fut.set_exception(exc)
        self.inflight.clear()
        if self.bye_received is not None and not self.bye_received.done():
            self.bye_received.set_exception(exc)


class AsyncRemoteClient:
    """Pipelined asyncio client for a ``repro serve --listen`` server.

    Construct with :meth:`open` (or ``async with AsyncRemoteClient.open(...)
    as client``); all operations are coroutines. Responses are matched by
    request id, so many :meth:`execute` calls may be in flight at once::

        client = await AsyncRemoteClient.open(host, port, max_inflight=16)
        answers = await asyncio.gather(*(client.execute(r) for r in requests))
        await client.close()

    Parameters
    ----------
    connections:
        TCP connection pool size (opened lazily, least-loaded pick).
    max_inflight:
        Client-wide cap on outstanding requests (the pipelining window).
    timeout:
        Seconds to wait for connect and for each reply.
    auth_token:
        Forwarded in the handshake for servers started with one.
    retries, retry_backoff:
        Transient-failure budget: up to ``retries`` extra attempts with
        ``retry_backoff * 2**attempt`` sleeps between them.
    trace:
        When ``False``, :meth:`execute`/:meth:`ingest` stop minting a
        trace id per request (an explicit ``trace_id=`` still travels).
        Untraced frames skip the server's span recording — the right
        setting for closed-loop throughput measurement, where a span per
        request is pure overhead.
    """

    transport = "remote-async"

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connections: int = 1,
        max_inflight: int = 32,
        timeout: float = 60.0,
        auth_token: str | None = None,
        retries: int = 2,
        retry_backoff: float = 0.05,
        trace: bool = True,
    ) -> None:
        self._host = host
        self._port = port
        self._trace = trace
        self._pool_size = max(1, int(connections))
        self._timeout = timeout
        self._auth_token = auth_token
        self._retries = max(0, int(retries))
        self._retry_backoff = retry_backoff
        self._sema = asyncio.Semaphore(max(1, int(max_inflight)))
        self._conns: list[_Connection] = []
        self._next_id = 0
        self._closed = False
        self.last_trace_id: str | None = None
        #: Serving metadata from the most recent handshake.
        self.server_info: dict = {}
        #: Idempotent requests replayed after a mid-request connection
        #: reset — the signature of a server-side failover/restart window
        #: (a replicated server killing and replacing a worker drops
        #: connections exactly like a transient overload sheds them, so
        #: both are retried the same way). Ingest never increments this:
        #: a reset mid-ingest stays fatal, the batch may have applied.
        self.failover_retries = 0

    @classmethod
    async def open(cls, host: str, port: int, **kwargs) -> "AsyncRemoteClient":
        """Connect (first pool connection + handshake) and return the client."""
        client = cls(host, port, **kwargs)
        try:
            await client._ensure_connection()
        except BaseException:
            await client.close()
            raise
        return client

    # -------------------------------------------------------------- connections
    async def _connect_one(self) -> _Connection:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self._host, self._port), self._timeout
        )
        try:
            hello: dict = {"type": "hello", "version": PROTOCOL_VERSION}
            if self._auth_token is not None:
                hello["token"] = self._auth_token
            writer.write(encode_frame(hello))
            await writer.drain()
            reply = await asyncio.wait_for(_read_frame(reader), self._timeout)
        except BaseException:
            writer.close()
            raise
        if reply.get("type") == "error":
            writer.close()
            raise _map_error(reply.get("error", {}))
        if reply.get("type") != "hello" or reply.get("version") != PROTOCOL_VERSION:
            writer.close()
            raise ServerError(f"unexpected handshake reply: {reply!r}")
        conn = _Connection(reader, writer, reply.get("server", {}))
        conn.reader_task = asyncio.get_running_loop().create_task(
            self._reader_loop(conn)
        )
        self.server_info = conn.server_info
        return conn

    async def _get_connection(self) -> _Connection:
        self._conns = [c for c in self._conns if not c.dead]
        if len(self._conns) < self._pool_size:
            conn = await self._connect_one()
            self._conns.append(conn)
            return conn
        return min(self._conns, key=lambda c: len(c.inflight))

    async def _ensure_connection(self) -> None:
        attempt = 0
        while True:
            try:
                await self._get_connection()
                return
            except (ConnectionError, OSError, asyncio.TimeoutError):
                if attempt >= self._retries:
                    raise
                await asyncio.sleep(self._retry_backoff * (2**attempt))
                attempt += 1

    async def _reader_loop(self, conn: _Connection) -> None:
        """Demultiplex response frames to their futures by echoed id."""
        try:
            while True:
                frame = await _read_frame(conn.reader)
                ftype = frame.get("type")
                if ftype == "bye":
                    if conn.bye_received is not None and not conn.bye_received.done():
                        conn.bye_received.set_result(True)
                    conn.fail(ConnectionError("connection said goodbye"))
                    return
                rid = frame.get("id")
                fut = conn.inflight.pop(rid, None) if rid is not None else None
                if fut is not None:
                    if not fut.done():
                        fut.set_result(frame)
                    continue
                if ftype == "error" and rid is None:
                    # A connection-level error (framing violation verdict):
                    # the server closes after sending it, so every pending
                    # request on this connection fails with the mapped error.
                    conn.fail(_map_error(frame.get("error", {})))
                    return
                # An unmatched response (e.g. a reply landing after its
                # waiter timed out): drop it — the waiter already failed.
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            conn.fail(ConnectionError("server closed the connection"))
        except asyncio.CancelledError:
            conn.fail(ConnectionError("client is closing"))
            raise
        except Exception as exc:  # defensive: never die silently
            conn.fail(ServerError(f"client reader failed: {exc}"))

    # ----------------------------------------------------------------- framing
    async def _round_trip(self, frame: dict, *, idempotent: bool) -> dict:
        """Send one frame, await the id-matched reply body.

        ``idempotent=False`` (ingest) disables the reset-retry path; the
        pre-execution ``Overloaded`` refusal is retried for every
        operation.
        """
        if self._closed:
            raise RuntimeError("client is closed")
        async with self._sema:
            attempt = 0
            while True:
                try:
                    conn = await self._get_connection()
                except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                    if idempotent and attempt < self._retries:
                        await asyncio.sleep(self._retry_backoff * (2**attempt))
                        attempt += 1
                        continue
                    raise ConnectionError(f"connect failed: {exc}") from exc
                rid = self._next_id
                self._next_id += 1
                fut = asyncio.get_running_loop().create_future()
                conn.inflight[rid] = fut
                try:
                    async with conn.send_lock:
                        conn.writer.write(encode_frame({**frame, "id": rid}))
                        await conn.writer.drain()
                    reply = await asyncio.wait_for(fut, self._timeout)
                except asyncio.TimeoutError:
                    # The reply may still arrive; this connection's stream
                    # state is no longer trustworthy for matching.
                    conn.inflight.pop(rid, None)
                    conn.fail(ConnectionError("timed out awaiting a reply"))
                    raise TimeoutError(
                        f"no reply to request {rid} within {self._timeout}s"
                    ) from None
                except (ConnectionError, OSError) as exc:
                    conn.inflight.pop(rid, None)
                    conn.dead = True
                    if idempotent and attempt < self._retries:
                        # A reset mid-request is what a server-side
                        # failover/restart window looks like from here;
                        # treat it exactly like an Overloaded refusal
                        # (same backoff, same budget) — but only for
                        # idempotent operations, which cannot double-apply.
                        self.failover_retries += 1
                        await asyncio.sleep(self._retry_backoff * (2**attempt))
                        attempt += 1
                        continue
                    raise
                if reply.get("type") == "error":
                    if reply.get("id") not in (None, rid):
                        raise ServerError(
                            f"response out of order: sent id {rid}, got {reply!r}"
                        )
                    exc = _map_error(reply.get("error", {}))
                    if isinstance(exc, OverloadedError) and attempt < self._retries:
                        # Refused before execution: safe to replay even for
                        # ingest. Back off to let the server drain.
                        await asyncio.sleep(self._retry_backoff * (2**attempt))
                        attempt += 1
                        continue
                    raise exc
                if reply.get("type") != "response" or reply.get("id") != rid:
                    raise ServerError(
                        f"response out of order: sent id {rid}, got {reply!r}"
                    )
                return reply["response"]

    # ---------------------------------------------------------------- protocol
    async def execute(self, request, *, trace_id: str | None = None) -> Response:
        """Serve one typed request (idempotent: retried on reset)."""
        if trace_id is None and self._trace:
            trace_id = mint_trace_id()
        self.last_trace_id = trace_id
        frame = {"type": "request", "request": request_to_json(request)}
        if trace_id is not None:
            frame["trace"] = trace_id
        body = await self._round_trip(frame, idempotent=True)
        return response_from_json(body)

    async def ingest(
        self,
        trajectories: Iterable[Trajectory],
        *,
        trace_id: str | None = None,
    ) -> IngestResult:
        """Stream a batch in (never retried after a reset — see module doc)."""
        if trace_id is None and self._trace:
            trace_id = mint_trace_id()
        self.last_trace_id = trace_id
        frame = {
            "type": "ingest",
            "trajectories": [trajectory_to_json(t) for t in trajectories],
        }
        if trace_id is not None:
            frame["trace"] = trace_id
        body = await self._round_trip(frame, idempotent=False)
        return IngestResult(added=int(body["added"]), epoch=int(body["epoch"]))

    async def describe(self) -> dict:
        body = await self._round_trip({"type": "describe"}, idempotent=True)
        return {"transport": self.transport, **body["info"]}

    async def metrics(self) -> dict:
        """The live server's metrics report (the wire ``metrics`` op)."""
        body = await self._round_trip({"type": "metrics"}, idempotent=True)
        return body["metrics"]

    # ------------------------------------------------------------- conveniences
    async def range(self, workload):
        return await self.execute(RangeRequest.from_workload(workload))

    async def count(self, boxes):
        return await self.execute(CountRequest.from_workload(boxes))

    async def histogram(self, grid: int = 32, box=None, normalize: bool = False):
        return await self.execute(HistogramRequest(grid, box, normalize))

    async def knn(self, queries, k, time_windows=None, measure="edr", eps=2000.0):
        return await self.execute(
            KnnRequest(
                tuple(queries),
                k,
                None if time_windows is None else tuple(time_windows),
                measure,
                eps,
            )
        )

    async def similarity(self, queries, delta, time_windows=None, n_checkpoints=32):
        return await self.execute(
            SimilarityRequest(
                tuple(queries),
                delta,
                None if time_windows is None else tuple(time_windows),
                n_checkpoints,
            )
        )

    # --------------------------------------------------------------- lifecycle
    async def close(self) -> None:
        """Best-effort goodbyes, then tear every connection down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            if conn.dead:
                continue
            try:
                conn.bye_received = asyncio.get_running_loop().create_future()
                async with conn.send_lock:
                    conn.writer.write(encode_frame({"type": "bye"}))
                    await conn.writer.drain()
                # The server drains this connection's in-flight work before
                # acking, so a clean close never strands a response.
                await asyncio.wait_for(conn.bye_received, min(self._timeout, 10.0))
            except (ConnectionError, OSError, asyncio.TimeoutError, ServerError):
                pass
        for conn in self._conns:
            if conn.reader_task is not None:
                conn.reader_task.cancel()
                try:
                    await conn.reader_task
                except (asyncio.CancelledError, Exception):
                    pass
            conn.writer.close()
            try:
                await conn.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._conns.clear()

    async def __aenter__(self) -> "AsyncRemoteClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()


__all__ = ["AsyncRemoteClient", "ServerError", "OverloadedError"]
