"""Reinforcement learning substrate: numpy MLPs, replay memory, and DQN.

The paper's agents are deliberately tiny — two-layer feedforward networks
with 25 tanh hidden units, batch normalization, Adam, and classic DQN with
replay memory and an ε-greedy behaviour policy (Mnih et al., 2013). This
package implements that stack from scratch on numpy, with explicit backprop;
no deep-learning framework is required.
"""

from repro.rl.networks import QNetwork
from repro.rl.replay import ReplayMemory, Transition
from repro.rl.dqn import DQNAgent, DQNConfig
from repro.rl.policy_gradient import REINFORCEAgent, REINFORCEConfig, masked_softmax

__all__ = [
    "QNetwork",
    "ReplayMemory",
    "Transition",
    "DQNAgent",
    "DQNConfig",
    "REINFORCEAgent",
    "REINFORCEConfig",
    "masked_softmax",
]
