"""A from-scratch numpy Q-network with batch normalization and Adam.

Architecture (paper, Section V-A): ``Linear(in, hidden) -> BatchNorm ->
tanh -> Linear(hidden, out)`` with 25 hidden units, linear output head, and
Adam at learning rate 0.01. Batch normalization keeps the value scales of
heterogeneous state features (trajectory fractions vs. metre-scale
distances) comparable, which the paper calls out as necessary.

The network trains on the squared TD-error of *selected* actions only, the
usual DQN regression target.
"""

from __future__ import annotations

import numpy as np

_BN_EPS = 1e-5
_BN_MOMENTUM = 0.9


class _Adam:
    """Adam state for one parameter tensor."""

    __slots__ = ("m", "v", "t", "lr", "beta1", "beta2", "eps")

    def __init__(self, shape: tuple[int, ...], lr: float) -> None:
        self.m = np.zeros(shape)
        self.v = np.zeros(shape)
        self.t = 0
        self.lr = lr
        self.beta1 = 0.9
        self.beta2 = 0.999
        self.eps = 1e-8

    def update(self, param: np.ndarray, grad: np.ndarray) -> None:
        self.t += 1
        self.m = self.beta1 * self.m + (1.0 - self.beta1) * grad
        self.v = self.beta2 * self.v + (1.0 - self.beta2) * grad**2
        m_hat = self.m / (1.0 - self.beta1**self.t)
        v_hat = self.v / (1.0 - self.beta2**self.t)
        param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class QNetwork:
    """Two-layer MLP Q-function approximator.

    Parameters
    ----------
    in_dim, out_dim:
        State and action-space dimensionalities.
    hidden:
        Hidden units (paper default: 25).
    lr:
        Adam learning rate (paper default: 0.01).
    seed:
        Weight-initialization seed.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        hidden: int = 25,
        lr: float = 0.01,
        seed: int = 0,
    ) -> None:
        if in_dim < 1 or out_dim < 1 or hidden < 1:
            raise ValueError("network dimensions must be positive")
        rng = np.random.default_rng(seed)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.hidden = hidden
        scale1 = np.sqrt(2.0 / (in_dim + hidden))
        scale2 = np.sqrt(2.0 / (hidden + out_dim))
        self.w1 = rng.normal(0.0, scale1, size=(in_dim, hidden))
        self.b1 = np.zeros(hidden)
        self.gamma = np.ones(hidden)  # batch-norm scale
        self.beta = np.zeros(hidden)  # batch-norm shift
        self.w2 = rng.normal(0.0, scale2, size=(hidden, out_dim))
        self.b2 = np.zeros(out_dim)
        self.running_mean = np.zeros(hidden)
        self.running_var = np.ones(hidden)
        self._optimizers = {
            name: _Adam(getattr(self, name).shape, lr)
            for name in ("w1", "b1", "gamma", "beta", "w2", "b2")
        }

    # ----------------------------------------------------------------- forward
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Q-values for a ``(B, in_dim)`` batch (inference mode)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        z1 = x @ self.w1 + self.b1
        z1_hat = (z1 - self.running_mean) / np.sqrt(self.running_var + _BN_EPS)
        h = np.tanh(self.gamma * z1_hat + self.beta)
        return h @ self.w2 + self.b2

    def _forward_train(self, x: np.ndarray) -> dict:
        z1 = x @ self.w1 + self.b1
        if len(x) > 1:
            mean = z1.mean(axis=0)
            var = z1.var(axis=0)
            self.running_mean = (
                _BN_MOMENTUM * self.running_mean + (1.0 - _BN_MOMENTUM) * mean
            )
            self.running_var = (
                _BN_MOMENTUM * self.running_var + (1.0 - _BN_MOMENTUM) * var
            )
        else:
            # Single-sample batches fall back to the running statistics.
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + _BN_EPS)
        z1_hat = (z1 - mean) * inv_std
        a = self.gamma * z1_hat + self.beta
        h = np.tanh(a)
        q = h @ self.w2 + self.b2
        return {
            "x": x,
            "z1": z1,
            "z1_hat": z1_hat,
            "inv_std": inv_std,
            "h": h,
            "q": q,
            "batched": len(x) > 1,
        }

    # ---------------------------------------------------------------- training
    def train_step(
        self, states: np.ndarray, actions: np.ndarray, targets: np.ndarray
    ) -> float:
        """One Adam step on the TD regression loss; returns the batch MSE.

        Only the Q-values of the given ``actions`` receive gradient, the
        standard DQN objective ``(Q(s, a) - y)^2``.
        """
        states = np.atleast_2d(np.asarray(states, dtype=float))
        actions = np.asarray(actions, dtype=int)
        targets = np.asarray(targets, dtype=float)
        batch = len(states)
        cache = self._forward_train(states)
        q = cache["q"]
        picked = q[np.arange(batch), actions]
        error = picked - targets
        loss = float(np.mean(error**2))

        dq = np.zeros_like(q)
        dq[np.arange(batch), actions] = 2.0 * error / batch
        self._backward(cache, dq)
        return loss

    def _backward(self, cache: dict, dq: np.ndarray) -> None:
        """Backpropagate a gradient at the output layer and apply Adam.

        ``dq`` is ``dLoss/dOutput`` for the batch of :meth:`_forward_train`'s
        ``cache``. Shared by the TD regression loss and the policy-gradient
        loss of :mod:`repro.rl.policy_gradient`.
        """
        batch = len(cache["x"])
        h = cache["h"]
        dw2 = h.T @ dq
        db2 = dq.sum(axis=0)
        dh = dq @ self.w2.T
        da = dh * (1.0 - h**2)
        dgamma = (da * cache["z1_hat"]).sum(axis=0)
        dbeta = da.sum(axis=0)
        dz1_hat = da * self.gamma
        if cache["batched"]:
            # Full batch-norm backward pass.
            inv_std = cache["inv_std"]
            z1_hat = cache["z1_hat"]
            dz1 = (
                inv_std
                / batch
                * (
                    batch * dz1_hat
                    - dz1_hat.sum(axis=0)
                    - z1_hat * (dz1_hat * z1_hat).sum(axis=0)
                )
            )
        else:
            dz1 = dz1_hat * cache["inv_std"]
        dw1 = cache["x"].T @ dz1
        db1 = dz1.sum(axis=0)

        for name, grad in (
            ("w1", dw1),
            ("b1", db1),
            ("gamma", dgamma),
            ("beta", dbeta),
            ("w2", dw2),
            ("b2", db2),
        ):
            self._optimizers[name].update(getattr(self, name), grad)

    # -------------------------------------------------------------- parameters
    _PARAM_NAMES = ("w1", "b1", "gamma", "beta", "w2", "b2",
                    "running_mean", "running_var")

    def get_parameters(self) -> dict[str, np.ndarray]:
        """A deep copy of all parameters and batch-norm statistics."""
        return {name: getattr(self, name).copy() for name in self._PARAM_NAMES}

    def set_parameters(self, params: dict[str, np.ndarray]) -> None:
        for name in self._PARAM_NAMES:
            setattr(self, name, np.array(params[name], dtype=float))

    def copy_from(self, other: "QNetwork") -> None:
        """Copy weights from another network (target-network sync)."""
        self.set_parameters(other.get_parameters())
