"""Deep Q-learning with replay memory, target network, and action masking."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rl.networks import QNetwork
from repro.rl.replay import ReplayMemory, Transition


@dataclass(frozen=True, slots=True)
class DQNConfig:
    """Hyper-parameters (defaults follow the paper, Section V-A)."""

    hidden: int = 25
    lr: float = 0.01
    gamma: float = 0.99
    epsilon_start: float = 1.0
    epsilon_min: float = 0.1
    epsilon_decay: float = 0.99
    replay_capacity: int = 2000
    batch_size: int = 32
    target_sync_every: int = 100
    learn_start: int = 64  # minimum buffered transitions before learning
    #: Use Double DQN targets (van Hasselt et al., 2016): the online network
    #: selects the next action, the target network evaluates it. Reduces the
    #: max-operator over-estimation bias of vanilla DQN.
    double_dqn: bool = False


class DQNAgent:
    """One DQN agent with a state-dependent valid-action mask.

    Parameters
    ----------
    state_dim, n_actions:
        Dimensions of the MDP.
    config:
        Hyper-parameters.
    seed:
        Seed for weight init and exploration.
    """

    def __init__(
        self,
        state_dim: int,
        n_actions: int,
        config: DQNConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config or DQNConfig()
        self.state_dim = state_dim
        self.n_actions = n_actions
        self.q_net = QNetwork(
            state_dim, n_actions, self.config.hidden, self.config.lr, seed=seed
        )
        self.target_net = QNetwork(
            state_dim, n_actions, self.config.hidden, self.config.lr, seed=seed + 1
        )
        self.target_net.copy_from(self.q_net)
        self.memory = ReplayMemory(self.config.replay_capacity)
        self.epsilon = self.config.epsilon_start
        self._learn_steps = 0
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ acting
    def act(
        self,
        state: np.ndarray,
        mask: np.ndarray | None = None,
        greedy: bool = False,
    ) -> int:
        """ε-greedy (or greedy) action restricted to the valid mask."""
        mask = self._full_mask() if mask is None else np.asarray(mask, dtype=bool)
        valid = np.flatnonzero(mask)
        if len(valid) == 0:
            raise ValueError("no valid action available")
        if not greedy and self._rng.random() < self.epsilon:
            return int(self._rng.choice(valid))
        q = self.q_net.predict(state)[0]
        q_masked = np.where(mask, q, -np.inf)
        return int(np.argmax(q_masked))

    def _full_mask(self) -> np.ndarray:
        return np.ones(self.n_actions, dtype=bool)

    # ---------------------------------------------------------------- learning
    def remember(self, transition: Transition) -> None:
        self.memory.push(transition)

    def learn(self) -> float | None:
        """One replay mini-batch update; returns the loss or None if deferred."""
        if len(self.memory) < max(self.config.learn_start, self.config.batch_size):
            return None
        batch = self.memory.sample(self.config.batch_size, self._rng)
        states = np.stack([t.state for t in batch])
        actions = np.array([t.action for t in batch], dtype=int)
        rewards = np.array([t.reward for t in batch])
        next_states = np.stack([t.next_state for t in batch])
        dones = np.array([t.done for t in batch], dtype=bool)
        masks = np.stack([t.next_mask for t in batch])

        target_q = self.target_net.predict(next_states)
        if self.config.double_dqn:
            # Double DQN: the online net picks the action, the target net
            # scores it.
            online_q = np.where(masks, self.q_net.predict(next_states), -np.inf)
            best_actions = online_q.argmax(axis=1)
            best_next = target_q[np.arange(len(batch)), best_actions]
            best_next = np.where(masks.any(axis=1), best_next, -np.inf)
        else:
            best_next = np.where(masks, target_q, -np.inf).max(axis=1)
        # States whose mask is all-invalid behave as terminal.
        best_next = np.where(np.isfinite(best_next), best_next, 0.0)
        targets = rewards + np.where(dones, 0.0, self.config.gamma * best_next)

        loss = self.q_net.train_step(states, actions, targets)
        self._learn_steps += 1
        if self._learn_steps % self.config.target_sync_every == 0:
            self.target_net.copy_from(self.q_net)
        return loss

    def decay_epsilon(self) -> None:
        """Multiplicative ε decay down to the configured minimum."""
        self.epsilon = max(
            self.config.epsilon_min, self.epsilon * self.config.epsilon_decay
        )

    # ------------------------------------------------------------- persistence
    def get_parameters(self) -> dict:
        return self.q_net.get_parameters()

    def set_parameters(self, params: dict) -> None:
        self.q_net.set_parameters(params)
        self.target_net.copy_from(self.q_net)
