"""Experience replay memory (Mnih et al., 2013).

Transitions carry an explicit *valid-action mask* for the next state because
both agents have state-dependent action spaces: Agent-Cube may only descend
into non-empty children, and Agent-Point may only pick one of the candidates
actually present in the cube. The Bellman backup maxes over valid actions
only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class Transition:
    """One (s, a, r, s', done) tuple with the next state's action mask.

    ``mask`` is the valid-action mask of the *current* state ``s``. DQN does
    not need it (only the Bellman backup over ``s'`` is masked), but the
    policy-gradient learner normalizes its softmax over valid actions only;
    it defaults to None for callers that never feed a policy-gradient agent.
    """

    state: np.ndarray
    action: int
    reward: float
    next_state: np.ndarray
    next_mask: np.ndarray  # bool, True where the action is valid in s'
    done: bool
    mask: np.ndarray | None = None  # bool, True where valid in s


class ReplayMemory:
    """A bounded FIFO buffer of transitions with uniform sampling."""

    def __init__(self, capacity: int = 2000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buffer: list[Transition] = []
        self._next = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def push(self, transition: Transition) -> None:
        if len(self._buffer) < self.capacity:
            self._buffer.append(transition)
        else:
            self._buffer[self._next] = transition
        self._next = (self._next + 1) % self.capacity

    def sample(self, batch_size: int, rng: np.random.Generator) -> list[Transition]:
        """Uniform sample without replacement (capped at the buffer size)."""
        batch_size = min(batch_size, len(self._buffer))
        indices = rng.choice(len(self._buffer), size=batch_size, replace=False)
        return [self._buffer[i] for i in indices]

    def clear(self) -> None:
        self._buffer.clear()
        self._next = 0
