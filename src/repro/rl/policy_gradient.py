"""REINFORCE (Monte-Carlo policy gradient) as a drop-in learner.

The paper uses DQN but notes that "other RL algorithms such as policy
gradient can also be used for continuous state MDPs" (Section IV-C). This
module implements that alternative: a softmax policy over the same two-layer
network, trained with REINFORCE and a running-mean reward baseline.

:class:`REINFORCEAgent` implements the same protocol as
:class:`~repro.rl.dqn.DQNAgent` (``act`` / ``remember`` / ``learn`` /
``decay_epsilon`` / parameter accessors), so the shared episode runner in
:mod:`repro.core.rollout` and :class:`repro.core.RL4QDTS` drive it unchanged
— select ``RL4QDTSConfig(learner="reinforce")``.

RL4QDTS's reward structure suits REINFORCE naturally: the shared Δ-window
reward (Eq. 10) *is* the return credited to every transition of the window,
so no bootstrapping is required. Each ``learn()`` call consumes the buffered
window, takes one policy-gradient step, and clears the buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rl.networks import QNetwork
from repro.rl.replay import Transition


@dataclass(frozen=True, slots=True)
class REINFORCEConfig:
    """Hyper-parameters of the policy-gradient learner."""

    hidden: int = 25
    lr: float = 0.01
    #: Exponential decay factor of the running-mean reward baseline.
    baseline_momentum: float = 0.9
    #: Entropy bonus weight; a small positive value delays premature
    #: determinism on the tiny action spaces of the two agents.
    entropy_weight: float = 0.01
    #: Minimum buffered transitions before a policy step is taken.
    min_batch: int = 8


def masked_softmax(logits: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Softmax over valid actions only; invalid entries get probability 0."""
    z = np.where(mask, logits, -np.inf)
    z = z - z.max(axis=-1, keepdims=True)
    exp = np.exp(z, where=np.isfinite(z), out=np.zeros_like(z))
    total = exp.sum(axis=-1, keepdims=True)
    return exp / np.maximum(total, 1e-300)


class REINFORCEAgent:
    """Softmax-policy agent trained with REINFORCE plus a reward baseline.

    Parameters
    ----------
    state_dim, n_actions:
        Dimensions of the MDP.
    config:
        Hyper-parameters; :class:`~repro.rl.dqn.DQNConfig` instances are
        also accepted (the shared fields ``hidden`` / ``lr`` are used) so
        that :class:`repro.core.RL4QDTS` can pass one config object to
        either learner.
    seed:
        Seed for weight init and action sampling.
    """

    def __init__(
        self,
        state_dim: int,
        n_actions: int,
        config: REINFORCEConfig | object | None = None,
        seed: int = 0,
    ) -> None:
        if config is None:
            config = REINFORCEConfig()
        elif not isinstance(config, REINFORCEConfig):
            config = REINFORCEConfig(
                hidden=getattr(config, "hidden", 25),
                lr=getattr(config, "lr", 0.01),
            )
        self.config = config
        self.state_dim = state_dim
        self.n_actions = n_actions
        self.policy_net = QNetwork(
            state_dim, n_actions, config.hidden, config.lr, seed=seed
        )
        self._baseline = 0.0
        self._baseline_initialized = False
        self._buffer: list[Transition] = []
        self._rng = np.random.default_rng(seed)
        #: Mirrors DQNAgent's attribute so diagnostics can read it; the
        #: stochastic policy explores by itself, so this stays at zero.
        self.epsilon = 0.0

    # ------------------------------------------------------------------ acting
    def act(
        self,
        state: np.ndarray,
        mask: np.ndarray | None = None,
        greedy: bool = False,
    ) -> int:
        """Sample from (or argmax over) the masked softmax policy."""
        mask = (
            np.ones(self.n_actions, dtype=bool)
            if mask is None
            else np.asarray(mask, dtype=bool)
        )
        if not mask.any():
            raise ValueError("no valid action available")
        logits = self.policy_net.predict(state)[0]
        probs = masked_softmax(logits, mask)
        if greedy:
            return int(np.argmax(probs))
        return int(self._rng.choice(self.n_actions, p=probs))

    # ---------------------------------------------------------------- learning
    def remember(self, transition: Transition) -> None:
        self._buffer.append(transition)

    def learn(self) -> float | None:
        """One policy-gradient step over the buffered window; returns the loss.

        Returns None (and keeps buffering) below ``config.min_batch``
        transitions. The window reward of each transition is its Monte-Carlo
        return; the advantage subtracts a running-mean baseline.
        """
        if len(self._buffer) < self.config.min_batch:
            return None
        batch = self._buffer
        self._buffer = []

        states = np.stack([t.state for t in batch])
        actions = np.array([t.action for t in batch], dtype=int)
        rewards = np.array([t.reward for t in batch], dtype=float)
        masks = np.stack(
            [
                t.mask if t.mask is not None else np.ones(self.n_actions, bool)
                for t in batch
            ]
        )

        mean_reward = float(rewards.mean())
        if not self._baseline_initialized:
            self._baseline = mean_reward
            self._baseline_initialized = True
        else:
            m = self.config.baseline_momentum
            self._baseline = m * self._baseline + (1.0 - m) * mean_reward
        advantages = rewards - self._baseline

        cache = self.policy_net._forward_train(states)
        logits = cache["q"]
        probs = masked_softmax(logits, masks)
        n = len(batch)
        one_hot = np.zeros_like(probs)
        one_hot[np.arange(n), actions] = 1.0

        # d/dlogits of -advantage * log pi(a|s) = advantage * (pi - onehot),
        # plus the entropy bonus gradient, both restricted to valid actions.
        d_logits = advantages[:, None] * (probs - one_hot)
        if self.config.entropy_weight > 0.0:
            log_probs = np.log(np.maximum(probs, 1e-12))
            entropy_grad = probs * (
                log_probs + 1.0 - (probs * log_probs).sum(axis=1, keepdims=True)
            )
            d_logits += self.config.entropy_weight * entropy_grad
        d_logits = np.where(masks, d_logits, 0.0) / n
        self.policy_net._backward(cache, d_logits)

        picked = np.log(np.maximum(probs[np.arange(n), actions], 1e-12))
        return float(-(advantages * picked).mean())

    def decay_epsilon(self) -> None:
        """No-op: the stochastic policy handles its own exploration."""

    # ------------------------------------------------------------- persistence
    def get_parameters(self) -> dict:
        return self.policy_net.get_parameters()

    def set_parameters(self, params: dict) -> None:
        self.policy_net.set_parameters(params)
