"""Query-accuracy quality measures (paper, Eq. 3).

Results on the original database are the ground truth ``Ro``; results on the
simplified database are the prediction ``Rs``. Quality is the F1-score of
``Rs`` against ``Ro``. For kNN queries (``|Ro| = |Rs| = k``) precision,
recall, and F1 coincide. Clustering quality is the pair-counting F1 over the
trajectory pairs that share a cluster.
"""

from __future__ import annotations

from typing import Iterable


def precision_recall_f1(
    truth: set, predicted: set
) -> tuple[float, float, float]:
    """``(precision, recall, F1)`` of ``predicted`` against ``truth``.

    Edge cases follow the usual convention: two empty sets agree perfectly
    (all three scores 1); one-sided emptiness scores 0.
    """
    if not truth and not predicted:
        return 1.0, 1.0, 1.0
    overlap = len(truth & predicted)
    precision = overlap / len(predicted) if predicted else 0.0
    recall = overlap / len(truth) if truth else 0.0
    if precision + recall == 0.0:
        return precision, recall, 0.0
    return precision, recall, 2.0 * precision * recall / (precision + recall)


def f1_score(truth: set, predicted: set) -> float:
    """F1 of ``predicted`` against ``truth`` (Eq. 3)."""
    return precision_recall_f1(truth, predicted)[2]


def mean_f1(truths: Iterable[set], predictions: Iterable[set]) -> float:
    """Average F1 over a workload of (truth, prediction) result pairs."""
    scores = [f1_score(t, p) for t, p in zip(truths, predictions, strict=True)]
    if not scores:
        raise ValueError("empty workload")
    return sum(scores) / len(scores)


def clustering_pairs(clusters: Iterable[Iterable[int]]) -> set[frozenset[int]]:
    """Unordered id pairs co-appearing in at least one cluster."""
    pairs: set[frozenset[int]] = set()
    for members in clusters:
        ids = sorted(set(members))
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                pairs.add(frozenset((a, b)))
    return pairs


def clustering_f1(
    truth_clusters: Iterable[Iterable[int]],
    predicted_clusters: Iterable[Iterable[int]],
) -> float:
    """Pair-counting F1 between two clusterings (paper, Section III-B)."""
    return f1_score(
        clustering_pairs(truth_clusters), clustering_pairs(predicted_clusters)
    )


# --------------------------------------------------------------------------
# Additional measures beyond the paper's F1 (used by extension benchmarks to
# confirm that conclusions are not an artifact of the F1 choice).
# --------------------------------------------------------------------------


def jaccard(truth: set, predicted: set) -> float:
    """Intersection-over-union of two result sets (1 when both empty)."""
    if not truth and not predicted:
        return 1.0
    return len(truth & predicted) / len(truth | predicted)


def kendall_tau(truth_ranking: list, predicted_ranking: list) -> float:
    """Kendall's tau-a between two rankings of the same item set.

    Rankings are ordered id lists (e.g. kNN results by increasing distance).
    Items present in only one ranking are ignored; ties cannot occur in a
    ranking. Returns a value in ``[-1, 1]``; 1 for identical orders, -1 for
    reversed. Degenerate overlaps (< 2 shared items) score 0.
    """
    common = set(truth_ranking) & set(predicted_ranking)
    if len(common) < 2:
        return 0.0
    pos_a = {item: i for i, item in enumerate(truth_ranking) if item in common}
    pos_b = {
        item: i for i, item in enumerate(predicted_ranking) if item in common
    }
    items = sorted(common, key=pos_a.get)
    concordant = discordant = 0
    for i, x in enumerate(items):
        for y in items[i + 1 :]:
            if pos_b[x] < pos_b[y]:
                concordant += 1
            else:
                discordant += 1
    total = concordant + discordant
    return (concordant - discordant) / total


def _labels_from_clusters(
    clusters: Iterable[Iterable[int]],
) -> dict[int, int]:
    labels: dict[int, int] = {}
    for label, members in enumerate(clusters):
        for member in members:
            labels[member] = label
    return labels


def adjusted_rand_index(
    truth_clusters: Iterable[Iterable[int]],
    predicted_clusters: Iterable[Iterable[int]],
) -> float:
    """Adjusted Rand index between two clusterings (chance-corrected).

    Items appearing in both clusterings are compared; each item's label is
    its last containing cluster. Returns 1 for identical partitions, ~0 for
    independent ones. Degenerate cases (fewer than 2 shared items, or both
    partitions trivial) return 1.0 when the partitions agree and 0.0
    otherwise.
    """
    truth_labels = _labels_from_clusters(truth_clusters)
    pred_labels = _labels_from_clusters(predicted_clusters)
    items = sorted(set(truth_labels) & set(pred_labels))
    n = len(items)
    if n < 2:
        return 1.0
    # Contingency table.
    table: dict[tuple[int, int], int] = {}
    for item in items:
        key = (truth_labels[item], pred_labels[item])
        table[key] = table.get(key, 0) + 1
    a_sums: dict[int, int] = {}
    b_sums: dict[int, int] = {}
    for (a, b), count in table.items():
        a_sums[a] = a_sums.get(a, 0) + count
        b_sums[b] = b_sums.get(b, 0) + count

    def comb2(x: int) -> float:
        return x * (x - 1) / 2.0

    index = sum(comb2(c) for c in table.values())
    sum_a = sum(comb2(c) for c in a_sums.values())
    sum_b = sum(comb2(c) for c in b_sums.values())
    expected = sum_a * sum_b / comb2(n)
    max_index = 0.5 * (sum_a + sum_b)
    if max_index == expected:
        return 1.0 if index == expected else 0.0
    return (index - expected) / (max_index - expected)
