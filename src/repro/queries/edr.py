"""Edit Distance on Real sequence (EDR; Chen et al., SIGMOD 2005).

EDR counts the minimum number of insert / delete / replace edits needed to
align two point sequences, where two points *match* (zero cost) when both
coordinates are within a threshold ``eps``. It is the paper's non-learning
kNN similarity measure.
"""

from __future__ import annotations

import numpy as np

from repro.data.trajectory import Trajectory


def edr_distance(
    a: Trajectory | np.ndarray,
    b: Trajectory | np.ndarray,
    eps: float,
) -> float:
    """EDR between two trajectories (lower means more similar).

    Parameters
    ----------
    a, b:
        Trajectories or ``(n, >=2)`` arrays; only x and y are compared.
    eps:
        Matching threshold: points match when ``|dx| <= eps and |dy| <= eps``
        (the original paper's per-dimension definition).
    """
    pa = a.xy if isinstance(a, Trajectory) else np.asarray(a, dtype=float)[:, :2]
    pb = b.xy if isinstance(b, Trajectory) else np.asarray(b, dtype=float)[:, :2]
    n, m = len(pa), len(pb)
    if n == 0:
        return float(m)
    if m == 0:
        return float(n)
    # Vectorized per-pair match table: (n, m) booleans.
    match = (
        (np.abs(pa[:, None, 0] - pb[None, :, 0]) <= eps)
        & (np.abs(pa[:, None, 1] - pb[None, :, 1]) <= eps)
    )
    # Rolling dynamic program over rows (subcost 0 on match else 1).
    # current[j] = min(best[j-1], current[j-1] + 1) with best = min(diag-sub,
    # delete). The left-to-right dependency unrolls to a prefix minimum:
    # current[j] = j + min(i, min_{k<=j} (best[k-1] - k)), fully vectorized.
    js = np.arange(1, m + 1, dtype=float)
    prev = np.arange(m + 1, dtype=float)
    for i in range(1, n + 1):
        sub = prev[:-1] + np.where(match[i - 1], 0.0, 1.0)
        best = np.minimum(sub, prev[1:] + 1.0)
        running = np.minimum.accumulate(best - js)
        current = np.empty(m + 1)
        current[0] = i
        current[1:] = js + np.minimum(running, float(i))
        prev = current
    return float(prev[m])


def edr_similarity_matrix(
    trajectories: list[Trajectory], eps: float
) -> np.ndarray:
    """Symmetric pairwise EDR matrix for a list of trajectories."""
    n = len(trajectories)
    dist = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = edr_distance(trajectories[i], trajectories[j], eps)
            dist[i, j] = dist[j, i] = d
    return dist
