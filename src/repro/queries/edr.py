"""Edit Distance on Real sequence (EDR; Chen et al., SIGMOD 2005).

EDR counts the minimum number of insert / delete / replace edits needed to
align two point sequences, where two points *match* (zero cost) when both
coordinates are within a threshold ``eps``. It is the paper's non-learning
kNN similarity measure.
"""

from __future__ import annotations

import numpy as np

from repro.data.trajectory import Trajectory
from repro.queries import _kernels

#: Elements per padded DP scratch buffer (pairs x padded length) in
#: :func:`edr_distances_pairs`; at ~10 float64 buffers this caps the batch's
#: working set at roughly 100 MB while leaving typical kNN batches unsplit.
_MAX_DP_ELEMENTS = 1 << 20


def edr_distance(
    a: Trajectory | np.ndarray,
    b: Trajectory | np.ndarray,
    eps: float,
) -> float:
    """EDR between two trajectories (lower means more similar).

    Parameters
    ----------
    a, b:
        Trajectories or ``(n, >=2)`` arrays; only x and y are compared.
    eps:
        Matching threshold: points match when ``|dx| <= eps and |dy| <= eps``
        (the original paper's per-dimension definition).
    """
    pa = a.xy if isinstance(a, Trajectory) else np.asarray(a, dtype=float)[:, :2]
    pb = b.xy if isinstance(b, Trajectory) else np.asarray(b, dtype=float)[:, :2]
    n, m = len(pa), len(pb)
    if n == 0:
        return float(m)
    if m == 0:
        return float(n)
    # Vectorized per-pair match table: (n, m) booleans.
    match = (
        (np.abs(pa[:, None, 0] - pb[None, :, 0]) <= eps)
        & (np.abs(pa[:, None, 1] - pb[None, :, 1]) <= eps)
    )
    # Rolling dynamic program over rows (subcost 0 on match else 1).
    # current[j] = min(best[j-1], current[j-1] + 1) with best = min(diag-sub,
    # delete). The left-to-right dependency unrolls to a prefix minimum:
    # current[j] = j + min(i, min_{k<=j} (best[k-1] - k)), fully vectorized.
    js = np.arange(1, m + 1, dtype=float)
    prev = np.arange(m + 1, dtype=float)
    for i in range(1, n + 1):
        sub = prev[:-1] + np.where(match[i - 1], 0.0, 1.0)
        best = np.minimum(sub, prev[1:] + 1.0)
        running = np.minimum.accumulate(best - js)
        current = np.empty(m + 1)
        current[0] = i
        current[1:] = js + np.minimum(running, float(i))
        prev = current
    return float(prev[m])


def _as_xy(t: Trajectory | np.ndarray) -> np.ndarray:
    return t.xy if isinstance(t, Trajectory) else np.asarray(t, dtype=float)[:, :2]


def edr_distances_pairs(
    a_list: list[Trajectory | np.ndarray],
    b_list: list[Trajectory | np.ndarray],
    eps: float,
) -> np.ndarray:
    """EDR for many ``(a, b)`` pairs, batched with the pair axis vectorized.

    Equivalent to ``[edr_distance(a, b, eps) for a, b in zip(a_list,
    b_list)]`` but runs ONE rolling dynamic program over all pairs at once:
    both sides are padded to common lengths with sentinel coordinates that
    can never match, and since the prefix-minimum recurrence only flows left
    to right (and pair ``p``'s distance is read off the row ``len(a_p)`` /
    column ``len(b_p)`` the moment the program reaches it), padded rows and
    columns never influence any recorded value. The Python-level loop
    therefore runs ``max(len(a))`` times instead of ``sum(len(a))`` — the
    difference between per-candidate and batched kNN scoring. EDR values
    are integer-valued, so the batched arithmetic is exactly the
    reference's.
    """
    if len(a_list) != len(b_list):
        raise ValueError("a_list and b_list must have the same length")
    a_mats = [_as_xy(a) for a in a_list]
    b_mats = [_as_xy(b) for b in b_list]
    n_pairs = len(a_mats)
    if n_pairs == 0:
        return np.empty(0)
    # Bound the padded scratch buffers (pairs x max length, ~10 of them):
    # chunk the pair axis so one unusually long sequence cannot inflate
    # every pair's row across an arbitrarily large batch.
    longest = max(
        max(len(m) for m in a_mats), max(len(m) for m in b_mats), 1
    )
    chunk = max(1, _MAX_DP_ELEMENTS // longest)
    if chunk < n_pairs:
        return np.concatenate(
            [
                edr_distances_pairs(
                    a_mats[start : start + chunk],
                    b_mats[start : start + chunk],
                    eps,
                )
                for start in range(0, n_pairs, chunk)
            ]
        )
    n_lens = np.array([len(m) for m in a_mats], dtype=np.int64)
    m_lens = np.array([len(m) for m in b_mats], dtype=np.int64)
    out = np.empty(n_pairs)
    out[n_lens == 0] = m_lens[n_lens == 0].astype(float)
    n_max = int(n_lens.max())
    m_max = int(m_lens.max())
    if n_max == 0:
        return out
    if m_max == 0:
        return np.where(n_lens == 0, out, n_lens.astype(float))
    # Padded coordinates: +inf on the a side, -inf on the b side, so any
    # padded comparison has |dx| = inf > eps (never a match, never a NaN).
    ax = np.full((n_pairs, n_max), np.inf)
    ay = np.full((n_pairs, n_max), np.inf)
    bx = np.full((n_pairs, m_max), -np.inf)
    by = np.full((n_pairs, m_max), -np.inf)
    for p, mat in enumerate(a_mats):
        ax[p, : len(mat)] = mat[:, 0]
        ay[p, : len(mat)] = mat[:, 1]
    for p, mat in enumerate(b_mats):
        bx[p, : len(mat)] = mat[:, 0]
        by[p, : len(mat)] = mat[:, 1]
    # Compiled fast path (repro.queries._kernels): the per-pair DP over the
    # same padded rows. EDR is integer-valued, so it is bit-identical to
    # the vectorized recurrence below; None means the numpy backend is
    # active and we fall through.
    compiled = _kernels.edr_pairs(ax, ay, bx, by, n_lens, m_lens, eps)
    if compiled is not None:
        return compiled
    js = np.arange(1, m_max + 1, dtype=float)
    prev = np.broadcast_to(
        np.arange(m_max + 1, dtype=float), (n_pairs, m_max + 1)
    ).copy()
    current = np.empty_like(prev)
    # The loop body allocates nothing: every op writes into one of these
    # scratch buffers (the loop runs n_max times and allocation overhead,
    # not arithmetic, dominates at kNN scales).
    gap = np.empty((n_pairs, m_max))
    gap_y = np.empty((n_pairs, m_max))
    miss = np.empty((n_pairs, m_max), dtype=bool)
    work = np.empty((n_pairs, m_max))
    delete = np.empty((n_pairs, m_max))
    finish_at: list[list[int]] = [[] for _ in range(n_max + 1)]
    for p, n in enumerate(n_lens):
        if n > 0:
            finish_at[int(n)].append(p)
    for i in range(1, n_max + 1):
        # Non-match costs of row i-1 against every b column, built on the
        # fly — keeping the full (pairs, n, m) table is needless memory
        # traffic for one visit per cell. max(|dx|, |dy|) > eps is the
        # per-dimension non-match test.
        np.abs(np.subtract(ax[:, i - 1 : i], bx, out=gap), out=gap)
        np.abs(np.subtract(ay[:, i - 1 : i], by, out=gap_y), out=gap_y)
        np.maximum(gap, gap_y, out=gap)
        np.greater(gap, eps, out=miss)
        np.add(prev[:, :-1], miss, out=work)
        np.add(prev[:, 1:], 1.0, out=delete)
        np.minimum(work, delete, out=work)
        np.subtract(work, js, out=work)
        np.minimum.accumulate(work, axis=1, out=work)
        np.minimum(work, float(i), out=work)
        current[:, 0] = i
        np.add(work, js, out=current[:, 1:])
        # Pairs whose a side ends at this row are done; later iterations
        # only touch their padded rows.
        for p in finish_at[i]:
            out[p] = current[p, m_lens[p]]
        prev, current = current, prev
    return out


def edr_distances_one_to_many(
    query: Trajectory | np.ndarray,
    candidates: list[Trajectory | np.ndarray],
    eps: float,
) -> np.ndarray:
    """EDR from one query to many candidates, batched over the candidates.

    Equivalent to ``[edr_distance(query, c, eps) for c in candidates]``;
    a convenience wrapper over :func:`edr_distances_pairs`.
    """
    pa = _as_xy(query)
    return edr_distances_pairs([pa] * len(candidates), candidates, eps)


def edr_similarity_matrix(
    trajectories: list[Trajectory], eps: float
) -> np.ndarray:
    """Symmetric pairwise EDR matrix for a list of trajectories."""
    n = len(trajectories)
    dist = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = edr_distance(trajectories[i], trajectories[j], eps)
            dist[i, j] = dist[j, i] = d
    return dist
