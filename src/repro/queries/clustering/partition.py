"""MDL-based approximate trajectory partitioning (TRACLUS phase 1).

A trajectory is reduced to *characteristic points*: the subsequence whose
connecting segments best trade off conciseness (``L(H)``: the description
length of the segments kept) against preciseness (``L(D|H)``: how far the
kept segments stray from the original movement). The approximate algorithm
scans forward, extending the current characteristic segment while
``MDL_par <= MDL_nopar`` and cutting one point earlier as soon as the
partitioned encoding becomes more expensive (Lee et al., SIGMOD'07, Alg. 2).
"""

from __future__ import annotations

import numpy as np

from repro.data.trajectory import Trajectory

_EPS = 1e-12


def _log2_safe(value: float) -> float:
    """``log2(value)`` clamped below at 0 (distances under 1 unit cost nothing)."""
    return float(np.log2(max(value, 1.0)))


def _encoding_cost(xy: np.ndarray, start: int, end: int) -> float:
    """``L(D|H)``: per-segment log-costs against the candidate anchor.

    Following the TRACLUS formulation, every original segment contributes
    ``log2(d_perp) + log2(d_theta)`` against the characteristic segment
    ``xy[start] -> xy[end]`` (distances clamped below at 1 unit so perfectly
    matching segments cost nothing).
    """
    anchor = xy[end] - xy[start]
    anchor_len = float(np.linalg.norm(anchor))
    total = 0.0
    for i in range(start, end):
        seg = xy[i + 1] - xy[i]
        seg_len = float(np.linalg.norm(seg))
        if anchor_len <= _EPS:
            total += _log2_safe(seg_len) * 2.0
            continue
        # Perpendicular Lehmer-mean distance of the sub-segment's endpoints.
        d1 = _point_line_distance(xy[i], xy[start], anchor, anchor_len)
        d2 = _point_line_distance(xy[i + 1], xy[start], anchor, anchor_len)
        s = d1 + d2
        d_perp = 0.0 if s <= _EPS else (d1 * d1 + d2 * d2) / s
        d_theta = 0.0
        if seg_len > _EPS:
            cos_theta = float(seg @ anchor) / (seg_len * anchor_len)
            cos_theta = max(-1.0, min(1.0, cos_theta))
            theta = float(np.arccos(cos_theta))
            d_theta = seg_len * (np.sin(theta) if theta <= np.pi / 2 else 1.0)
        total += _log2_safe(d_perp) + _log2_safe(d_theta)
    return total


def _point_line_distance(
    point: np.ndarray, start: np.ndarray, direction: np.ndarray, length: float
) -> float:
    diff = point - start
    return abs(float(diff[0] * direction[1] - diff[1] * direction[0])) / length


def _mdl_par(xy: np.ndarray, start: int, end: int) -> float:
    """MDL cost of encoding ``xy[start:end+1]`` with one characteristic segment."""
    l_h = _log2_safe(float(np.linalg.norm(xy[end] - xy[start])))
    return l_h + _encoding_cost(xy, start, end)


def _mdl_nopar(xy: np.ndarray, start: int, end: int) -> float:
    """MDL cost of keeping every original segment (``L(D|H) = 0``)."""
    lengths = np.linalg.norm(np.diff(xy[start : end + 1], axis=0), axis=1)
    return float(sum(_log2_safe(l) for l in lengths))


def mdl_partition(trajectory: Trajectory) -> list[int]:
    """Indices of the characteristic points of a trajectory (incl. endpoints)."""
    xy = trajectory.xy
    n = len(xy)
    characteristic = [0]
    start = 0
    length = 1
    while start + length < n:
        current = start + length
        if _mdl_par(xy, start, current) > _mdl_nopar(xy, start, current):
            characteristic.append(current - 1 if current - 1 > start else current)
            start = characteristic[-1]
            length = 1
        else:
            length += 1
    if characteristic[-1] != n - 1:
        characteristic.append(n - 1)
    return characteristic


def characteristic_segments(
    trajectory: Trajectory,
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Characteristic segments of one trajectory.

    Returns ``(segments, spans)`` where ``segments`` is ``(m, 2, 2)`` endpoint
    pairs and ``spans`` the corresponding original index ranges.
    """
    idx = mdl_partition(trajectory)
    xy = trajectory.xy
    segments = np.stack(
        [np.stack([xy[s], xy[e]]) for s, e in zip(idx, idx[1:])]
    )
    spans = list(zip(idx, idx[1:]))
    return segments, spans
