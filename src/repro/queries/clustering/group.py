"""Density-based segment grouping (TRACLUS phase 2).

A DBSCAN pass over line segments using the three-component segment distance:
a segment with at least ``min_lns`` segments within ``eps`` is a core; cores
expand clusters transitively; border segments join the first reaching
cluster; everything else is noise (label ``-1``).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.queries.clustering.distances import segment_distance


def dbscan_segments(
    segments: np.ndarray,
    eps: float,
    min_lns: int,
) -> np.ndarray:
    """Cluster an ``(n, 2, 2)`` stack of segments; returns ``(n,)`` labels.

    Labels are 0-based cluster ids, with ``-1`` for noise.
    """
    n = len(segments)
    if n == 0:
        return np.empty(0, dtype=int)
    if eps < 0:
        raise ValueError("eps must be non-negative")
    # Precompute the full neighbourhood structure once (O(n^2) distances).
    dist = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = segment_distance(segments[i], segments[j])
            dist[i, j] = dist[j, i] = d
    neighbours = [np.flatnonzero(dist[i] <= eps) for i in range(n)]
    is_core = np.array([len(nb) >= min_lns for nb in neighbours])

    labels = np.full(n, -1, dtype=int)
    cluster_id = 0
    for seed in range(n):
        if labels[seed] != -1 or not is_core[seed]:
            continue
        labels[seed] = cluster_id
        queue = deque(neighbours[seed].tolist())
        while queue:
            j = queue.popleft()
            if labels[j] == -1:
                labels[j] = cluster_id
                if is_core[j]:
                    queue.extend(
                        k for k in neighbours[j].tolist() if labels[k] == -1
                    )
        cluster_id += 1
    return labels
