"""The TRACLUS three-component line-segment distance.

For two segments the distance combines (Lee et al., SIGMOD'07, Section 4):

* ``d_perp`` — perpendicular distance: the Lehmer mean
  ``(l1^2 + l2^2) / (l1 + l2)`` of the two projection distances of the
  shorter segment's endpoints onto the longer segment's line,
* ``d_para`` — parallel distance: the smaller of the two along-line offsets
  from the projections to the longer segment's endpoints,
* ``d_theta`` — angular distance: ``len(shorter) * sin(theta)`` for
  ``theta <= 90°`` and ``len(shorter)`` beyond.

The total is a weighted sum (all weights 1 by default, as in the paper).
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def _project_param(point: np.ndarray, start: np.ndarray, direction: np.ndarray,
                   sq_len: float) -> float:
    """Scalar position of ``point``'s projection along ``start + u * direction``."""
    if sq_len <= _EPS:
        return 0.0
    return float((point - start) @ direction / sq_len)


def segment_distance(
    seg_a: np.ndarray,
    seg_b: np.ndarray,
    w_perp: float = 1.0,
    w_para: float = 1.0,
    w_theta: float = 1.0,
) -> float:
    """TRACLUS distance between two 2D segments given as ``(2, 2)`` arrays."""
    seg_a = np.asarray(seg_a, dtype=float)
    seg_b = np.asarray(seg_b, dtype=float)
    len_a = np.linalg.norm(seg_a[1] - seg_a[0])
    len_b = np.linalg.norm(seg_b[1] - seg_b[0])
    # By convention the longer segment is L_i, the shorter L_j.
    if len_a >= len_b:
        longer, shorter = seg_a, seg_b
        longer_len = len_a
        shorter_len = len_b
    else:
        longer, shorter = seg_b, seg_a
        longer_len = len_b
        shorter_len = len_a

    start, end = longer[0], longer[1]
    direction = end - start
    sq_len = float(direction @ direction)

    u1 = _project_param(shorter[0], start, direction, sq_len)
    u2 = _project_param(shorter[1], start, direction, sq_len)
    proj1 = start + u1 * direction
    proj2 = start + u2 * direction
    l_perp1 = float(np.linalg.norm(shorter[0] - proj1))
    l_perp2 = float(np.linalg.norm(shorter[1] - proj2))
    perp_sum = l_perp1 + l_perp2
    d_perp = 0.0 if perp_sum <= _EPS else (l_perp1**2 + l_perp2**2) / perp_sum

    l_para1 = min(abs(u1), abs(u2)) * longer_len
    l_para2 = min(abs(1.0 - u1), abs(1.0 - u2)) * longer_len
    d_para = min(l_para1, l_para2)

    if longer_len <= _EPS or shorter_len <= _EPS:
        d_theta = 0.0
    else:
        cos_theta = float(
            (longer[1] - longer[0]) @ (shorter[1] - shorter[0])
        ) / (longer_len * shorter_len)
        cos_theta = max(-1.0, min(1.0, cos_theta))
        theta = float(np.arccos(cos_theta))
        if theta <= np.pi / 2:
            d_theta = shorter_len * float(np.sin(theta))
        else:
            d_theta = shorter_len

    return w_perp * d_perp + w_para * d_para + w_theta * d_theta


def segment_distance_matrix(segments: np.ndarray) -> np.ndarray:
    """Symmetric pairwise TRACLUS distances for an ``(n, 2, 2)`` segment stack."""
    n = len(segments)
    dist = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = segment_distance(segments[i], segments[j])
            dist[i, j] = dist[j, i] = d
    return dist
