"""TRACLUS orchestration: partition every trajectory, group the segments.

The clustering query of the paper runs TRACLUS on a database and measures
quality as the pair-counting F1 between the trajectory co-cluster pairs of
the original and the simplified database (Section III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.queries.clustering.group import dbscan_segments
from repro.queries.clustering.partition import characteristic_segments


@dataclass(frozen=True, slots=True)
class TraclusConfig:
    """TRACLUS parameters.

    ``eps`` is in the same units as the data (metres for the synthetic
    profiles); ``min_lns`` is the DBSCAN density threshold; clusters drawing
    segments from fewer than ``min_trajectories`` distinct trajectories are
    discarded as noise (the paper's trajectory-cardinality check).
    """

    eps: float = 500.0
    min_lns: int = 3
    min_trajectories: int = 2


@dataclass(slots=True)
class TraclusResult:
    """Output of :func:`traclus_cluster`."""

    labels: np.ndarray  # (n_segments,) cluster ids, -1 noise
    segment_owners: np.ndarray  # (n_segments,) trajectory ids
    clusters: list[set[int]] = field(default_factory=list)  # traj ids per cluster

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def trajectory_pairs(self) -> set[frozenset[int]]:
        """Unordered trajectory pairs that share at least one cluster."""
        pairs: set[frozenset[int]] = set()
        for members in self.clusters:
            ids = sorted(members)
            for i, a in enumerate(ids):
                for b in ids[i + 1 :]:
                    pairs.add(frozenset((a, b)))
        return pairs


def traclus_cluster(
    db: TrajectoryDatabase,
    config: TraclusConfig | None = None,
) -> TraclusResult:
    """Run TRACLUS on a database."""
    config = config or TraclusConfig()
    all_segments: list[np.ndarray] = []
    owners: list[int] = []
    for traj in db:
        segments, _ = characteristic_segments(traj)
        all_segments.extend(segments)
        owners.extend([traj.traj_id] * len(segments))
    segment_stack = (
        np.stack(all_segments) if all_segments else np.empty((0, 2, 2))
    )
    owner_arr = np.asarray(owners, dtype=int)
    labels = dbscan_segments(segment_stack, config.eps, config.min_lns)

    clusters: list[set[int]] = []
    for cluster_id in range(labels.max() + 1 if len(labels) else 0):
        members = set(owner_arr[labels == cluster_id].tolist())
        if len(members) >= config.min_trajectories:
            clusters.append(members)
    return TraclusResult(labels=labels, segment_owners=owner_arr, clusters=clusters)
