"""TRACLUS partition-and-group trajectory clustering (Lee et al., SIGMOD'07).

The paper's clustering query runs TRACLUS: each trajectory is partitioned
into characteristic line segments via MDL, segments are grouped with a
density-based (DBSCAN-style) pass under a three-component segment distance,
and the clustering quality measure is the pair-counting F1 over trajectories
co-appearing in a cluster.
"""

from repro.queries.clustering.distances import segment_distance
from repro.queries.clustering.partition import mdl_partition
from repro.queries.clustering.group import dbscan_segments
from repro.queries.clustering.traclus import (
    TraclusConfig,
    TraclusResult,
    traclus_cluster,
)

__all__ = [
    "segment_distance",
    "mdl_partition",
    "dbscan_segments",
    "TraclusConfig",
    "TraclusResult",
    "traclus_cluster",
]
