"""Spatio-temporal range queries.

A range query with parameters ``(qx_min, qx_max, qy_min, qy_max, qt_min,
qt_max)`` returns every trajectory containing at least one point inside the
box (paper, Section III-B). Note the semantics are point-based: a trajectory
whose *segment* crosses the box without a sampled point inside does NOT
match — which is exactly why aggressive simplification degrades range-query
recall and why QDTS is non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.bbox import BoundingBox
from repro.data.database import TrajectoryDatabase
from repro.index.grid import GridIndex


@dataclass(frozen=True, slots=True)
class RangeQuery:
    """A spatio-temporal box query."""

    box: BoundingBox

    @classmethod
    def from_bounds(
        cls,
        xmin: float,
        xmax: float,
        ymin: float,
        ymax: float,
        tmin: float,
        tmax: float,
    ) -> "RangeQuery":
        return cls(BoundingBox(xmin, xmax, ymin, ymax, tmin, tmax))

    @classmethod
    def around(
        cls,
        x: float,
        y: float,
        t: float,
        spatial_extent: float,
        temporal_extent: float,
    ) -> "RangeQuery":
        """A box centred at ``(x, y, t)`` with the given side lengths."""
        return cls(
            BoundingBox(
                x - spatial_extent / 2.0,
                x + spatial_extent / 2.0,
                y - spatial_extent / 2.0,
                y + spatial_extent / 2.0,
                t - temporal_extent / 2.0,
                t + temporal_extent / 2.0,
            )
        )

    def matches(self, trajectory) -> bool:
        """Whether the trajectory has at least one point inside the box."""
        if not self.box.intersects(trajectory.bounding_box):
            return False
        return bool(self.box.contains_points(trajectory.points).any())


def range_query(
    db: TrajectoryDatabase,
    query: RangeQuery,
    grid: GridIndex | None = None,
) -> set[int]:
    """Ids of trajectories matching ``query``; optionally grid-accelerated."""
    if grid is not None:
        candidates = grid.candidate_trajectories(query.box)
        return {tid for tid in candidates if query.matches(db[tid])}
    return {t.traj_id for t in db if query.matches(t)}


def range_query_batch(
    db: TrajectoryDatabase,
    queries: list[RangeQuery],
    grid: GridIndex | None = None,
) -> list[set[int]]:
    """Evaluate many range queries; one result set per query."""
    return [range_query(db, q, grid) for q in queries]
