"""Aggregate (heatmap / count) queries over trajectory databases.

The paper's Remarks (Section III-B) note the simplified database should
support "range query, kNN query, similarity query, clustering, and possibly
others". Density aggregates are the most common "other" in trajectory
analytics — every fleet dashboard renders a heatmap — and they stress
simplification differently from the four paper queries: dropping points in
a cell *directly* lowers its count even when the trajectory set returned by
range queries is unchanged.

Two aggregate flavours are provided:

* :func:`count_query` — point count inside a spatio-temporal box;
* :func:`density_histogram` — the spatial heatmap: per-cell point counts
  over a uniform grid.

Quality of a simplified database's aggregates is measured against the
original with :func:`histogram_similarity` (the histogram intersection, the
standard heatmap-overlap score in ``[0, 1]``).

Both aggregates execute through the database's shared batch engine
(:class:`repro.queries.engine.QueryEngine`): counts run as one CSR cell
sweep over all boxes, histograms as one vectorized binning pass over the
sorted coordinate columns, and repeated aggregation of the same database is
a memo hit. The original per-trajectory loops are kept as
:func:`count_query_scan` / :func:`density_histogram_scan` — the reference
implementations the engine paths are property-tested against.
"""

from __future__ import annotations

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.database import TrajectoryDatabase
from repro.queries.engine import QueryEngine


def count_query(
    db: TrajectoryDatabase, box: BoundingBox, engine: QueryEngine | None = None
) -> int:
    """Number of points of ``db`` inside the spatio-temporal ``box``.

    Executes through the shared batch engine (build many boxes and call
    :meth:`QueryEngine.count` directly to amortize over a workload);
    ``engine`` optionally supplies a private engine instead of the
    database's shared one.
    """
    engine = engine or QueryEngine.for_database(db)
    return int(engine.count([box])[0])


def count_query_scan(db: TrajectoryDatabase, box: BoundingBox) -> int:
    """Reference per-trajectory implementation of :func:`count_query`."""
    total = 0
    for traj in db:
        if not box.intersects(traj.bounding_box):
            continue
        total += int(box.contains_points(traj.points).sum())
    return total


def density_histogram(
    db: TrajectoryDatabase,
    grid: int = 32,
    box: BoundingBox | None = None,
    normalize: bool = False,
    engine: QueryEngine | None = None,
) -> np.ndarray:
    """Spatial point-density histogram of shape ``(grid, grid)``.

    Parameters
    ----------
    db:
        The database to rasterize.
    grid:
        Cells per spatial axis.
    box:
        Raster region; defaults to the database's bounding box. Points
        outside are ignored, which makes histograms of a simplified database
        comparable when rasterized over the *original* database's box. Only
        the spatial extent of the box is used.
    normalize:
        Scale the histogram to sum to 1 (a distribution rather than counts).
    engine:
        Optional private :class:`QueryEngine`; defaults to the database's
        shared engine (one binning pass, memoized per ``(grid, box)``).
    """
    engine = engine or QueryEngine.for_database(db)
    return engine.histogram(grid, box, normalize)


def spatial_bin_counts(
    xy: np.ndarray,
    grid: int,
    box: BoundingBox,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Bin ``(n, 2)`` spatial points into a ``(grid, grid)`` count raster.

    The canonical binning arithmetic of the density heatmap (truncation
    toward zero; the closing edge folds into the last cell; points outside
    the box's spatial extent are ignored). Shared by the reference scan and
    the sharded service's pending-delta rasterization so per-shard partial
    histograms sum to exactly the single-database raster. ``out``
    optionally supplies an accumulator to add into (and return) instead of
    allocating a fresh raster per call.
    """
    if grid < 1:
        raise ValueError("grid must be >= 1")
    xy = np.asarray(xy, dtype=float)
    sx = max(box.xmax - box.xmin, 1e-12)
    sy = max(box.ymax - box.ymin, 1e-12)
    hist = np.zeros((grid, grid)) if out is None else out
    inside = (
        (xy[:, 0] >= box.xmin)
        & (xy[:, 0] <= box.xmax)
        & (xy[:, 1] >= box.ymin)
        & (xy[:, 1] <= box.ymax)
    )
    pts = xy[inside]
    if len(pts):
        ix = np.minimum(((pts[:, 0] - box.xmin) / sx * grid).astype(int), grid - 1)
        iy = np.minimum(((pts[:, 1] - box.ymin) / sy * grid).astype(int), grid - 1)
        np.add.at(hist, (ix, iy), 1.0)
    return hist


def density_histogram_scan(
    db: TrajectoryDatabase,
    grid: int = 32,
    box: BoundingBox | None = None,
    normalize: bool = False,
) -> np.ndarray:
    """Reference per-trajectory implementation of :func:`density_histogram`."""
    if grid < 1:
        raise ValueError("grid must be >= 1")
    box = box or db.bounding_box
    hist = np.zeros((grid, grid))
    for traj in db:
        spatial_bin_counts(traj.xy, grid, box, out=hist)
    if normalize:
        total = hist.sum()
        if total > 0:
            hist /= total
    return hist


def histogram_similarity(truth: np.ndarray, predicted: np.ndarray) -> float:
    """Histogram intersection of two density rasters, in ``[0, 1]``.

    Both rasters are normalized to distributions first, so a uniformly
    down-sampled database (fewer points, same shape) scores high — it is the
    *shape* of the heatmap that analytics consumers care about. Two empty
    rasters agree perfectly.
    """
    truth = np.asarray(truth, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if truth.shape != predicted.shape:
        raise ValueError("histograms must have the same shape")
    t_sum, p_sum = truth.sum(), predicted.sum()
    if t_sum == 0 and p_sum == 0:
        return 1.0
    if t_sum == 0 or p_sum == 0:
        return 0.0
    return float(np.minimum(truth / t_sum, predicted / p_sum).sum())


def heatmap_f1(
    original: TrajectoryDatabase,
    simplified: TrajectoryDatabase,
    grid: int = 32,
) -> float:
    """Heatmap preservation score of a simplified database.

    Rasterizes both databases over the *original*'s bounding box and returns
    their histogram intersection.
    """
    box = original.bounding_box
    return histogram_similarity(
        density_histogram(original, grid, box),
        density_histogram(simplified, grid, box),
    )
