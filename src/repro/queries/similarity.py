"""Similarity (threshold) queries (paper, Section III-B).

Given a query trajectory ``Tq``, a time window ``[ts, te]``, and a distance
threshold ``delta``, the query returns every trajectory that stays within
Euclidean distance ``delta`` of ``Tq`` *at every instant of the window*
(a continuous spatio-temporal join predicate; Chen & Patel, SIGSPATIAL'09).

Positions at arbitrary instants are linearly interpolated along segments —
which is exactly where simplification bites: dropping points moves the
interpolated positions, so a trajectory that satisfied the predicate on the
original database may fail it on the simplified one (or vice versa).
"""

from __future__ import annotations

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory


def similarity_query(
    db: TrajectoryDatabase,
    query: Trajectory,
    delta: float,
    time_window: tuple[float, float] | None = None,
    n_checkpoints: int = 32,
    temporal_index=None,
) -> set[int]:
    """Ids of trajectories within ``delta`` of the query across the window.

    Parameters
    ----------
    db:
        Database to search.
    query:
        The query trajectory ``Tq``.
    delta:
        Synchronized-distance threshold.
    time_window:
        ``(ts, te)``; defaults to the query's own span. Trajectories whose
        time span does not overlap the window cannot match.
    n_checkpoints:
        The continuous predicate is checked at this many evenly spaced
        instants plus the query's own sample times inside the window.
    temporal_index:
        Optional :class:`~repro.index.temporal.TemporalIndex` over ``db``;
        prunes the lifespan-overlap test instead of scanning every
        trajectory.
    """
    if delta < 0:
        raise ValueError("delta must be non-negative")
    if time_window is None:
        time_window = (float(query.times[0]), float(query.times[-1]))
    ts, te = time_window
    if te < ts:
        raise ValueError("empty time window")
    checkpoints = np.union1d(
        np.linspace(ts, te, n_checkpoints),
        query.times[(query.times >= ts) & (query.times <= te)],
    )
    if len(checkpoints) == 0:
        return set()
    query_positions = query.positions_at(checkpoints)
    if temporal_index is not None:
        candidates = [db[tid] for tid in sorted(temporal_index.overlapping(ts, te))]
    else:
        candidates = [
            t for t in db if not (t.times[-1] < ts or t.times[0] > te)
        ]
    result: set[int] = set()
    for traj in candidates:
        positions = traj.positions_at(checkpoints)
        gaps = np.linalg.norm(positions - query_positions, axis=1)
        if bool((gaps <= delta).all()):
            result.add(traj.traj_id)
    return result
