"""Similarity (threshold) queries (paper, Section III-B).

Given a query trajectory ``Tq``, a time window ``[ts, te]``, and a distance
threshold ``delta``, the query returns every trajectory that stays within
Euclidean distance ``delta`` of ``Tq`` *at every instant of the window*
(a continuous spatio-temporal join predicate; Chen & Patel, SIGSPATIAL'09).

Positions at arbitrary instants are linearly interpolated along segments —
which is exactly where simplification bites: dropping points moves the
interpolated positions, so a trajectory that satisfied the predicate on the
original database may fail it on the simplified one (or vice versa).

Semantics at the window edges: the predicate is evaluated only at instants
where *both* the query and the candidate exist — checkpoints are clipped to
the intersection of the window with both lifespans. Outside its lifespan a
trajectory has no position (``positions_at`` would merely clamp to the
parked endpoint, an extrapolation artifact that previously let a parked
endpoint satisfy — or break — the predicate at instants where the
trajectory did not exist). A candidate that shares no instant with the
query inside the window has nothing to compare and does not match.
"""

from __future__ import annotations

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory


def resolve_time_windows(
    queries: list[Trajectory],
    time_windows,
) -> list[tuple[float, float]]:
    """Per-query ``(ts, te)`` windows, ``None`` resolved to the query's span.

    The single defaulting rule shared by every batched path (kNN and
    similarity, engine and sharded-service alike): windows feed cache keys
    and comparability masks, so one drifting copy of this expression would
    silently break shard/single-engine bit-parity.
    """
    if time_windows is None:
        time_windows = [None] * len(queries)
    else:
        time_windows = list(time_windows)
    if len(time_windows) != len(queries):
        raise ValueError("queries and time_windows must have the same length")
    return [
        (float(w[0]), float(w[1]))
        if w is not None
        else (float(q.times[0]), float(q.times[-1]))
        for q, w in zip(queries, time_windows)
    ]


def query_checkpoints(
    query: Trajectory, ts: float, te: float, n_checkpoints: int
) -> np.ndarray:
    """The evaluation instants of a similarity query over ``[ts, te]``.

    Evenly spaced instants plus the query's own sample times inside the
    window, deduplicated and sorted. Shared by the per-query reference, the
    batched engine path (:meth:`repro.queries.engine.QueryEngine.similarity`)
    and the sharded service's pending-delta scan, so all three evaluate the
    continuous predicate at exactly the same instants.
    """
    return np.union1d(
        np.linspace(ts, te, n_checkpoints),
        query.times[(query.times >= ts) & (query.times <= te)],
    )


def candidate_matches(
    candidate: Trajectory,
    checkpoints: np.ndarray,
    query_positions: np.ndarray,
    query_alive: np.ndarray,
    delta: float,
) -> bool:
    """Whether ``candidate`` satisfies the predicate at every comparable instant.

    ``query_positions`` and ``query_alive`` are the query's interpolated
    positions and lifespan mask over ``checkpoints``. The factored-out
    per-candidate core of :func:`similarity_query`, reused verbatim by the
    sharded service for trajectories not yet merged into a shard's engine.
    """
    comparable = (
        query_alive
        & (checkpoints >= candidate.times[0])
        & (checkpoints <= candidate.times[-1])
    )
    if not comparable.any():
        # No instant inside the window where both trajectories exist.
        return False
    positions = candidate.positions_at(checkpoints[comparable])
    gaps = np.linalg.norm(positions - query_positions[comparable], axis=1)
    return bool((gaps <= delta).all())


def similarity_query(
    db: TrajectoryDatabase,
    query: Trajectory,
    delta: float,
    time_window: tuple[float, float] | None = None,
    n_checkpoints: int = 32,
    temporal_index=None,
) -> set[int]:
    """Ids of trajectories within ``delta`` of the query across the window.

    Parameters
    ----------
    db:
        Database to search.
    query:
        The query trajectory ``Tq``.
    delta:
        Synchronized-distance threshold.
    time_window:
        ``(ts, te)``; defaults to the query's own span. Trajectories whose
        time span does not overlap the window cannot match.
    n_checkpoints:
        The continuous predicate is checked at this many evenly spaced
        instants plus the query's own sample times inside the window; for
        each candidate only the checkpoints inside the intersection of the
        window with both the query's and the candidate's lifespans count
        (see the module docstring), so neither trajectory is ever evaluated
        via clamped-endpoint extrapolation outside its lifespan.
    temporal_index:
        Optional :class:`~repro.index.temporal.TemporalIndex` over ``db``;
        prunes the lifespan-overlap test instead of scanning every
        trajectory.
    """
    if delta < 0:
        raise ValueError("delta must be non-negative")
    if time_window is None:
        time_window = (float(query.times[0]), float(query.times[-1]))
    ts, te = time_window
    if te < ts:
        raise ValueError("empty time window")
    checkpoints = query_checkpoints(query, ts, te, n_checkpoints)
    if len(checkpoints) == 0:
        return set()
    query_positions = query.positions_at(checkpoints)
    if temporal_index is not None:
        candidates = [db[tid] for tid in sorted(temporal_index.overlapping(ts, te))]
    else:
        candidates = [
            t for t in db if not (t.times[-1] < ts or t.times[0] > te)
        ]
    # The query itself only exists on its own lifespan; checkpoints outside
    # it would compare candidates against a clamped (parked) query endpoint.
    query_alive = (checkpoints >= query.times[0]) & (checkpoints <= query.times[-1])
    return {
        traj.traj_id
        for traj in candidates
        if candidate_matches(traj, checkpoints, query_positions, query_alive, delta)
    }


def similarity_query_batch(
    db: TrajectoryDatabase,
    queries: list[Trajectory],
    delta: float,
    time_windows: list[tuple[float, float] | None] | None = None,
    n_checkpoints: int = 32,
    engine=None,
) -> list[set[int]]:
    """Batched :func:`similarity_query` over many query trajectories.

    Identical to ``[similarity_query(db, q, delta, w) for q, w in
    zip(queries, time_windows)]`` but executed through the shared batch
    engine (:meth:`repro.queries.engine.QueryEngine.similarity`): every
    candidate trajectory is interpolated ONCE over the union of all queries'
    checkpoint instants instead of once per (query, candidate) pair — the
    last per-query scan in the evaluation harness's hot loop. ``engine``
    optionally supplies a private :class:`QueryEngine`; by default the
    database's shared engine is used, so repeated scoring of the same
    database state hits its memo.
    """
    from repro.queries.engine import QueryEngine

    if engine is None:
        engine = QueryEngine.for_database(db)
    return engine.similarity(queries, delta, time_windows, n_checkpoints)
