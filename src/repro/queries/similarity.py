"""Similarity (threshold) queries (paper, Section III-B).

Given a query trajectory ``Tq``, a time window ``[ts, te]``, and a distance
threshold ``delta``, the query returns every trajectory that stays within
Euclidean distance ``delta`` of ``Tq`` *at every instant of the window*
(a continuous spatio-temporal join predicate; Chen & Patel, SIGSPATIAL'09).

Positions at arbitrary instants are linearly interpolated along segments —
which is exactly where simplification bites: dropping points moves the
interpolated positions, so a trajectory that satisfied the predicate on the
original database may fail it on the simplified one (or vice versa).

Semantics at the window edges: the predicate is evaluated only at instants
where *both* the query and the candidate exist — checkpoints are clipped to
the intersection of the window with both lifespans. Outside its lifespan a
trajectory has no position (``positions_at`` would merely clamp to the
parked endpoint, an extrapolation artifact that previously let a parked
endpoint satisfy — or break — the predicate at instants where the
trajectory did not exist). A candidate that shares no instant with the
query inside the window has nothing to compare and does not match.
"""

from __future__ import annotations

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory


def similarity_query(
    db: TrajectoryDatabase,
    query: Trajectory,
    delta: float,
    time_window: tuple[float, float] | None = None,
    n_checkpoints: int = 32,
    temporal_index=None,
) -> set[int]:
    """Ids of trajectories within ``delta`` of the query across the window.

    Parameters
    ----------
    db:
        Database to search.
    query:
        The query trajectory ``Tq``.
    delta:
        Synchronized-distance threshold.
    time_window:
        ``(ts, te)``; defaults to the query's own span. Trajectories whose
        time span does not overlap the window cannot match.
    n_checkpoints:
        The continuous predicate is checked at this many evenly spaced
        instants plus the query's own sample times inside the window; for
        each candidate only the checkpoints inside the intersection of the
        window with both the query's and the candidate's lifespans count
        (see the module docstring), so neither trajectory is ever evaluated
        via clamped-endpoint extrapolation outside its lifespan.
    temporal_index:
        Optional :class:`~repro.index.temporal.TemporalIndex` over ``db``;
        prunes the lifespan-overlap test instead of scanning every
        trajectory.
    """
    if delta < 0:
        raise ValueError("delta must be non-negative")
    if time_window is None:
        time_window = (float(query.times[0]), float(query.times[-1]))
    ts, te = time_window
    if te < ts:
        raise ValueError("empty time window")
    checkpoints = np.union1d(
        np.linspace(ts, te, n_checkpoints),
        query.times[(query.times >= ts) & (query.times <= te)],
    )
    if len(checkpoints) == 0:
        return set()
    query_positions = query.positions_at(checkpoints)
    if temporal_index is not None:
        candidates = [db[tid] for tid in sorted(temporal_index.overlapping(ts, te))]
    else:
        candidates = [
            t for t in db if not (t.times[-1] < ts or t.times[0] > te)
        ]
    # The query itself only exists on its own lifespan; checkpoints outside
    # it would compare candidates against a clamped (parked) query endpoint.
    query_alive = (checkpoints >= query.times[0]) & (checkpoints <= query.times[-1])
    result: set[int] = set()
    for traj in candidates:
        comparable = (
            query_alive
            & (checkpoints >= traj.times[0])
            & (checkpoints <= traj.times[-1])
        )
        if not comparable.any():
            # No instant inside the window where both trajectories exist.
            continue
        positions = traj.positions_at(checkpoints[comparable])
        gaps = np.linalg.norm(positions - query_positions[comparable], axis=1)
        if bool((gaps <= delta).all()):
            result.add(traj.traj_id)
    return result
