"""Optional compiled fast path for the three hottest query kernels.

The engine's hot loops — the batched EDR dynamic program, the CSR range
sweep (candidate-run expansion + containment test), and the similarity
query's lifespan interpolation — all read the stable flat columnar layout
(``TrajectoryDatabase.point_matrix()``/``point_offsets()``), which makes
them mechanical to compile. This module holds numba implementations of
the three, selected **at import time**:

* if numba is importable (and ``REPRO_KERNELS`` is not ``numpy``), the
  compiled kernels are active;
* otherwise the module degrades to a pure-numpy stance: every dispatch
  function returns ``None`` and the call sites in
  :mod:`repro.queries.edr` / :mod:`repro.queries.engine` fall through to
  their vectorized numpy paths. numba is never a dependency.

``REPRO_KERNELS`` can force ``numpy`` (skip the import entirely), request
``numba`` (raise if unavailable — for CI jobs that must not silently
degrade), or stay ``auto``. :func:`set_backend` flips the choice at
runtime so property tests can run the same query matrix under every
available backend and assert bit-identical results.

Bit-identity is a hard requirement, not an aspiration: the compiled EDR
recurrence is integer-valued (so the classic per-pair DP equals the
vectorized prefix-minimum formulation exactly), the range sweep is pure
comparisons, and the interpolation kernel calls ``np.interp`` itself
(numba's implementation mirrors numpy's) — no fastmath anywhere.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "KERNELS_ENV",
    "HAVE_NUMBA",
    "KERNEL_BACKENDS",
    "active_backend",
    "set_backend",
    "edr_pairs",
    "expand_rows",
    "interp_chunk",
]

KERNELS_ENV = "REPRO_KERNELS"

_requested = os.environ.get(KERNELS_ENV, "auto").strip().lower() or "auto"
if _requested not in ("auto", "numpy", "numba"):
    raise ImportError(
        f"{KERNELS_ENV} must be 'auto', 'numpy', or 'numba'; got {_requested!r}"
    )

numba = None
HAVE_NUMBA = False
if _requested != "numpy":
    try:
        import numba  # type: ignore[no-redef]

        HAVE_NUMBA = True
    except ImportError:
        if _requested == "numba":
            raise ImportError(
                f"{KERNELS_ENV}=numba but numba is not importable; install "
                "numba or drop the override"
            ) from None

#: Backends the current interpreter can actually run.
KERNEL_BACKENDS = ("numpy", "numba") if HAVE_NUMBA else ("numpy",)

_backend = "numba" if HAVE_NUMBA else "numpy"


def active_backend() -> str:
    """The backend currently answering kernel dispatches."""
    return _backend


def set_backend(name: str | None) -> str:
    """Select the kernel backend; ``None``/``"auto"`` restores the default.

    Raises :class:`ValueError` when asked for a backend this interpreter
    cannot provide — tests parametrize over :data:`KERNEL_BACKENDS` to
    stay within what is available.
    """
    global _backend
    if name is None or name == "auto":
        _backend = "numba" if HAVE_NUMBA else "numpy"
    elif name == "numpy":
        _backend = "numpy"
    elif name == "numba":
        if not HAVE_NUMBA:
            raise ValueError("numba backend requested but numba is not importable")
        _backend = "numba"
    else:
        raise ValueError(f"unknown kernel backend {name!r}")
    return _backend


# ---------------------------------------------------------------------------
# Kernel implementations (nopython-compatible; jitted only when numba exists)
# ---------------------------------------------------------------------------

def _edr_pairs_impl(ax, ay, bx, by, n_lens, m_lens, eps):
    """Classic per-pair rolling EDR DP over padded coordinate rows.

    Only the first ``n_lens[p]``/``m_lens[p]`` entries of pair ``p`` are
    read, so the callers' padding sentinels never enter the arithmetic.
    EDR is integer-valued, which makes this recurrence exactly equal to
    the vectorized prefix-minimum formulation in ``edr_distances_pairs``.
    """
    n_pairs = ax.shape[0]
    m_max = bx.shape[1]
    out = np.empty(n_pairs)
    prev = np.empty(m_max + 1)
    curr = np.empty(m_max + 1)
    for p in range(n_pairs):
        n = n_lens[p]
        m = m_lens[p]
        if n == 0:
            out[p] = m
            continue
        if m == 0:
            out[p] = n
            continue
        for j in range(m + 1):
            prev[j] = j
        for i in range(1, n + 1):
            curr[0] = i
            axi = ax[p, i - 1]
            ayi = ay[p, i - 1]
            for j in range(1, m + 1):
                dx = axi - bx[p, j - 1]
                if dx < 0.0:
                    dx = -dx
                dy = ayi - by[p, j - 1]
                if dy < 0.0:
                    dy = -dy
                cost = 0.0 if (dx <= eps and dy <= eps) else 1.0
                best = prev[j - 1] + cost
                down = prev[j] + 1.0
                if down < best:
                    best = down
                left = curr[j - 1] + 1.0
                if left < best:
                    best = left
                curr[j] = best
            prev, curr = curr, prev
        out[p] = prev[m]
    return out


def _expand_rows_impl(starts, lengths, q_idx, px, py, pt,
                      lox, loy, lot, hix, hiy, hit):
    """Fused CSR range sweep: run expansion + per-axis containment test.

    One pass replaces the numpy path's repeat/arange/take/compare chain;
    the comparisons are identical, so ``inside`` is bit-equal.
    """
    n_pairs = len(starts)
    total = 0
    for k in range(n_pairs):
        total += lengths[k]
    rows = np.empty(total, np.int64)
    row_query = np.empty(total, np.int64)
    inside = np.empty(total, np.bool_)
    pos = 0
    for k in range(n_pairs):
        q = q_idx[k]
        s = starts[k]
        lx = lox[q]
        hx = hix[q]
        ly = loy[q]
        hy = hiy[q]
        lt = lot[q]
        ht = hit[q]
        for off in range(lengths[k]):
            r = s + off
            x = px[r]
            y = py[r]
            t = pt[r]
            rows[pos] = r
            row_query[pos] = q
            inside[pos] = (
                x >= lx and x <= hx
                and y >= ly and y <= hy
                and t >= lt and t <= ht
            )
            pos += 1
    return rows, row_query, inside


def _interp_chunk_impl(grid, ot, ox, oy, offsets, ids):
    """Lifespan interpolation for a chunk of candidate trajectories.

    ``np.interp`` inside the loop is numba's own implementation of the
    same clamped linear interpolation the numpy path uses per candidate.
    """
    pos = np.empty((len(ids), len(grid), 2))
    for r in range(len(ids)):
        tid = ids[r]
        s = offsets[tid]
        e = offsets[tid + 1]
        pos[r, :, 0] = np.interp(grid, ot[s:e], ox[s:e])
        pos[r, :, 1] = np.interp(grid, ot[s:e], oy[s:e])
    return pos


if HAVE_NUMBA:
    _edr_pairs_jit = numba.njit(cache=True)(_edr_pairs_impl)
    _expand_rows_jit = numba.njit(cache=True)(_expand_rows_impl)
    _interp_chunk_jit = numba.njit(cache=True)(_interp_chunk_impl)
else:
    _edr_pairs_jit = None
    _expand_rows_jit = None
    _interp_chunk_jit = None


# ---------------------------------------------------------------------------
# Dispatchers: None under the numpy backend (callers fall through)
# ---------------------------------------------------------------------------

def edr_pairs(ax, ay, bx, by, n_lens, m_lens, eps):
    """Compiled batched EDR distances, or ``None`` under numpy."""
    if _backend != "numba":
        return None
    return _edr_pairs_jit(ax, ay, bx, by, n_lens, m_lens, float(eps))


def expand_rows(starts, lengths, q_idx, px, py, pt, lo_cols, hi_cols):
    """Compiled CSR range sweep pass, or ``None`` under numpy."""
    if _backend != "numba":
        return None
    return _expand_rows_jit(
        np.ascontiguousarray(starts, dtype=np.int64),
        np.ascontiguousarray(lengths, dtype=np.int64),
        np.ascontiguousarray(q_idx, dtype=np.int64),
        px, py, pt,
        lo_cols[0], lo_cols[1], lo_cols[2],
        hi_cols[0], hi_cols[1], hi_cols[2],
    )


def interp_chunk(grid, ot, ox, oy, offsets, ids):
    """Compiled lifespan interpolation chunk, or ``None`` under numpy."""
    if _backend != "numba":
        return None
    return _interp_chunk_jit(
        grid, ot, ox, oy,
        np.ascontiguousarray(offsets, dtype=np.int64),
        np.ascontiguousarray(ids, dtype=np.int64),
    )
