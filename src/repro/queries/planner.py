"""Cost-based planning: pick an index backend for a workload.

Backend choice never changes answers — every
:class:`~repro.index.backend.IndexBackend` hands the engine a verified
superset of candidates — so picking one is a pure *cost* decision, and the
right choice depends on the workload's shape:

* small boxes on all axes → the adaptive **grid** (a typical query touches
  a handful of cells);
* whole-extent spatial slabs with narrow time windows → the **temporal**
  interval index (spatial pruning cannot discard anything anyway);
* wildly varying trajectory extents with selective boxes → the **R-tree**
  (a trajectory appears once, not in every overlapped cell);
* skewed point mass → the **kd-tree** (median splits balance the leaves);
  the **octree** is its midpoint-split sibling.

:func:`plan_workload` estimates, per backend, the expected number of
candidate points the engine would verify per query — the dominant term of
every batched pass — plus a structure-traversal overhead, from the same
box-extent statistics :func:`~repro.index.grid.adaptive_resolution` uses
(median per-axis box extent against the database extent, mean trajectory
extent, point/trajectory counts). The estimates are relative units for
*ranking*, not wall-clock predictions; ``benchmarks/bench_planner.py``
compares them against measured pruning work.

The chosen grid resolution is always :func:`adaptive_resolution`'s, which
handles degenerate workloads (empty, or all boxes zero-extent along an
axis) with an explicit fallback — the planner calls it unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.database import TrajectoryDatabase
from repro.index.backend import (
    IndexBackend,
    make_backend,
    validate_backend_name,
)
from repro.index.grid import adaptive_resolution, grid_geometry

#: Traversal costs in units of one vectorized point verification. Grid
#: cells are tested inside one broadcasted (queries x cells) matrix, so a
#: cell costs a fraction of a point comparison; tree nodes, R-tree entries,
#: and temporal candidates are visited in Python, roughly two orders of
#: magnitude more per element.
_VEC_NODE_COST = 0.25
_PY_NODE_COST = 60.0

#: Backends the planner ranks, in tie-break order (first wins ties).
PLANNER_BACKENDS = ("grid", "octree", "kdtree", "rtree", "temporal")


@dataclass(frozen=True)
class WorkloadPlan:
    """The planner's decision for one (database, workload) pair.

    ``costs`` maps every considered backend to its estimated per-query
    pruning cost (relative units); ``name`` is the winner (or the explicit
    override) and ``backend`` the built adapter, ready to hand to
    :class:`~repro.queries.engine.QueryEngine`.
    """

    name: str
    backend: IndexBackend
    costs: dict[str, float] = field(compare=False)
    resolution: tuple[int, int, int]
    chosen_by: str = "auto"  # "auto" (argmin cost) or "override"


def _workload_extents(boxes) -> np.ndarray:
    """``(Q, 3)`` per-axis extents of a workload's boxes."""
    bare = [q.box if hasattr(q, "box") else q for q in boxes]
    if not bare:
        return np.zeros((0, 3))
    return np.array(
        [[b.xmax - b.xmin, b.ymax - b.ymin, b.tmax - b.tmin] for b in bare],
        dtype=float,
    )


def _mean_trajectory_spans(db: TrajectoryDatabase) -> np.ndarray:
    """Mean per-axis bounding-box span of the database's trajectories."""
    spans = np.array(
        [
            [b.xmax - b.xmin, b.ymax - b.ymin, b.tmax - b.tmin]
            for b in (t.bounding_box for t in db)
        ],
        dtype=float,
    )
    return spans.mean(axis=0)


def estimate_backend_costs(
    db: TrajectoryDatabase,
    workload,
    max_cells: int = 1 << 18,
) -> tuple[dict[str, float], tuple[int, int, int]]:
    """Per-backend pruning-cost estimates and the adaptive grid resolution.

    The shared model: a backend's cost per query is (expected candidate
    points the engine verifies) + (structure elements touched) x a per-
    element traversal cost — ``_VEC_NODE_COST`` for grid cells (tested
    inside one broadcasted overlap matrix), ``_PY_NODE_COST`` for
    Python-traversed tree nodes / MBR entries / interval candidates — under
    a uniform-overlap approximation: for an axis where the query extent is
    ``e``, a structure element of span ``s`` overlaps with probability
    ``min(1, (e + s) / S)`` against the database span ``S``. Estimates rank
    backends; they are not latency predictions.
    """
    extent = db.bounding_box
    spans = np.array(extent.spans, dtype=float)
    spans[spans <= 0] = 1.0
    n_points = float(db.total_points)
    n_traj = float(len(db))
    extents = _workload_extents(workload)
    e = (
        np.minimum(np.median(extents, axis=0), spans)
        if len(extents)
        else np.zeros(3)
    )
    traj_spans = np.minimum(_mean_trajectory_spans(db), spans)

    def overlap_frac(element_spans: np.ndarray) -> np.ndarray:
        return np.minimum(1.0, (e + element_spans) / spans)

    costs: dict[str, float] = {}

    # Grid: cells sized to the workload by adaptive_resolution.
    resolution = adaptive_resolution(extent, workload, max_cells=max_cells)
    _, cell = grid_geometry(extent, resolution)
    cells_touched = float(np.prod(np.floor(e / cell) + 1.0))
    costs["grid"] = float(
        n_points * np.prod(overlap_frac(cell)) + _VEC_NODE_COST * cells_touched
    )

    # Cube trees: leaves halve every axis per level until leaf_capacity.
    leaf_capacity = 32.0
    depth = 1 + max(
        0.0, np.ceil(np.log(max(n_points / leaf_capacity, 1.0)) / np.log(8.0))
    )
    depth = min(depth, 8.0)  # CubeTree's default max_depth
    leaf = spans / (2.0 ** (depth - 1))
    leaves_touched = float(np.prod(np.floor(e / leaf) + 1.0))
    tree_cost = float(
        n_points * np.prod(overlap_frac(leaf)) + _PY_NODE_COST * leaves_touched
    )
    # The kd-tree's median splits track the point mass, so its *realized*
    # leaf spans are data-adapted; with only aggregate statistics the
    # estimate is the octree's. Ties resolve to the octree (listed first).
    costs["octree"] = tree_cost
    costs["kdtree"] = tree_cost

    # R-tree: one MBR per trajectory; candidates are whole trajectories,
    # and every visited leaf tests each of its entries in Python.
    cand_traj = n_traj * float(np.prod(overlap_frac(traj_spans)))
    mean_traj_points = n_points / max(n_traj, 1.0)
    costs["rtree"] = float(
        cand_traj * mean_traj_points
        + _PY_NODE_COST * (16.0 + 2.0 * cand_traj)
    )

    # Temporal: lifespan overlap on the time axis only — spatially the
    # whole database is a candidate; each surviving lifespan becomes a
    # Python-level set member.
    frac_t = min(1.0, (e[2] + traj_spans[2]) / spans[2])
    cand_t = n_traj * frac_t
    costs["temporal"] = float(
        cand_t * mean_traj_points
        + _PY_NODE_COST * (max(np.log2(max(n_traj, 2.0)), 1.0) + cand_t)
    )
    return costs, resolution


def plan_workload(
    db: TrajectoryDatabase,
    workload,
    index: str = "auto",
    max_cells: int = 1 << 18,
    **backend_kwargs,
) -> WorkloadPlan:
    """Choose (or honor an override for) the backend of a workload.

    ``index="auto"`` picks the cheapest estimate; any backend name from
    :data:`repro.index.backend.BACKENDS` forces that backend while still
    reporting every estimate. The grid backend — chosen or forced — gets
    :func:`adaptive_resolution`'s workload-matched resolution; pass
    ``resolution=`` through ``backend_kwargs`` to pin it instead.
    ``workload`` may be a :class:`~repro.workloads.RangeQueryWorkload`,
    range queries, bare boxes, or empty (degenerate workloads plan to the
    grid fallback).
    """
    validate_backend_name(index, allow_auto=True)
    costs, resolution = estimate_backend_costs(db, workload, max_cells=max_cells)
    if index == "auto":
        name = min(PLANNER_BACKENDS, key=lambda n: costs[n])
        chosen_by = "auto"
    else:
        name = index
        chosen_by = "override"
    if name == "grid":
        backend_kwargs.setdefault("resolution", resolution)
    backend = make_backend(name, db, **backend_kwargs)
    return WorkloadPlan(
        name=name,
        backend=backend,
        costs=costs,
        resolution=resolution,
        chosen_by=chosen_by,
    )


__all__ = [
    "WorkloadPlan",
    "PLANNER_BACKENDS",
    "estimate_backend_costs",
    "plan_workload",
]
