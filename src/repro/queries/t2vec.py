"""A learned trajectory-embedding similarity (t2vec substitute).

The paper instantiates its learning-based kNN measure with t2vec (Li et al.,
ICDE 2018), a GRU seq2seq model. Training a recurrent seq2seq from scratch in
numpy is out of proportion for this reproduction, so we substitute a
lighter-weight *learned* embedding with the same interface and the same role
in the experiments (see DESIGN.md §4):

1. Space is discretized into grid cells; a trajectory becomes a sequence of
   cell tokens (consecutive duplicates collapsed) — exactly t2vec's
   tokenization step.
2. Token embeddings are trained with skip-gram + negative sampling over the
   token sequences of the *original* database, so co-visited cells land close
   in embedding space (this is the "learned" part).
3. A trajectory embeds as the mean of its token vectors; similarity is the
   Euclidean distance between embeddings.

The property that matters for the paper's experiments is preserved: the
measure is robust to dropping points that stay on the route (the cell
sequence barely changes) and degrades when simplification cuts corners
(cells go missing), which is what separates query-aware from error-driven
simplification under kNN(t2vec).
"""

from __future__ import annotations

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory


class T2VecEmbedder:
    """Grid-token skip-gram trajectory embedder.

    Parameters
    ----------
    resolution:
        Cells per spatial axis.
    dim:
        Embedding dimensionality.
    window:
        Skip-gram context window (tokens).
    negatives:
        Negative samples per positive pair.
    epochs:
        Training passes over the token corpus.
    lr:
        SGD learning rate.
    seed:
        Seed for initialization and negative sampling.
    """

    def __init__(
        self,
        resolution: int = 24,
        dim: int = 16,
        window: int = 2,
        negatives: int = 4,
        epochs: int = 3,
        lr: float = 0.05,
        seed: int = 0,
    ) -> None:
        self.resolution = resolution
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._vocab: dict[tuple[int, int], int] = {}
        self._vectors: np.ndarray | None = None
        self._origin: np.ndarray | None = None
        self._cell_size: np.ndarray | None = None

    # ------------------------------------------------------------ tokenization
    def _fit_grid(self, db: TrajectoryDatabase) -> None:
        box = db.bounding_box
        self._origin = np.array([box.xmin, box.ymin])
        spans = np.array([box.xmax - box.xmin, box.ymax - box.ymin])
        spans[spans <= 0] = 1.0
        self._cell_size = spans / self.resolution

    def tokens_of(self, trajectory: Trajectory) -> list[tuple[int, int]]:
        """The trajectory's cell-token sequence (consecutive duplicates merged)."""
        if self._origin is None:
            raise RuntimeError("embedder is not fitted; call fit() first")
        rel = (trajectory.xy - self._origin) / self._cell_size
        cells = np.clip(np.floor(rel).astype(int), 0, self.resolution - 1)
        tokens: list[tuple[int, int]] = []
        for cell in map(tuple, cells):
            if not tokens or tokens[-1] != cell:
                tokens.append(cell)
        return tokens

    # ---------------------------------------------------------------- training
    def fit(self, db: TrajectoryDatabase) -> "T2VecEmbedder":
        """Train token embeddings on the (original) database."""
        self._fit_grid(db)
        sequences = [self.tokens_of(t) for t in db]
        vocab: dict[tuple[int, int], int] = {}
        for seq in sequences:
            for token in seq:
                vocab.setdefault(token, len(vocab))
        self._vocab = vocab
        rng = np.random.default_rng(self.seed)
        n = max(len(vocab), 1)
        center = rng.normal(0.0, 0.1, size=(n, self.dim))
        context = rng.normal(0.0, 0.1, size=(n, self.dim))
        id_sequences = [
            np.array([vocab[token] for token in seq], dtype=int)
            for seq in sequences
            if len(seq) >= 2
        ]
        for _ in range(self.epochs):
            for seq in id_sequences:
                self._train_sequence(seq, center, context, n, rng)
        self._vectors = center
        return self

    def _train_sequence(
        self,
        seq: np.ndarray,
        center: np.ndarray,
        context: np.ndarray,
        vocab_size: int,
        rng: np.random.Generator,
    ) -> None:
        for i, token in enumerate(seq):
            lo = max(0, i - self.window)
            hi = min(len(seq), i + self.window + 1)
            for j in range(lo, hi):
                if j == i:
                    continue
                self._sgd_pair(token, seq[j], 1.0, center, context)
                for neg in rng.integers(0, vocab_size, size=self.negatives):
                    if neg != seq[j]:
                        self._sgd_pair(token, int(neg), 0.0, center, context)

    def _sgd_pair(
        self,
        center_id: int,
        context_id: int,
        label: float,
        center: np.ndarray,
        context: np.ndarray,
    ) -> None:
        v, u = center[center_id], context[context_id]
        score = 1.0 / (1.0 + np.exp(-np.clip(v @ u, -30, 30)))
        grad = self.lr * (label - score)
        center[center_id] = v + grad * u
        context[context_id] = u + grad * v

    # --------------------------------------------------------------- embedding
    @property
    def is_fitted(self) -> bool:
        return self._vectors is not None

    def embed(self, trajectory: Trajectory) -> np.ndarray:
        """The trajectory's embedding vector (zeros for fully unseen routes)."""
        if self._vectors is None:
            raise RuntimeError("embedder is not fitted; call fit() first")
        ids = [
            self._vocab[token]
            for token in self.tokens_of(trajectory)
            if token in self._vocab
        ]
        if not ids:
            return np.zeros(self.dim)
        return self._vectors[ids].mean(axis=0)

    def distance(self, a: Trajectory, b: Trajectory) -> float:
        """Euclidean distance between trajectory embeddings."""
        return float(np.linalg.norm(self.embed(a) - self.embed(b)))
