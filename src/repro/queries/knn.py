"""kNN trajectory queries (paper, Section III-B).

Given a query trajectory ``Tq`` and a time window ``[ts, te]``, a kNN query
returns the ``k`` database trajectories whose window restriction is most
similar to ``Tq``'s window restriction under a dissimilarity measure
``theta``. The paper instantiates ``theta`` with EDR (non-learning) and
t2vec (learning-based); both are supported here, plus arbitrary callables.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory
from repro.queries.edr import edr_distance
from repro.queries.t2vec import T2VecEmbedder


def _window_restriction(
    trajectory: Trajectory, t_start: float, t_end: float
) -> Trajectory | None:
    """The sub-trajectory inside ``[t_start, t_end]`` or None if < 2 points."""
    points = trajectory.slice_time(t_start, t_end)
    if len(points) < 2:
        return None
    return Trajectory(points, traj_id=trajectory.traj_id)


def knn_query(
    db: TrajectoryDatabase,
    query: Trajectory,
    k: int,
    time_window: tuple[float, float] | None = None,
    measure: str | Callable[[Trajectory, Trajectory], float] = "edr",
    eps: float = 2000.0,
    embedder: T2VecEmbedder | None = None,
    temporal_index=None,
) -> list[int]:
    """The ids of the ``k`` most similar trajectories (most similar first).

    Parameters
    ----------
    db:
        Database to search.
    query:
        The query trajectory ``Tq``.
    k:
        Result size.
    time_window:
        ``(ts, te)``; defaults to the query trajectory's own time span.
        Trajectories with fewer than two points inside the window rank last.
        If the *query's own* window restriction has fewer than two points the
        query is degenerate — no trajectory can be meaningfully ranked — and
        the result is the empty list (previously the ``k`` lowest trajectory
        ids were returned silently, every distance being infinite).
    measure:
        ``"edr"``, ``"t2vec"``, or a callable ``(Tq', Ti') -> float``.
    eps:
        EDR matching threshold (used when ``measure == "edr"``).
    embedder:
        A fitted :class:`T2VecEmbedder` (required when ``measure == "t2vec"``).
    temporal_index:
        Optional :class:`~repro.index.temporal.TemporalIndex` over ``db``;
        trajectories whose lifespan misses the window skip the (possibly
        expensive) dissimilarity computation and rank last directly.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if time_window is None:
        time_window = (float(query.times[0]), float(query.times[-1]))
    ts, te = time_window
    if measure == "edr":
        theta = lambda a, b: edr_distance(a, b, eps)  # noqa: E731
    elif measure == "t2vec":
        if embedder is None or not embedder.is_fitted:
            raise ValueError("measure='t2vec' needs a fitted embedder")
        theta = embedder.distance
    elif callable(measure):
        theta = measure
    else:
        raise ValueError(f"unknown measure {measure!r}")

    query_window = _window_restriction(query, ts, te)
    if query_window is None:
        # Degenerate query: its own window restriction cannot be compared to
        # anything, so every distance would be infinite and the "k nearest"
        # would just be the k lowest ids. Return the documented empty result.
        return []
    alive = (
        temporal_index.overlapping(ts, te)
        if temporal_index is not None
        else None
    )
    distances: list[tuple[float, int]] = []
    for traj in db:
        if alive is not None and traj.traj_id not in alive:
            distances.append((np.inf, traj.traj_id))
            continue
        restricted = _window_restriction(traj, ts, te)
        if restricted is None:
            distances.append((np.inf, traj.traj_id))
        else:
            distances.append((theta(query_window, restricted), traj.traj_id))
    # Sort by distance, breaking ties by id for determinism.
    distances.sort()
    return [tid for _, tid in distances[:k]]
