"""kNN trajectory queries (paper, Section III-B).

Given a query trajectory ``Tq`` and a time window ``[ts, te]``, a kNN query
returns the ``k`` database trajectories whose window restriction is most
similar to ``Tq``'s window restriction under a dissimilarity measure
``theta``. The paper instantiates ``theta`` with EDR (non-learning) and
t2vec (learning-based); both are supported here, plus arbitrary callables.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory
from repro.queries.edr import edr_distance, edr_distances_pairs
from repro.queries.t2vec import T2VecEmbedder


def _window_restriction(
    trajectory: Trajectory, t_start: float, t_end: float
) -> Trajectory | None:
    """The sub-trajectory inside ``[t_start, t_end]`` or None if < 2 points."""
    points = trajectory.slice_time(t_start, t_end)
    if len(points) < 2:
        return None
    return Trajectory(points, traj_id=trajectory.traj_id)


def _resolve_measure(
    measure: str | Callable[[Trajectory, Trajectory], float],
    eps: float,
    embedder: T2VecEmbedder | None,
) -> Callable[[Trajectory, Trajectory], float]:
    """The dissimilarity callable behind a ``measure`` specification."""
    if measure == "edr":
        return lambda a, b: edr_distance(a, b, eps)
    if measure == "t2vec":
        if embedder is None or not embedder.is_fitted:
            raise ValueError("measure='t2vec' needs a fitted embedder")
        return embedder.distance
    if callable(measure):
        return measure
    raise ValueError(f"unknown measure {measure!r}")


def top_k_pairs(
    pairs: list[tuple[float, int]], k: int
) -> list[tuple[float, int]]:
    """The ``k`` nearest finite ``(distance, id)`` pairs, sorted in place.

    The canonical ranking step of every pair-returning kNN path: sort by
    ``(distance, id)``, truncate to ``k``, drop non-finite (incomparable)
    tails. The sharded service's per-shard and post-merge truncations both
    run through this, so the bit-parity of the k-way merge cannot be broken
    by one site changing the tie-break or finiteness rule.
    """
    pairs.sort()
    return [p for p in pairs[:k] if np.isfinite(p[0])]


def _top_k_comparable(distances: list[tuple[float, int]], k: int) -> list[int]:
    """The ``k`` nearest *comparable* ids from (distance, id) pairs.

    Entries with a non-finite distance are incomparable — the trajectory has
    no usable window restriction — and are truncated from the tail rather
    than padding the result with junk ids, so the returned list may be
    shorter than ``k``.
    """
    distances.sort()
    return [tid for d, tid in distances[:k] if np.isfinite(d)]


def knn_query(
    db: TrajectoryDatabase,
    query: Trajectory,
    k: int,
    time_window: tuple[float, float] | None = None,
    measure: str | Callable[[Trajectory, Trajectory], float] = "edr",
    eps: float = 2000.0,
    embedder: T2VecEmbedder | None = None,
    temporal_index=None,
) -> list[int]:
    """The ids of the ``k`` most similar trajectories (most similar first).

    Parameters
    ----------
    db:
        Database to search.
    query:
        The query trajectory ``Tq``.
    k:
        Result size.
    time_window:
        ``(ts, te)``; defaults to the query trajectory's own time span.
        Trajectories with fewer than two points inside the window are
        incomparable (infinite distance) and are *excluded* from the result
        rather than padding it — when fewer than ``k`` trajectories have a
        usable window restriction the result is genuinely shorter than
        ``k`` (previously the tail was silently filled with
        infinite-distance trajectory ids in id order, which the evaluation
        harness then scored as real hits/misses). If the *query's own*
        window restriction has fewer than two points the query is
        degenerate — no trajectory can be meaningfully ranked — and the
        result is the empty list.
    measure:
        ``"edr"``, ``"t2vec"``, or a callable ``(Tq', Ti') -> float``.
    eps:
        EDR matching threshold (used when ``measure == "edr"``).
    embedder:
        A fitted :class:`T2VecEmbedder` (required when ``measure == "t2vec"``).
    temporal_index:
        Optional :class:`~repro.index.temporal.TemporalIndex` over ``db``;
        trajectories whose lifespan misses the window skip the (possibly
        expensive) dissimilarity computation and rank last directly.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if time_window is None:
        time_window = (float(query.times[0]), float(query.times[-1]))
    ts, te = time_window
    theta = _resolve_measure(measure, eps, embedder)

    query_window = _window_restriction(query, ts, te)
    if query_window is None:
        # Degenerate query: its own window restriction cannot be compared to
        # anything, so every distance would be infinite and the "k nearest"
        # would just be the k lowest ids. Return the documented empty result.
        return []
    alive = (
        temporal_index.overlapping(ts, te)
        if temporal_index is not None
        else None
    )
    distances: list[tuple[float, int]] = []
    for traj in db:
        if alive is not None and traj.traj_id not in alive:
            distances.append((np.inf, traj.traj_id))
            continue
        restricted = _window_restriction(traj, ts, te)
        if restricted is None:
            distances.append((np.inf, traj.traj_id))
        else:
            distances.append((theta(query_window, restricted), traj.traj_id))
    # Sort by distance (ties by id for determinism) and truncate the
    # incomparable tail instead of padding with junk ids.
    return _top_k_comparable(distances, k)


def knn_query_batch(
    db: TrajectoryDatabase,
    queries: list[Trajectory],
    k: int,
    time_windows: list[tuple[float, float] | None] | None = None,
    measure: str | Callable[[Trajectory, Trajectory], float] = "edr",
    eps: float = 2000.0,
    embedder: T2VecEmbedder | None = None,
    engine=None,
    return_pairs: bool = False,
) -> list[list[int]] | list[list[tuple[float, int]]]:
    """Batched :func:`knn_query` over many query trajectories.

    Produces results identical to
    ``[knn_query(db, q, k, w, measure, ...) for q, w in zip(queries,
    time_windows)]`` (the property-tested reference), but executed through
    the shared batch engine:

    * candidate generation runs once for all windows over the engine's CSR
      cell layout (:meth:`repro.queries.engine.QueryEngine.knn_candidates`)
      — the per-query reference instead scans every trajectory of the
      database per query to discover which ones even have a usable window
      restriction;
    * EDR distances for each query are computed with the candidate axis
      vectorized (:func:`repro.queries.edr.edr_distances_one_to_many`)
      instead of one rolling DP per candidate.

    This is the evaluation harness's kNN scoring path
    (:class:`repro.eval.harness.QueryAccuracyEvaluator`).

    Parameters mirror :func:`knn_query`; ``time_windows`` may be None (every
    query uses its own time span) or contain None entries. ``engine``
    optionally supplies a private :class:`QueryEngine`; by default the
    database's shared engine is used, so repeated scoring of the same
    database state hits its candidate memo.

    With ``return_pairs=True`` each per-query result is the sorted list of
    ``(distance, traj_id)`` pairs behind the ranking (finite distances only,
    truncated to ``k``) instead of the bare id list. The sharded query
    service merges per-shard rankings exactly with these pairs: any global
    top-``k`` neighbour ranks within the top-``k`` of its own shard, so a
    k-way merge of per-shard pairs by ``(distance, id)`` reproduces the
    single-database result bit for bit.
    """
    from repro.queries.engine import QueryEngine

    if k < 1:
        raise ValueError("k must be >= 1")
    theta = _resolve_measure(measure, eps, embedder)
    from repro.queries.similarity import resolve_time_windows

    windows = resolve_time_windows(queries, time_windows)
    if not queries:
        return []
    if engine is None:
        engine = QueryEngine.for_database(db)
    candidates = engine.knn_candidates(windows)
    # Window restrictions exist only for the candidates (exactly the
    # trajectories with a usable restriction, so none is None) — the
    # reference instead slices every trajectory of the database per query.
    query_windows = [
        _window_restriction(q, ts, te) for q, (ts, te) in zip(queries, windows)
    ]
    restrictions = [
        [_window_restriction(db[int(tid)], ts, te) for tid in cand]
        if qw is not None
        else []
        for qw, (ts, te), cand in zip(query_windows, windows, candidates)
    ]
    if measure == "edr":
        # One DP over all (query, candidate) pairs of the whole batch.
        flat = edr_distances_pairs(
            [qw for qw, rs in zip(query_windows, restrictions) for _ in rs],
            [r for rs in restrictions for r in rs],
            eps,
        )
        splits = np.cumsum([len(rs) for rs in restrictions])[:-1]
        per_query = np.split(flat, splits)
    else:
        per_query = [
            [theta(qw, r) for r in rs]
            for qw, rs in zip(query_windows, restrictions)
        ]
    results: list = []
    for qw, cand, dists in zip(query_windows, candidates, per_query):
        if qw is None:
            results.append([])
            continue
        pairs = [(float(d), int(tid)) for d, tid in zip(dists, cand)]
        if return_pairs:
            results.append(top_k_pairs(pairs, k))
        else:
            results.append(_top_k_comparable(pairs, k))
    return results
