"""Trajectory distance joins.

The evaluation study the paper builds its quality measures on (Zhang et al.,
PVLDB'18) uses four operators: range, kNN, *join*, and clustering. The paper
itself swaps the join for the closely-related similarity query; this module
provides the full join as an extension so a simplified database can be
scored on it too.

A distance join returns every *pair* of trajectories that come within
``delta`` of each other at some common instant (``"ever"`` semantics) or at
every common instant (``"always"`` semantics — the similarity query's
predicate applied pairwise).
"""

from __future__ import annotations

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory


def _pair_within(
    a: Trajectory,
    b: Trajectory,
    delta: float,
    mode: str,
    n_checkpoints: int,
) -> bool:
    t_start = max(a.times[0], b.times[0])
    t_end = min(a.times[-1], b.times[-1])
    if t_end < t_start:
        return False
    checkpoints = np.linspace(t_start, t_end, n_checkpoints)
    gaps = np.linalg.norm(
        a.positions_at(checkpoints) - b.positions_at(checkpoints), axis=1
    )
    if mode == "ever":
        return bool((gaps <= delta).any())
    return bool((gaps <= delta).all())


def distance_join(
    db: TrajectoryDatabase,
    delta: float,
    mode: str = "ever",
    n_checkpoints: int = 16,
    other: TrajectoryDatabase | None = None,
) -> set[frozenset[int]]:
    """All trajectory pairs within ``delta`` under the chosen semantics.

    Parameters
    ----------
    db:
        The database joined with itself (or with ``other``).
    delta:
        Synchronized Euclidean distance threshold.
    mode:
        ``"ever"`` — within ``delta`` at some common instant;
        ``"always"`` — within ``delta`` at every sampled common instant.
    n_checkpoints:
        Instants sampled per overlapping time window.
    other:
        Optional second database for a binary join; pairs then mix one id
        from each side and are returned as ``frozenset((id_a, id_b))``.

    Returns
    -------
    A set of unordered id pairs. For the self-join, a pair never contains the
    same id twice.
    """
    if delta < 0:
        raise ValueError("delta must be non-negative")
    if mode not in ("ever", "always"):
        raise ValueError("mode must be 'ever' or 'always'")
    pairs: set[frozenset[int]] = set()
    if other is None:
        # Self-join: prune by bounding boxes expanded by delta.
        trajectories = db.trajectories
        for i, a in enumerate(trajectories):
            box_a = a.bounding_box.expanded(delta, delta, 0.0)
            for b in trajectories[i + 1 :]:
                if not box_a.intersects(b.bounding_box):
                    continue
                if _pair_within(a, b, delta, mode, n_checkpoints):
                    pairs.add(frozenset((a.traj_id, b.traj_id)))
        return pairs
    for a in db:
        box_a = a.bounding_box.expanded(delta, delta, 0.0)
        for b in other:
            if not box_a.intersects(b.bounding_box):
                continue
            if _pair_within(a, b, delta, mode, n_checkpoints):
                pairs.add(frozenset((a.traj_id, b.traj_id)))
    return pairs
