"""Columnar batch execution of range-query workloads.

Training evaluates hundreds of range queries after every ``delta``
insertions (the reward of Eq. 3 over the workload), and the evaluation
harness re-runs the same workload on every simplified database it scores.
The per-query path (:func:`repro.queries.range_query.range_query`) walks the
database trajectory by trajectory in Python — correct, but the wrong shape
for a hot path.

:class:`QueryEngine` treats the *workload* as the unit of execution:

* the database is flattened once into the cached ``(N, 3)`` point matrix and
  per-trajectory offset array (:meth:`TrajectoryDatabase.point_matrix` /
  :meth:`~TrajectoryDatabase.point_offsets`), then sorted by uniform grid
  cell into a CSR layout (cell -> contiguous point rows);
* a whole workload is answered in a fixed number of vectorized passes:
  query-box cell ranges, a (queries x cells) overlap matrix, one gather of
  all candidate rows, one broadcasted containment test, and one
  ``np.unique`` over (query, trajectory) hit pairs — no per-query Python
  work beyond building the final result sets;
* whole-workload results are memoized, keyed on the query boxes and (for
  simplified-state evaluation) the kept-row fingerprint, so re-scoring the
  same database state against the same workload is a dictionary lookup.

The per-query functions remain the reference implementation the engine is
property-tested against (``tests/test_query_engine.py``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable
from weakref import WeakKeyDictionary, ref

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.database import TrajectoryDatabase
from repro.index.grid import GridIndex, grid_geometry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (workloads -> queries)
    from repro.data.simplification import SimplificationState
    from repro.workloads.generators import RangeQueryWorkload

#: Process-wide engine reuse: one engine per live database object, so
#: repeated scoring of the same (simplified) database shares the columnar
#: layout and the result memo.
_ENGINES: "WeakKeyDictionary[TrajectoryDatabase, QueryEngine]" = WeakKeyDictionary()

#: Candidate rows expanded per pass: bounds the working-set memory for
#: worst-case (whole-extent) boxes without throttling typical selective
#: workloads, which fit in a single pass.
_ROW_BUDGET = 1 << 19


def _workload_bounds(queries: Iterable) -> tuple[np.ndarray, np.ndarray]:
    """Stacked ``(Q, 3)`` lower/upper bound matrices of the query boxes."""
    boxes = [q.box if hasattr(q, "box") else q for q in queries]
    if not boxes:
        return np.empty((0, 3)), np.empty((0, 3))
    lo = np.array([[b.xmin, b.ymin, b.tmin] for b in boxes], dtype=float)
    hi = np.array([[b.xmax, b.ymax, b.tmax] for b in boxes], dtype=float)
    return lo, hi


class QueryEngine:
    """Vectorized, memoizing range-query workload evaluator for one database.

    Parameters
    ----------
    db:
        The database all evaluations run against.
    grid:
        Optional :class:`GridIndex` whose cell geometry the engine adopts
        (results are identical either way; this only aligns pruning cells).
    resolution:
        Grid resolution when no index is supplied.
    max_cached_results:
        Number of whole-workload result lists kept in the LRU memo.
    """

    def __init__(
        self,
        db: TrajectoryDatabase,
        grid: GridIndex | None = None,
        resolution: tuple[int, int, int] = (32, 32, 16),
        max_cached_results: int = 16,
    ) -> None:
        # Only a weak reference to the database: the engine snapshots all
        # data it needs, and a strong reference would pin every database in
        # the process-wide _ENGINES WeakKeyDictionary forever (a value that
        # strongly references its key never expires).
        self._db_ref = ref(db)
        self._n_traj = len(db)
        self._offsets = db.point_offsets()
        self._extent = db.bounding_box
        self.resolution = grid.resolution if grid is not None else resolution
        if min(self.resolution) < 1 or max(self.resolution) >= 2**15:
            # Cell coordinates are stored as int16; larger axes would wrap
            # silently and drop results.
            raise ValueError(
                f"resolution axes must be in [1, {2**15 - 1}], "
                f"got {self.resolution}"
            )
        if grid is not None:
            self._origin, self._cell_size = grid._origin, grid._cell_size
        else:
            self._origin, self._cell_size = grid_geometry(self._extent, resolution)
        points = db.point_matrix()
        owners = db.point_ownership()
        # CSR layout: points sorted by composite cell id; each occupied cell
        # owns a contiguous row range of the sorted columns. Coordinates are
        # stored column-contiguous so the hot path runs on 1-D takes and
        # comparisons instead of (rows, 3) fancy indexing.
        nx, ny, nt = self.resolution
        cells = np.clip(
            np.floor((points - self._origin) / self._cell_size).astype(np.int64),
            0,
            np.array(self.resolution) - 1,
        )
        cell_ids = (cells[:, 0] * ny + cells[:, 1]) * nt + cells[:, 2]
        self._order = np.argsort(cell_ids, kind="stable")
        sorted_points = points[self._order]
        self._px = np.ascontiguousarray(sorted_points[:, 0])
        self._py = np.ascontiguousarray(sorted_points[:, 1])
        self._pt = np.ascontiguousarray(sorted_points[:, 2])
        self._owners = owners[self._order].astype(np.int32)
        sorted_ids = cell_ids[self._order]
        unique_ids, starts = np.unique(sorted_ids, return_index=True)
        self._cell_starts = starts.astype(np.int32)
        self._cell_counts = np.diff(np.append(starts, len(points))).astype(np.int32)
        # Per-axis coordinates of each occupied cell, for the overlap test
        # (int16: resolutions are far below 2**15 cells per axis).
        self._cell_x = (unique_ids // (ny * nt)).astype(np.int16)
        self._cell_y = ((unique_ids // nt) % ny).astype(np.int16)
        self._cell_t = (unique_ids % nt).astype(np.int16)
        self._max_cached = max_cached_results
        self._cache: OrderedDict[tuple, tuple[frozenset[int], ...]] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def db(self) -> TrajectoryDatabase | None:
        """The engine's database, or None once it has been garbage-collected."""
        return self._db_ref()

    @classmethod
    def for_database(cls, db: TrajectoryDatabase, **kwargs) -> "QueryEngine":
        """The shared engine of ``db`` (created on first use, then reused).

        Keyed weakly on the database object: engines die with their database,
        and every consumer scoring the same database state hits the same
        memo. ``kwargs`` configure the engine only on first creation; later
        calls return the existing engine unchanged — construct
        :class:`QueryEngine` directly for a private configuration.
        """
        engine = _ENGINES.get(db)
        if engine is None:
            engine = cls(db, **kwargs)
            _ENGINES[db] = engine
        return engine

    # ---------------------------------------------------------------- execution
    def evaluate(self, workload: "RangeQueryWorkload | Iterable") -> list[set[int]]:
        """Result sets of every query of ``workload`` on the database.

        Identical to ``[range_query(db, q) for q in workload]`` but executed
        as batched vectorized passes, and memoized on the query boxes.
        """
        lo, hi = _workload_bounds(workload)
        key = ("full", lo.tobytes(), hi.tobytes())
        cached = self._lookup(key)
        if cached is not None:
            return cached
        results = self._evaluate_bounds(lo, hi)
        self._store(key, results)
        return results

    def evaluate_state(
        self, workload: "RangeQueryWorkload | Iterable", state: "SimplificationState"
    ) -> list[set[int]]:
        """Evaluate ``workload`` on the simplified view described by ``state``.

        Equivalent to materializing the state and running every query on the
        resulting database, without building any trajectory objects. Memoized
        on (workload, kept rows), so re-evaluating an unchanged state — e.g.
        the endpoints-only reset at the start of every training episode — is
        a cache hit.
        """
        if state.database is not self._db_ref():
            raise ValueError("state does not belong to this engine's database")
        rows = self.state_rows(state)
        lo, hi = _workload_bounds(workload)
        # Rows can be as large as the database; key on a fixed-size digest
        # instead of the raw bytes so the LRU holds no point-scale payloads.
        digest = hashlib.blake2b(rows.tobytes(), digest_size=16).digest()
        key = ("state", lo.tobytes(), hi.tobytes(), digest)
        cached = self._lookup(key)
        if cached is not None:
            return cached
        kept = np.zeros(len(self._px), dtype=bool)
        kept[rows] = True
        results = self._evaluate_bounds(lo, hi, kept_sorted=kept[self._order])
        self._store(key, results)
        return results

    def state_rows(self, state: "SimplificationState") -> np.ndarray:
        """Global point-matrix rows kept by ``state`` (sorted, int64)."""
        offsets = self._offsets
        return np.concatenate(
            [
                offsets[tid] + np.asarray(kept, dtype=np.int64)
                for tid, kept in enumerate(state.kept)
            ]
        )

    def _evaluate_bounds(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        kept_sorted: np.ndarray | None = None,
    ) -> list[set[int]]:
        n_queries = len(lo)
        results: list[set[int]] = [set() for _ in range(n_queries)]
        if n_queries == 0:
            return results
        extent = self._extent
        extent_lo = np.array([extent.xmin, extent.ymin, extent.tmin])
        extent_hi = np.array([extent.xmax, extent.ymax, extent.tmax])
        # Boxes disjoint from the extent have empty results; excluding them
        # here also keeps the clipped cell ranges below from snapping
        # out-of-extent boxes onto border cells.
        alive = ~((hi < extent_lo).any(axis=1) | (lo > extent_hi).any(axis=1))
        res = np.array(self.resolution) - 1
        lo_cells = np.clip(
            np.floor((lo - self._origin) / self._cell_size).astype(np.int64), 0, res
        ).astype(np.int16)
        hi_cells = np.clip(
            np.floor((hi - self._origin) / self._cell_size).astype(np.int64), 0, res
        ).astype(np.int16)
        # One (queries, occupied-cells) overlap matrix for the whole workload.
        overlap = (
            (self._cell_x >= lo_cells[:, 0:1])
            & (self._cell_x <= hi_cells[:, 0:1])
            & (self._cell_y >= lo_cells[:, 1:2])
            & (self._cell_y <= hi_cells[:, 1:2])
            & (self._cell_t >= lo_cells[:, 2:3])
            & (self._cell_t <= hi_cells[:, 2:3])
        )
        overlap[~alive] = False
        flat = np.flatnonzero(overlap)
        if len(flat) == 0:
            return results
        q_idx = (flat // overlap.shape[1]).astype(np.int32)
        c_idx = flat % overlap.shape[1]
        lengths = self._cell_counts[c_idx]
        pair_ends = np.cumsum(lengths, dtype=np.int64)
        # Column-contiguous per-axis bounds for the 1-D takes below.
        qlo = [np.ascontiguousarray(lo[:, a]) for a in range(3)]
        qhi = [np.ascontiguousarray(hi[:, a]) for a in range(3)]
        axes = (self._px, self._py, self._pt)
        hit_pairs: list[np.ndarray] = []
        n_traj = self._n_traj
        pair_start = 0
        while pair_start < len(q_idx):
            # Expand (query, cell) pairs into candidate rows ("multi-arange"
            # over the CSR ranges), at most ~_ROW_BUDGET rows per pass.
            done = pair_ends[pair_start - 1] if pair_start else 0
            pair_stop = int(
                np.searchsorted(pair_ends, done + _ROW_BUDGET, side="left") + 1
            )
            pairs = slice(pair_start, min(pair_stop, len(q_idx)))
            sub_lengths = lengths[pairs]
            sub_ends = np.cumsum(sub_lengths, dtype=np.int64)
            total = int(sub_ends[-1])
            # rows = for each pair, cell_start + 0..length-1, flattened: one
            # repeat of the rebased starts plus a single arange.
            base = self._cell_starts[c_idx[pairs]] - (sub_ends - sub_lengths).astype(
                np.int32
            )
            rows = np.repeat(base, sub_lengths) + np.arange(total, dtype=np.int32)
            row_query = np.repeat(q_idx[pairs], sub_lengths)
            inside: np.ndarray | None = None
            for axis, alo, ahi in zip(axes, qlo, qhi):
                coord = axis.take(rows)
                test = (coord >= alo.take(row_query)) & (coord <= ahi.take(row_query))
                inside = test if inside is None else inside & test
            if kept_sorted is not None:
                inside &= kept_sorted[rows]
            hits = row_query[inside].astype(np.int64) * n_traj + self._owners.take(
                rows[inside]
            )
            if len(hits):
                # Owners are contiguous inside each (query, cell) segment, so
                # adjacent dedup removes most duplicates before the sort-based
                # unique below.
                keep = np.empty(len(hits), dtype=bool)
                keep[0] = True
                np.not_equal(hits[1:], hits[:-1], out=keep[1:])
                hit_pairs.append(hits[keep])
            pair_start = pairs.stop
        if not hit_pairs:
            return results
        # Unique (query, trajectory) pairs -> result sets.
        unique = np.unique(np.concatenate(hit_pairs))
        hit_queries = unique // n_traj
        hit_owners = unique % n_traj
        bounds = np.searchsorted(hit_queries, np.arange(n_queries + 1))
        for qi in range(n_queries):
            s, e = bounds[qi], bounds[qi + 1]
            if e > s:
                results[qi] = set(hit_owners[s:e].tolist())
        return results

    # -------------------------------------------------------------------- memo
    def _lookup(self, key: tuple) -> list[set[int]] | None:
        cached = self._cache.get(key)
        if cached is None:
            self.cache_misses += 1
            return None
        self._cache.move_to_end(key)
        self.cache_hits += 1
        return [set(s) for s in cached]

    def _store(self, key: tuple, results: list[set[int]]) -> None:
        self._cache[key] = tuple(frozenset(s) for s in results)
        while len(self._cache) > self._max_cached:
            self._cache.popitem(last=False)

    def clear_cache(self) -> None:
        """Drop all memoized results (hit/miss counters are kept)."""
        self._cache.clear()
